"""Statement execution.

The executor turns parsed statements into results against the storage
layer.  Queries flow through relation-shaped intermediates — a
:class:`Relation` is a list of bindings plus materialized rows — which
keeps joins, grouping and set operations composable; DML routes every
mutation through the active transaction's journal so rollback can undo it.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from functools import cmp_to_key
from typing import Any, Iterator

from repro.obs import add_to_current_span, get_tracer
from repro.relational import ast_nodes as ast
from repro.relational.catalog import Catalog
from repro.relational.errors import (
    CatalogError,
    ConstraintViolation,
    SqlError,
    SqlTypeError,
)
from repro.relational.expressions import ExpressionEvaluator, RowEnvironment
from repro.relational.planner import (
    EqualityLookup,
    RangeLookup,
    choose_access_path,
    conjuncts,
    recognise_equi_join,
)
from repro.relational.storage import TableStorage
from repro.relational.types import NULL, coerce, compare_values


@dataclass
class Relation:
    """An intermediate result: qualified bindings + materialized rows."""

    bindings: list[tuple[str, str]]  # (qualifier, column), lower-cased
    rows: list[tuple]

    def qualifiers(self) -> set[str]:
        return {qualifier for qualifier, _ in self.bindings}


class Journal:
    """Mutation log for the active transaction (or autocommit statement)."""

    def __init__(self) -> None:
        self.entries: list[tuple] = []

    def record_insert(self, storage: TableStorage, row_id: int) -> None:
        self.entries.append(("insert", storage, row_id))

    def record_delete(self, storage: TableStorage, row_id: int, row: tuple) -> None:
        self.entries.append(("delete", storage, row_id, row))

    def record_update(self, storage: TableStorage, row_id: int, old: tuple) -> None:
        self.entries.append(("update", storage, row_id, old))

    def undo(self) -> None:
        for entry in reversed(self.entries):
            kind = entry[0]
            if kind == "insert":
                _, storage, row_id = entry
                storage.delete(row_id)
            elif kind == "delete":
                _, storage, row_id, row = entry
                storage.restore(row_id, row)
            else:
                _, storage, row_id, old = entry
                storage.update(row_id, old)
        self.entries.clear()


class Executor:
    """Executes one statement against catalog + storage."""

    def __init__(
        self,
        catalog: Catalog,
        storages: dict[str, TableStorage],
        parameters: tuple = (),
        journal: Journal | None = None,
        on_table_read=None,
        on_table_write=None,
    ) -> None:
        self._catalog = catalog
        self._storages = storages
        self._parameters = parameters
        self._journal = journal if journal is not None else Journal()
        self._on_table_read = on_table_read or (lambda name: None)
        self._on_table_write = on_table_write or (lambda name: None)
        self._evaluator = ExpressionEvaluator(
            parameters, subquery_runner=self._run_subquery
        )

    # -- helpers --------------------------------------------------------------

    def with_parameters(self, parameters: tuple) -> "Executor":
        """A sibling executor sharing this one's journal and lock hooks —
        used by stored procedures to run parameterised statements inside
        the caller's transaction."""
        return Executor(
            self._catalog,
            self._storages,
            parameters,
            journal=self._journal,
            on_table_read=self._on_table_read,
            on_table_write=self._on_table_write,
        )

    def _storage(self, table: str) -> TableStorage:
        schema = self._catalog.table(table)
        return self._storages[schema.name.lower()]

    def _run_subquery(
        self, query: ast.Select, env: RowEnvironment
    ) -> list[tuple]:
        _, rows = self.execute_select(query, outer_env=env)
        return rows

    # =========================================================================
    # SELECT
    # =========================================================================

    def execute_select(
        self, select: ast.Select, outer_env: RowEnvironment | None = None
    ) -> tuple[list[str], list[tuple]]:
        """Run a SELECT; returns (output column names, rows).

        Each evaluation is one ``sql.select`` span whose counter
        attributes (``rows_scanned``, ``join_rows``, …) the operator
        methods below accumulate; subqueries and unions nest as child
        spans, so a trace shows the operator tree's row flow.
        """
        with get_tracer().span("sql.select") as span:
            columns, rows = self._execute_select(select, outer_env)
            if span.recording:
                span.set_attribute("rows_out", len(rows))
            return columns, rows

    def _execute_select(
        self, select: ast.Select, outer_env: RowEnvironment | None
    ) -> tuple[list[str], list[tuple]]:
        columns, rows, order_keys = self._select_core(select, outer_env)

        if select.union is not None:
            union_columns, union_rows = self.execute_select(
                select.union.query, outer_env
            )
            if len(union_columns) != len(columns):
                raise SqlError("UNION operands must have the same column count")
            rows = rows + union_rows
            if not select.union.all:
                rows = _distinct(rows)
            order_keys = None  # source rows are gone; order on outputs

        if select.order_by:
            if order_keys is not None:
                rows = _sort_by_keys(rows, order_keys, select.order_by)
            else:
                rows = self._order_output_rows(select, columns, rows, outer_env)

        rows = self._apply_limit(select, rows, outer_env)
        return columns, rows

    # -- streaming ----------------------------------------------------------

    def can_stream(self, select: ast.Select) -> bool:
        """True when the plan can yield rows lazily.

        Sorting, grouping, aggregation, DISTINCT and UNION are pipeline
        breakers — they need the whole input before the first output row
        — so those plans stay on :meth:`execute_select`.
        """
        if select.union is not None or select.order_by or select.distinct:
            return False
        if select.group_by or _collect_aggregates(select):
            return False
        return True

    def iter_select(
        self, select: ast.Select, outer_env: RowEnvironment | None = None
    ) -> tuple[list[str], Iterator[tuple]]:
        """Lazy SELECT: output column names now, rows as a generator.

        Scan, filter, OFFSET/LIMIT and projection all run per pulled
        row, so peak memory is O(1) rows for a base-table plan (the
        storage snapshot holds row *references*, never projected
        copies).  Views, subqueries and joins fall back to a
        materialized source but still project lazily.  Callers must
        check :meth:`can_stream` first.
        """
        if not self.can_stream(select):
            raise SqlError("plan has a pipeline breaker; use execute_select")
        with get_tracer().span("sql.select") as span:
            if span.recording:
                span.set_attribute("streamed", True)
            bindings, source = self._iter_from(select, outer_env)
            items = self._expand_items(select, Relation(bindings, []))
            columns = [name for name, _ in items]
            where_parts = conjuncts(select.where)
            env0 = RowEnvironment([], (), outer_env)
            offset = 0
            if select.offset is not None:
                offset = _expect_int(
                    self._evaluator.evaluate(select.offset, env0), "OFFSET"
                )
            limit = None
            if select.limit is not None:
                limit = _expect_int(
                    self._evaluator.evaluate(select.limit, env0), "LIMIT"
                )

        def rows() -> Iterator[tuple]:
            produced = 0
            try:
                if limit == 0:
                    return
                for row in source:
                    env = RowEnvironment(bindings, row, outer_env)
                    if where_parts and not all(
                        self._evaluator.truthy(p, env) for p in where_parts
                    ):
                        continue
                    if skipped_box[0] < offset:
                        skipped_box[0] += 1
                        continue
                    yield tuple(
                        self._evaluator.evaluate(expr, env) for _, expr in items
                    )
                    produced += 1
                    if limit is not None and produced >= limit:
                        return
            finally:
                # The span ended (and was exported) when setup finished;
                # exporters hold the span object, so the row count lands
                # on it once known — the one honest moment for a lazy plan.
                if span.recording:
                    span.set_attribute("rows_out", produced)

        skipped_box = [0]
        return columns, rows()

    def _iter_from(
        self, select: ast.Select, outer_env: RowEnvironment | None
    ) -> tuple[list[tuple[str, str]], Iterator[tuple]]:
        item = select.from_item
        if item is None:
            return [], iter([()])
        where_parts = conjuncts(select.where)
        if isinstance(item, ast.TableRef) and not self._catalog.has_view(
            item.name
        ):
            return self._iter_base_table(item, where_parts)
        relation = self._from_item(item, where_parts, outer_env)
        return relation.bindings, iter(relation.rows)

    def _iter_base_table(
        self, ref: ast.TableRef, where_parts: list[ast.Expression]
    ) -> tuple[list[tuple[str, str]], Iterator[tuple]]:
        schema = self._catalog.table(ref.name)
        self._on_table_read(schema.name.lower())
        storage = self._storage(ref.name)
        qualifier = (ref.alias or ref.name).lower()
        bindings = [(qualifier, c.lower()) for c in schema.column_names]

        path = choose_access_path(storage, qualifier, where_parts, self._parameters)
        if isinstance(path, EqualityLookup):
            add_to_current_span("index_lookups")
            row_ids: list[int] | None = sorted(path.index.lookup(path.key))
        elif isinstance(path, RangeLookup):
            add_to_current_span("index_lookups")
            row_ids = sorted(
                set(
                    path.index.range(
                        path.low, path.high, path.low_inclusive, path.high_inclusive
                    )
                )
            )
        else:
            add_to_current_span("table_scans")
            row_ids = None

        def scan() -> Iterator[tuple]:
            if row_ids is None:
                for _, row in storage.iter_rows():
                    yield row
            else:
                for row_id in row_ids:
                    row = storage.get(row_id)
                    if row is not None:
                        yield row

        return bindings, scan()

    # -- column type metadata ------------------------------------------------

    def select_column_types(self, select: ast.Select) -> list[str]:
        """Best-effort SQL type names for the SELECT's output columns.

        Base-table columns resolve through the catalog (views and
        derived tables recursively); computed expressions and aggregates
        report ``""``.  Shape errors degrade to all-blank rather than
        failing the query — type metadata is advisory.
        """
        try:
            return [type_name for _, type_name in self._select_shape(select)]
        except Exception:
            return []

    def _select_shape(self, select: ast.Select) -> list[tuple[str, str]]:
        """(output name, type name) pairs for a SELECT's projection."""
        bindings = self._binding_types(select.from_item)
        pairs: list[tuple[str, str]] = []
        for item in select.items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                wanted = expression.table.lower() if expression.table else None
                for (qualifier, column), type_name in bindings:
                    if wanted is None or qualifier == wanted:
                        pairs.append((column, type_name))
                continue
            name = _output_name(item)
            if isinstance(expression, ast.ColumnRef):
                pairs.append((name, _lookup_type(bindings, expression)))
            else:
                pairs.append((name, ""))
        return pairs

    def _binding_types(
        self, item: ast.FromItem | None
    ) -> list[tuple[tuple[str, str], str]]:
        """Ordered ((qualifier, column), type name) for a FROM tree."""
        if item is None:
            return []
        if isinstance(item, ast.TableRef):
            qualifier = (item.alias or item.name).lower()
            if self._catalog.has_view(item.name):
                view = self._catalog.view(item.name)
                pairs = self._select_shape(view.query)
                if view.columns:
                    pairs = [
                        (declared, type_name)
                        for declared, (_, type_name) in zip(view.columns, pairs)
                    ]
                return [
                    ((qualifier, name.lower()), type_name)
                    for name, type_name in pairs
                ]
            schema = self._catalog.table(item.name)
            return [
                ((qualifier, column.name.lower()), column.type_display)
                for column in schema.columns
            ]
        if isinstance(item, ast.SubqueryRef):
            alias = item.alias.lower()
            return [
                ((alias, name.lower()), type_name)
                for name, type_name in self._select_shape(item.query)
            ]
        if isinstance(item, ast.Join):
            return self._binding_types(item.left) + self._binding_types(
                item.right
            )
        return []

    def _select_core(
        self, select: ast.Select, outer_env: RowEnvironment | None
    ) -> tuple[list[str], list[tuple], list[list] | None]:
        """Project a SELECT (no union/order/limit).

        Returns (columns, rows, order_keys) where order_keys — when the
        query has ORDER BY and no DISTINCT — are the evaluated sort keys
        per row, computed against the source relation so ORDER BY may
        reference non-projected columns.
        """
        relation = self._evaluate_from(select, outer_env)

        where_parts = conjuncts(select.where)
        if where_parts:
            relation = self._filter(relation, where_parts, outer_env)

        aggregates = _collect_aggregates(select)
        if select.group_by or aggregates:
            return self._grouped_projection(select, relation, aggregates, outer_env)

        columns, rows, order_keys = self._projection(select, relation, outer_env)
        if select.distinct:
            rows = _distinct(rows)
            order_keys = None  # key rows no longer align after dedup
        return columns, rows, order_keys

    # -- FROM -------------------------------------------------------------

    def _evaluate_from(
        self, select: ast.Select, outer_env: RowEnvironment | None
    ) -> Relation:
        if select.from_item is None:
            return Relation([], [()])  # one empty row: SELECT 1+1
        return self._from_item(
            select.from_item, conjuncts(select.where), outer_env
        )

    def _from_item(
        self,
        item: ast.FromItem,
        where_parts: list[ast.Expression],
        outer_env: RowEnvironment | None,
    ) -> Relation:
        if isinstance(item, ast.TableRef):
            return self._base_table(item, where_parts)
        if isinstance(item, ast.SubqueryRef):
            columns, rows = self.execute_select(item.query, outer_env)
            alias = item.alias.lower()
            return Relation([(alias, c.lower()) for c in columns], rows)
        if isinstance(item, ast.Join):
            return self._join(item, where_parts, outer_env)
        raise SqlError(f"unsupported FROM item {type(item).__name__}")

    def _base_table(
        self, ref: ast.TableRef, where_parts: list[ast.Expression]
    ) -> Relation:
        if self._catalog.has_view(ref.name):
            return self._view(ref)
        schema = self._catalog.table(ref.name)
        self._on_table_read(schema.name.lower())
        storage = self._storage(ref.name)
        qualifier = (ref.alias or ref.name).lower()
        bindings = [(qualifier, c.lower()) for c in schema.column_names]

        path = choose_access_path(storage, qualifier, where_parts, self._parameters)
        if isinstance(path, EqualityLookup):
            row_ids = sorted(path.index.lookup(path.key))
            rows = [storage.get(rid) for rid in row_ids]
            rows = [row for row in rows if row is not None]
            add_to_current_span("index_lookups")
        elif isinstance(path, RangeLookup):
            row_ids = path.index.range(
                path.low, path.high, path.low_inclusive, path.high_inclusive
            )
            rows = [storage.get(rid) for rid in sorted(set(row_ids))]
            rows = [row for row in rows if row is not None]
            add_to_current_span("index_lookups")
        else:
            rows = [row for _, row in storage.rows()]
            add_to_current_span("table_scans")
        add_to_current_span("rows_scanned", len(rows))
        return Relation(bindings, rows)

    def _view(self, ref: ast.TableRef) -> Relation:
        """Expand a view: run its stored query, bind under the alias."""
        view = self._catalog.view(ref.name)
        columns, rows = self.execute_select(view.query)
        if view.columns:
            if len(view.columns) != len(columns):
                raise SqlError(
                    f"view {view.name!r} declares {len(view.columns)} "
                    f"columns but its query yields {len(columns)}"
                )
            columns = list(view.columns)
        qualifier = (ref.alias or ref.name).lower()
        return Relation([(qualifier, c.lower()) for c in columns], rows)

    def _join(
        self,
        join: ast.Join,
        where_parts: list[ast.Expression],
        outer_env: RowEnvironment | None,
    ) -> Relation:
        left = self._from_item(join.left, where_parts, outer_env)
        right = self._from_item(join.right, where_parts, outer_env)
        bindings = left.bindings + right.bindings

        if join.kind == "CROSS":
            rows = [
                lrow + rrow for lrow in left.rows for rrow in right.rows
            ]
            relation = Relation(bindings, rows)
            add_to_current_span("cross_joins")
        else:
            equi = recognise_equi_join(
                join.condition, left.qualifiers(), right.qualifiers()
            )
            if equi is not None:
                relation = self._hash_join(join.kind, left, right, equi, outer_env)
                add_to_current_span("hash_joins")
            else:
                relation = self._nested_loop_join(join, left, right, outer_env)
                add_to_current_span("nested_loop_joins")
        add_to_current_span("join_rows", len(relation.rows))
        return relation

    def _hash_join(
        self,
        kind: str,
        left: Relation,
        right: Relation,
        equi,
        outer_env: RowEnvironment | None,
    ) -> Relation:
        bindings = left.bindings + right.bindings
        buckets: dict[Any, list[tuple]] = {}
        for rrow in right.rows:
            env = RowEnvironment(right.bindings, rrow, outer_env)
            key = self._evaluator.evaluate(equi.right_expr, env)
            if key is NULL:
                continue
            buckets.setdefault(_join_key(key), []).append(rrow)

        null_padding = (NULL,) * len(right.bindings)
        rows: list[tuple] = []
        for lrow in left.rows:
            env = RowEnvironment(left.bindings, lrow, outer_env)
            key = self._evaluator.evaluate(equi.left_expr, env)
            matches = [] if key is NULL else buckets.get(_join_key(key), [])
            matched = False
            for rrow in matches:
                combined = lrow + rrow
                if self._residual_passes(equi.residual, bindings, combined, outer_env):
                    rows.append(combined)
                    matched = True
            if kind == "LEFT" and not matched:
                rows.append(lrow + null_padding)
        return Relation(bindings, rows)

    def _nested_loop_join(
        self,
        join: ast.Join,
        left: Relation,
        right: Relation,
        outer_env: RowEnvironment | None,
    ) -> Relation:
        bindings = left.bindings + right.bindings
        null_padding = (NULL,) * len(right.bindings)
        rows: list[tuple] = []
        for lrow in left.rows:
            matched = False
            for rrow in right.rows:
                combined = lrow + rrow
                env = RowEnvironment(bindings, combined, outer_env)
                if join.condition is None or self._evaluator.truthy(
                    join.condition, env
                ):
                    rows.append(combined)
                    matched = True
            if join.kind == "LEFT" and not matched:
                rows.append(lrow + null_padding)
        return Relation(bindings, rows)

    def _residual_passes(
        self,
        residual: list[ast.Expression],
        bindings: list[tuple[str, str]],
        row: tuple,
        outer_env: RowEnvironment | None,
    ) -> bool:
        if not residual:
            return True
        env = RowEnvironment(bindings, row, outer_env)
        return all(self._evaluator.truthy(part, env) for part in residual)

    # -- WHERE -------------------------------------------------------------

    def _filter(
        self,
        relation: Relation,
        predicates: list[ast.Expression],
        outer_env: RowEnvironment | None,
    ) -> Relation:
        rows = []
        for row in relation.rows:
            env = RowEnvironment(relation.bindings, row, outer_env)
            if all(self._evaluator.truthy(p, env) for p in predicates):
                rows.append(row)
        add_to_current_span("rows_filtered_out", len(relation.rows) - len(rows))
        return Relation(relation.bindings, rows)

    # -- projection ---------------------------------------------------------

    def _expand_items(
        self, select: ast.Select, relation: Relation
    ) -> list[tuple[str, ast.Expression]]:
        """Resolve the select list into (output name, expression) pairs."""
        items: list[tuple[str, ast.Expression]] = []
        for item in select.items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                wanted = expression.table.lower() if expression.table else None
                found = False
                for qualifier, column in relation.bindings:
                    if wanted is None or qualifier == wanted:
                        items.append(
                            (column, ast.ColumnRef(qualifier, column))
                        )
                        found = True
                if not found:
                    raise CatalogError(
                        f"unknown table alias {expression.table!r} in select list"
                    )
                continue
            items.append((_output_name(item), expression))
        return items

    def _projection(
        self,
        select: ast.Select,
        relation: Relation,
        outer_env: RowEnvironment | None,
    ) -> tuple[list[str], list[tuple], list[list] | None]:
        items = self._expand_items(select, relation)
        columns = [name for name, _ in items]
        rows = []
        order_keys: list[list] | None = [] if select.order_by else None
        for row in relation.rows:
            env = RowEnvironment(relation.bindings, row, outer_env)
            projected = tuple(
                self._evaluator.evaluate(expr, env) for _, expr in items
            )
            rows.append(projected)
            if order_keys is not None:
                order_keys.append(
                    self._order_key_row(select, columns, projected, env)
                )
        return columns, rows, order_keys

    def _order_key_row(
        self,
        select: ast.Select,
        columns: list[str],
        projected: tuple,
        source_env: RowEnvironment,
    ) -> list:
        """Evaluate ORDER BY terms with output aliases layered over the
        source row, so both ``ORDER BY alias`` and ``ORDER BY raw_col``
        (and 1-based ordinals) resolve."""
        alias_bindings = [("", c.lower()) for c in columns]
        env = source_env.child(alias_bindings, projected)
        env.aggregates = source_env.aggregates
        keys = []
        for order in select.order_by:
            expression = order.expression
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ) and not isinstance(expression.value, bool):
                ordinal = expression.value
                if not 1 <= ordinal <= len(columns):
                    raise SqlError(f"ORDER BY ordinal {ordinal} out of range")
                keys.append(projected[ordinal - 1])
            else:
                keys.append(self._evaluator.evaluate(expression, env))
        return keys

    # -- grouping ------------------------------------------------------------

    def _grouped_projection(
        self,
        select: ast.Select,
        relation: Relation,
        aggregates: list[ast.Aggregate],
        outer_env: RowEnvironment | None,
    ) -> tuple[list[str], list[tuple], list[list] | None]:
        items = self._expand_items(select, relation)
        columns = [name for name, _ in items]

        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        for row in relation.rows:
            env = RowEnvironment(relation.bindings, row, outer_env)
            key = tuple(
                _group_key(self._evaluator.evaluate(g, env))
                for g in select.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        if not select.group_by and not groups:
            groups[()] = []
            order.append(())

        out_rows: list[tuple] = []
        order_keys: list[list] | None = [] if select.order_by else None
        for key in order:
            member_rows = groups[key]
            representative = (
                member_rows[0]
                if member_rows
                else tuple([NULL] * len(relation.bindings))
            )
            env = RowEnvironment(relation.bindings, representative, outer_env)
            env.aggregates = self._compute_aggregates(
                aggregates, relation, member_rows, outer_env
            )
            if select.having is not None and not self._evaluator.truthy(
                select.having, env
            ):
                continue
            projected = tuple(
                self._evaluator.evaluate(expr, env) for _, expr in items
            )
            out_rows.append(projected)
            if order_keys is not None:
                order_keys.append(
                    self._order_key_row(select, columns, projected, env)
                )
        if select.distinct:
            out_rows = _distinct(out_rows)
            order_keys = None
        return columns, out_rows, order_keys

    def _compute_aggregates(
        self,
        aggregates: list[ast.Aggregate],
        relation: Relation,
        rows: list[tuple],
        outer_env: RowEnvironment | None,
    ) -> dict[ast.Aggregate, Any]:
        results: dict[ast.Aggregate, Any] = {}
        for aggregate in aggregates:
            if aggregate.argument is None:  # COUNT(*)
                results[aggregate] = len(rows)
                continue
            values = []
            for row in rows:
                env = RowEnvironment(relation.bindings, row, outer_env)
                value = self._evaluator.evaluate(aggregate.argument, env)
                if value is not NULL:
                    values.append(value)
            if aggregate.distinct:
                values = _distinct_values(values)
            results[aggregate] = _fold_aggregate(aggregate.name, values)
        return results

    # -- ORDER BY / LIMIT -----------------------------------------------------

    def _order_output_rows(
        self,
        select: ast.Select,
        columns: list[str],
        rows: list[tuple],
        outer_env: RowEnvironment | None,
    ) -> list[tuple]:
        """Sort projected rows when source rows are unavailable (UNION,
        DISTINCT): terms must be output columns, ordinals or expressions
        over the output columns."""
        bindings = [("", c.lower()) for c in columns]
        keys: list[list[Any]] = []
        for row in rows:
            env = RowEnvironment(bindings, row, outer_env)
            keys.append(self._order_key_row(select, columns, row, env))
        return _sort_by_keys(rows, keys, select.order_by)

    def _apply_limit(
        self,
        select: ast.Select,
        rows: list[tuple],
        outer_env: RowEnvironment | None,
    ) -> list[tuple]:
        env = RowEnvironment([], (), outer_env)
        offset = 0
        if select.offset is not None:
            offset = _expect_int(self._evaluator.evaluate(select.offset, env), "OFFSET")
        if offset:
            rows = rows[offset:]
        if select.limit is not None:
            limit = _expect_int(self._evaluator.evaluate(select.limit, env), "LIMIT")
            rows = rows[:limit]
        return rows

    # -- EXPLAIN ---------------------------------------------------------------

    def explain_select(self, select: ast.Select) -> list[str]:
        """A one-line-per-source description of the chosen access paths."""
        lines: list[str] = []
        where_parts = conjuncts(select.where)
        self._explain_from(select.from_item, where_parts, lines)
        if select.group_by or _collect_aggregates(select):
            lines.append("AGGREGATE")
        if select.order_by:
            lines.append(f"SORT ({len(select.order_by)} key(s))")
        if select.limit is not None:
            lines.append("LIMIT")
        return lines

    def _explain_from(self, item, where_parts, lines: list[str]) -> None:
        if item is None:
            lines.append("NO TABLE (constant row)")
            return
        if isinstance(item, ast.TableRef):
            if self._catalog.has_view(item.name):
                lines.append(f"VIEW EXPANSION {item.name}")
                return
            schema = self._catalog.table(item.name)
            storage = self._storages[schema.name.lower()]
            qualifier = (item.alias or item.name).lower()
            path = choose_access_path(
                storage, qualifier, where_parts, self._parameters
            )
            if isinstance(path, EqualityLookup):
                lines.append(
                    f"INDEX LOOKUP {schema.name} ({path.index.name})"
                )
            elif isinstance(path, RangeLookup):
                lines.append(
                    f"INDEX RANGE SCAN {schema.name} ({path.index.name})"
                )
            else:
                lines.append(f"FULL SCAN {schema.name}")
            return
        if isinstance(item, ast.SubqueryRef):
            lines.append(f"DERIVED TABLE {item.alias}")
            return
        if isinstance(item, ast.Join):
            self._explain_from(item.left, where_parts, lines)
            self._explain_from(item.right, where_parts, lines)
            if item.kind == "CROSS":
                lines.append("CROSS JOIN")
                return
            left_q = self._qualifiers_of(item.left)
            right_q = self._qualifiers_of(item.right)
            equi = recognise_equi_join(item.condition, left_q, right_q)
            strategy = "HASH JOIN" if equi is not None else "NESTED LOOP JOIN"
            lines.append(f"{item.kind} {strategy}")

    def _qualifiers_of(self, item) -> set[str]:
        if isinstance(item, ast.TableRef):
            return {(item.alias or item.name).lower()}
        if isinstance(item, ast.SubqueryRef):
            return {item.alias.lower()}
        if isinstance(item, ast.Join):
            return self._qualifiers_of(item.left) | self._qualifiers_of(item.right)
        return set()

    # =========================================================================
    # DML
    # =========================================================================

    def execute_insert(self, insert: ast.Insert) -> int:
        with get_tracer().span("sql.insert", table=insert.table) as span:
            count = self._execute_insert(insert)
            span.set_attribute("rows", count)
            return count

    def _execute_insert(self, insert: ast.Insert) -> int:
        schema = self._catalog.table(insert.table)
        self._on_table_write(schema.name.lower())
        storage = self._storage(insert.table)

        if insert.columns:
            positions = [schema.column_index(c) for c in insert.columns]
        else:
            positions = list(range(len(schema.columns)))

        if insert.query is not None:
            _, source_rows = self.execute_select(insert.query)
            value_rows = source_rows
        else:
            env = RowEnvironment([], ())
            value_rows = [
                tuple(self._evaluator.evaluate(e, env) for e in row)
                for row in insert.rows
            ]

        count = 0
        for values in value_rows:
            if len(values) != len(positions):
                raise SqlError(
                    f"INSERT supplies {len(values)} values for "
                    f"{len(positions)} columns"
                )
            row = self._build_row(schema, positions, values)
            self._check_row(schema, row)
            self._check_foreign_keys(schema, row)
            row_id = storage.insert(row)
            self._journal.record_insert(storage, row_id)
            count += 1
        return count

    def _build_row(self, schema, positions: list[int], values: tuple) -> tuple:
        row: list[Any] = [None] * len(schema.columns)
        supplied = set(positions)
        for position, value in zip(positions, values):
            column = schema.columns[position]
            row[position] = coerce(value, column.sql_type, column.length)
        env = RowEnvironment([], ())
        for position, column in enumerate(schema.columns):
            if position in supplied:
                continue
            if column.default is not None:
                default_value = self._evaluator.evaluate(column.default, env)
                row[position] = coerce(
                    default_value, column.sql_type, column.length
                )
            else:
                row[position] = NULL
        return tuple(row)

    def _check_row(self, schema, row: tuple) -> None:
        for column in schema.columns:
            if column.not_null and row[column.position] is NULL:
                raise ConstraintViolation(
                    f"column {schema.name}.{column.name} may not be NULL"
                )
        if schema.checks:
            # Unqualified references match any qualifier, so one binding
            # set under the table name serves both styles.
            bindings = [
                (schema.name.lower(), c.lower()) for c in schema.column_names
            ]
            env = RowEnvironment(bindings, row)
            for check in schema.checks:
                result = self._evaluator.evaluate(check.expression, env)
                if result is False:  # NULL passes a CHECK per the standard
                    raise ConstraintViolation(
                        f"check constraint {check.name!r} violated"
                    )

    def _check_foreign_keys(self, schema, row: tuple) -> None:
        for fk in schema.foreign_keys:
            key = tuple(
                row[schema.column_index(column)] for column in fk.columns
            )
            if any(value is NULL for value in key):
                continue
            parent_schema = self._catalog.table(fk.ref_table)
            parent_storage = self._storage(fk.ref_table)
            index = parent_storage.find_hash_index(fk.ref_columns)
            if index is not None:
                if not index.lookup(key):
                    raise ConstraintViolation(
                        f"foreign key {fk.name!r}: no parent row {key!r} "
                        f"in {fk.ref_table}"
                    )
                continue
            positions = [parent_schema.column_index(c) for c in fk.ref_columns]
            if not any(
                tuple(parent_row[p] for p in positions) == key
                for _, parent_row in parent_storage.rows()
            ):
                raise ConstraintViolation(
                    f"foreign key {fk.name!r}: no parent row {key!r} "
                    f"in {fk.ref_table}"
                )

    def _check_no_children(self, schema, row: tuple) -> None:
        """RESTRICT semantics: reject delete/update of a referenced key."""
        for other_name in self._catalog.table_names():
            other = self._catalog.table(other_name)
            for fk in other.foreign_keys:
                if fk.ref_table.lower() != schema.name.lower():
                    continue
                key = tuple(
                    row[schema.column_index(c)] for c in fk.ref_columns
                )
                if any(value is NULL for value in key):
                    continue
                child_storage = self._storage(other_name)
                index = child_storage.find_hash_index(fk.columns)
                if index is not None:
                    if index.lookup(key):
                        raise ConstraintViolation(
                            f"row is referenced by {other.name}.{fk.name}"
                        )
                    continue
                positions = [other.column_index(c) for c in fk.columns]
                for _, child_row in child_storage.rows():
                    if tuple(child_row[p] for p in positions) == key:
                        raise ConstraintViolation(
                            f"row is referenced by {other.name}.{fk.name}"
                        )

    def execute_update(self, update: ast.Update) -> int:
        with get_tracer().span("sql.update", table=update.table) as span:
            count = self._execute_update(update)
            span.set_attribute("rows", count)
            return count

    def _execute_update(self, update: ast.Update) -> int:
        schema = self._catalog.table(update.table)
        self._on_table_write(schema.name.lower())
        storage = self._storage(update.table)
        qualifier = schema.name.lower()
        bindings = [(qualifier, c.lower()) for c in schema.column_names]

        assignments = [
            (schema.column_index(column), schema.column(column), expression)
            for column, expression in update.assignments
        ]

        targets: list[tuple[int, tuple]] = []
        for row_id, row in storage.rows():
            env = RowEnvironment(bindings, row)
            if update.where is None or self._evaluator.truthy(update.where, env):
                targets.append((row_id, row))

        for row_id, old_row in targets:
            env = RowEnvironment(bindings, old_row)
            new_values = list(old_row)
            for position, column, expression in assignments:
                value = self._evaluator.evaluate(expression, env)
                new_values[position] = coerce(value, column.sql_type, column.length)
            new_row = tuple(new_values)
            self._check_row(schema, new_row)
            self._check_foreign_keys(schema, new_row)
            if self._key_changed(schema, old_row, new_row):
                self._check_no_children(schema, old_row)
            storage.update(row_id, new_row)
            self._journal.record_update(storage, row_id, old_row)
        return len(targets)

    def _key_changed(self, schema, old_row: tuple, new_row: tuple) -> bool:
        referenced: set[int] = set()
        for other_name in self._catalog.table_names():
            for fk in self._catalog.table(other_name).foreign_keys:
                if fk.ref_table.lower() == schema.name.lower():
                    referenced.update(
                        schema.column_index(c) for c in fk.ref_columns
                    )
        return any(
            compare_values(old_row[p], new_row[p]) != 0
            if old_row[p] is not NULL and new_row[p] is not NULL
            else (old_row[p] is NULL) != (new_row[p] is NULL)
            for p in referenced
        )

    def execute_delete(self, delete: ast.Delete) -> int:
        with get_tracer().span("sql.delete", table=delete.table) as span:
            count = self._execute_delete(delete)
            span.set_attribute("rows", count)
            return count

    def _execute_delete(self, delete: ast.Delete) -> int:
        schema = self._catalog.table(delete.table)
        self._on_table_write(schema.name.lower())
        storage = self._storage(delete.table)
        qualifier = schema.name.lower()
        bindings = [(qualifier, c.lower()) for c in schema.column_names]

        targets: list[tuple[int, tuple]] = []
        for row_id, row in storage.rows():
            env = RowEnvironment(bindings, row)
            if delete.where is None or self._evaluator.truthy(delete.where, env):
                targets.append((row_id, row))

        for row_id, row in targets:
            self._check_no_children(schema, row)
            storage.delete(row_id)
            self._journal.record_delete(storage, row_id, row)
        return len(targets)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ast.ColumnRef):
        return expression.column
    if isinstance(expression, ast.Aggregate):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    return "expr"


def _lookup_type(
    bindings: list[tuple[tuple[str, str], str]], ref: ast.ColumnRef
) -> str:
    wanted_table = ref.table.lower() if ref.table else None
    wanted_column = ref.column.lower()
    for (qualifier, column), type_name in bindings:
        if column != wanted_column:
            continue
        if wanted_table is None or qualifier == wanted_table:
            return type_name
    return ""


def _collect_aggregates(select: ast.Select) -> list[ast.Aggregate]:
    found: list[ast.Aggregate] = []
    seen: set[ast.Aggregate] = set()

    def walk(node) -> None:
        if isinstance(node, ast.Aggregate):
            if node not in seen:
                seen.add(node)
                found.append(node)
            return  # nested aggregates are invalid anyway
        if isinstance(node, (ast.Select,)):
            return  # subqueries manage their own aggregates
        if hasattr(node, "__dataclass_fields__"):
            for field_name in node.__dataclass_fields__:
                value = getattr(node, field_name)
                if isinstance(value, tuple):
                    for element in value:
                        if isinstance(element, tuple):
                            for sub in element:
                                walk(sub)
                        else:
                            walk(element)
                else:
                    walk(value)

    for item in select.items:
        walk(item.expression)
    if select.having is not None:
        walk(select.having)
    for order in select.order_by:
        walk(order.expression)
    return found


def _fold_aggregate(name: str, values: list) -> Any:
    if name == "COUNT":
        return len(values)
    if not values:
        return NULL
    if name == "SUM":
        return _numeric_sum(values)
    if name == "AVG":
        total = _numeric_sum(values)
        if isinstance(total, Decimal):
            return total / Decimal(len(values))
        return total / len(values)
    if name == "MIN":
        return _extreme(values, want_smaller=True)
    if name == "MAX":
        return _extreme(values, want_smaller=False)
    raise SqlError(f"unknown aggregate {name}")


def _numeric_sum(values: list) -> Any:
    total = values[0]
    if not isinstance(total, (int, float, Decimal)) or isinstance(total, bool):
        raise SqlTypeError("SUM/AVG require numeric values")
    for value in values[1:]:
        if not isinstance(value, (int, float, Decimal)) or isinstance(value, bool):
            raise SqlTypeError("SUM/AVG require numeric values")
        if isinstance(total, Decimal) or isinstance(value, Decimal):
            total = Decimal(str(total)) + Decimal(str(value))
        else:
            total = total + value
    return total


def _extreme(values: list, want_smaller: bool) -> Any:
    best = values[0]
    for value in values[1:]:
        comparison = compare_values(value, best)
        if comparison is None:
            continue
        if (comparison < 0) == want_smaller and comparison != 0:
            best = value
    return best


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    out: list[tuple] = []
    for row in rows:
        key = tuple(_group_key(v) for v in row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _distinct_values(values: list) -> list:
    seen: set = set()
    out = []
    for value in values:
        key = _group_key(value)
        if key not in seen:
            seen.add(key)
            out.append(value)
    return out


def _group_key(value: Any) -> Any:
    if value is NULL:
        return ("\0null",)
    if isinstance(value, bool):
        return ("\0bool", value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Decimal):
        return float(value)
    return value


def _join_key(value: Any) -> Any:
    return _group_key(value)


def _sort_by_keys(
    rows: list[tuple], keys: list[list], order_by: tuple[ast.OrderItem, ...]
) -> list[tuple]:
    """Stable sort of *rows* by parallel *keys* honouring per-term direction."""
    directions = [order.ascending for order in order_by]

    def compare(a_index: int, b_index: int) -> int:
        for position, ascending in enumerate(directions):
            a_value = keys[a_index][position]
            b_value = keys[b_index][position]
            # NULLs always sort last, regardless of direction.
            if a_value is NULL or b_value is NULL:
                if a_value is NULL and b_value is NULL:
                    continue
                return 1 if a_value is NULL else -1
            comparison = _null_aware_compare(a_value, b_value)
            if comparison != 0:
                return comparison if ascending else -comparison
        return 0

    order_indexes = sorted(range(len(rows)), key=cmp_to_key(compare))
    return [rows[i] for i in order_indexes]


def _null_aware_compare(a: Any, b: Any) -> int:
    """NULLs sort after everything (ascending)."""
    if a is NULL and b is NULL:
        return 0
    if a is NULL:
        return 1
    if b is NULL:
        return -1
    comparison = compare_values(a, b)
    return comparison if comparison is not None else 0


def _expect_int(value: Any, clause: str) -> int:
    if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
        return value
    raise SqlError(f"{clause} requires a non-negative integer")
