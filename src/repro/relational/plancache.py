"""The prepared-statement / plan cache.

The millions-of-users workload is *repeat* queries: the same SQL text
arrives over and over with different parameters.  Lexing, parsing and
resolving that text against the catalog on every request is pure waste —
this module caches the compiled form keyed on the raw SQL string, so a
repeat query skips the lexer, the parser, and (for SELECTs) the
column-type resolution and streamability analysis.

Correctness contract
--------------------

Every entry is stamped with the :attr:`Catalog.version` current when it
was compiled.  The catalog bumps that version on *every* schema mutation
— CREATE/DROP TABLE, CREATE/DROP VIEW, CREATE/DROP INDEX, ALTER TABLE,
and the undo arms of failed DDL — so a lookup that finds an entry with a
stale stamp discards it (counted as an invalidation) and recompiles.  A
cached plan therefore can never be served across a schema change, and a
plan compiled *during* a schema change is at worst recompiled once more.

Thread-safety: all cache state is guarded by one lock; the cached AST
itself is treated as immutable by the executor (statements are resolved
afresh on each execution — only the *parse* is reused), so concurrent
sessions may share one entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PlanCache", "PlanEntry"]

#: Default number of distinct SQL texts retained (LRU beyond this).
DEFAULT_CAPACITY = 512


@dataclass
class PlanEntry:
    """One compiled statement: the parse plus memoized SELECT planning.

    ``column_types`` and ``can_stream`` start unset and are memoized by
    the session on first execution; they are derived purely from the
    statement and the catalog, so they stay valid exactly as long as the
    version stamp does.
    """

    statement: object
    catalog_version: int
    column_types: Optional[list] = None
    can_stream: Optional[bool] = None
    #: Guards lazy memoization so concurrent first executions don't race.
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class PlanCache:
    """A bounded, thread-safe LRU of :class:`PlanEntry` keyed on SQL text."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, PlanEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._hits_counter = None
        self._misses_counter = None
        self._invalidations_counter = None

    def bind_counters(self, hits, misses, invalidations) -> None:
        """Mirror cache activity into metrics counters.

        *hits*/*misses*/*invalidations* are
        :class:`repro.obs.metrics.Counter` instances (the service's
        ``cache.plan.*`` family).  Activity counted before binding is
        flushed into the counters so the exposition matches
        :meth:`stats`.  Rebinding replaces the targets without
        re-flushing.
        """
        with self._lock:
            first_bind = self._hits_counter is None
            self._hits_counter = hits
            self._misses_counter = misses
            self._invalidations_counter = invalidations
            if first_bind:
                if self.hits:
                    hits.inc(self.hits)
                if self.misses:
                    misses.inc(self.misses)
                if self.invalidations:
                    invalidations.inc(self.invalidations)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, sql: str, catalog_version: int) -> Optional[PlanEntry]:
        """Return the live entry for *sql*, or ``None`` on miss.

        An entry stamped with an older catalog version is *stale*: it is
        dropped here (counted as an invalidation **and** a miss, since
        the caller must recompile) rather than swept eagerly on DDL —
        the version check makes eager sweeping unnecessary.
        """
        with self._lock:
            entry = self._entries.get(sql)
            if entry is None:
                self.misses += 1
                if self._misses_counter is not None:
                    self._misses_counter.inc()
                return None
            if entry.catalog_version != catalog_version:
                del self._entries[sql]
                self.invalidations += 1
                self.misses += 1
                if self._invalidations_counter is not None:
                    self._invalidations_counter.inc()
                if self._misses_counter is not None:
                    self._misses_counter.inc()
                return None
            self._entries.move_to_end(sql)
            self.hits += 1
            if self._hits_counter is not None:
                self._hits_counter.inc()
            return entry

    def store(self, sql: str, entry: PlanEntry) -> PlanEntry:
        """Insert *entry*; returns the entry actually cached.

        If another thread stored a same-version entry first, that one
        wins (so memoized planning attributes are shared, not split
        across duplicate entries).
        """
        with self._lock:
            existing = self._entries.get(sql)
            if (
                existing is not None
                and existing.catalog_version == entry.catalog_version
            ):
                self._entries.move_to_end(sql)
                return existing
            self._entries[sql] = entry
            self._entries.move_to_end(sql)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot of the counters (plus current size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
            }
