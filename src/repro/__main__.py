"""``python -m repro`` — self-check, plus the ``trace`` subcommand.

Default invocation stands up an in-process deployment, runs one query
through the full SOAP round trip and reports the wire numbers — a quick
way to confirm an installation works.

``python -m repro trace <spans.jsonl>`` renders a trace exported by
:class:`repro.obs.FileExporter` as an indented span tree (per-span
latency, bytes and row counts).  ``python -m repro trace --demo`` runs a
Figure 3-style factory chain over the real HTTP binding with tracing on
and prints the resulting tree — the quickest way to *see* one request
become one connected trace across processes, transports and engines.
"""

from __future__ import annotations

import argparse
import sys


def self_check() -> int:
    import repro
    from repro.workload import RelationalWorkload, build_single_service

    print(f"dais-py {repro.__version__} — GGF WS-DAI/WS-DAIR/WS-DAIX "
          f"reference implementation")
    print(
        "packages: xmlutil soap wsrf xpath relational xmldb cim core "
        "dair daix daif filestore compose transport client workload bench"
    )

    deployment = build_single_service(RelationalWorkload(customers=10))
    rowset = deployment.client.sql_query_rowset(
        deployment.address,
        deployment.name,
        "SELECT region, COUNT(*) FROM customers GROUP BY region ORDER BY 1",
    )
    print("\nself-check (one service, one query through the wire):")
    for region, count in rowset.rows:
        print(f"  {region}: {count}")
    stats = deployment.client.transport.stats
    print(f"  ok — {stats.call_count} exchange(s), {stats.total_bytes} bytes")
    print("\nsee examples/ for runnable scenarios and benchmarks/ for the "
          "paper-figure harness")
    return 0


def _demo_trace() -> int:
    """Factory chain over real HTTP with tracing on; print the tree."""
    from repro.client.sql import SQLClient
    from repro.core import ServiceRegistry, mint_abstract_name
    from repro.dair import SQLDataResource, SQLRealisationService
    from repro.obs import get_tracer, render_trace_tree, use_exporter
    from repro.obs.journal import use_journal
    from repro.transport import DaisHttpServer, HttpTransport
    from repro.workload import RelationalWorkload, populate_shop_database

    registry = ServiceRegistry()
    server = DaisHttpServer(registry, port=0)
    address = server.url_for("/sql")
    service = SQLRealisationService("demo-sql", address)
    registry.register(service)
    database = populate_shop_database(RelationalWorkload(customers=8))
    resource = SQLDataResource(mint_abstract_name("shop"), database)
    service.add_resource(resource)

    client = SQLClient(HttpTransport())
    with use_exporter() as exporter, use_journal() as journal, server:
        with get_tracer().span("consumer.request", scenario="fig3-demo"):
            factory = client.sql_execute_factory(
                address,
                resource.abstract_name,
                "SELECT id, total FROM orders WHERE total > 100",
            )
            rowset = client.get_sql_rowset(
                factory.address, factory.abstract_name
            )
        spans = exporter.spans()

    print("trace demo — Figure 3 factory chain over HTTP "
          f"({len(rowset.rows)} rows pulled via the derived EPR):\n")
    print(render_trace_tree(spans))
    print("\nlifecycle journal:")
    for event in journal.events():
        print(f"  #{event.sequence} {event.event:<12} {event.resource}")
    return 0


def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="render an exported span file as a trace tree",
    )
    parser.add_argument(
        "path", nargs="?", help="JSONL span file written by FileExporter"
    )
    parser.add_argument(
        "--trace-id", help="render only this trace id", default=None
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a traced factory chain over HTTP and render it",
    )
    options = parser.parse_args(argv)
    if options.demo:
        return _demo_trace()
    if not options.path:
        parser.error("a span file is required unless --demo is given")
    from repro.obs import load_spans, render_trace_tree

    spans = load_spans(options.path)
    if not spans:
        print(f"no spans in {options.path}")
        return 1
    print(render_trace_tree(spans, trace_id=options.trace_id))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Only the explicit subcommand routes away from the self-check, so
    # running under foreign argv (pytest, runpy) stays harmless.
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    return self_check()


if __name__ == "__main__":
    sys.exit(main())
