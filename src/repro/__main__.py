"""``python -m repro`` — print the library inventory and a self-check.

A quick way to confirm an installation works: stands up an in-process
deployment, runs one query through the full SOAP round trip and reports
the wire numbers.
"""

from __future__ import annotations

import sys


def main() -> int:
    import repro
    from repro.workload import RelationalWorkload, build_single_service

    print(f"dais-py {repro.__version__} — GGF WS-DAI/WS-DAIR/WS-DAIX "
          f"reference implementation")
    print(
        "packages: xmlutil soap wsrf xpath relational xmldb cim core "
        "dair daix daif filestore compose transport client workload bench"
    )

    deployment = build_single_service(RelationalWorkload(customers=10))
    rowset = deployment.client.sql_query_rowset(
        deployment.address,
        deployment.name,
        "SELECT region, COUNT(*) FROM customers GROUP BY region ORDER BY 1",
    )
    print("\nself-check (one service, one query through the wire):")
    for region, count in rowset.rows:
        print(f"  {region}: {count}")
    stats = deployment.client.transport.stats
    print(f"  ok — {stats.call_count} exchange(s), {stats.total_bytes} bytes")
    print("\nsee examples/ for runnable scenarios and benchmarks/ for the "
          "paper-figure harness")
    return 0


if __name__ == "__main__":
    sys.exit(main())
