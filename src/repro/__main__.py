"""``python -m repro`` — self-check, plus ``trace`` and ``chaos``.

Default invocation stands up an in-process deployment, runs one query
through the full SOAP round trip and reports the wire numbers — a quick
way to confirm an installation works.

``python -m repro trace <spans.jsonl>`` renders a trace exported by
:class:`repro.obs.FileExporter` as an indented span tree (per-span
latency, bytes and row counts).  ``python -m repro trace --demo`` runs a
Figure 3-style factory chain over the real HTTP binding with tracing on
and prints the resulting tree — the quickest way to *see* one request
become one connected trace across processes, transports and engines.

``python -m repro chaos`` runs seeded fault plans against resilient
clients in virtual time and tallies the outcomes — every run must end in
either a correct answer or a typed DAIS fault — then renders one retried
call as a trace with its ``rpc.retry`` attempts visible.

``python -m repro serve`` binds one SQL realisation service to a real
HTTP port (event-loop front end, admission control armed) and serves
until interrupted, printing ``LISTENING <port>`` first — the deploy
path used by operators and by the out-of-process tiers of
``make bench-load``.

``python -m repro jobs`` walks the durable asynchronous factory story:
submit a factory request with ``ExecutionMode=asynchronous``, kill the
process before any worker runs, restart from the journal, recover the
job, execute it, and page the results through streamed ``GetTuples``.
"""

from __future__ import annotations

import argparse
import sys
import time


def self_check() -> int:
    import repro
    from repro.workload import RelationalWorkload, build_single_service

    print(f"dais-py {repro.__version__} — GGF WS-DAI/WS-DAIR/WS-DAIX "
          f"reference implementation")
    print(
        "packages: xmlutil soap wsrf xpath relational xmldb cim core "
        "dair daix daif filestore compose transport client workload bench "
        "faultinject resilience"
    )

    deployment = build_single_service(RelationalWorkload(customers=10))
    rowset = deployment.client.sql_query_rowset(
        deployment.address,
        deployment.name,
        "SELECT region, COUNT(*) FROM customers GROUP BY region ORDER BY 1",
    )
    print("\nself-check (one service, one query through the wire):")
    for region, count in rowset.rows:
        print(f"  {region}: {count}")
    stats = deployment.client.transport.stats
    print(f"  ok — {stats.call_count} exchange(s), {stats.total_bytes} bytes")
    print("\nsee examples/ for runnable scenarios and benchmarks/ for the "
          "paper-figure harness")
    return 0


def _demo_trace() -> int:
    """Factory chain over real HTTP with tracing on; print the tree."""
    from repro.client.sql import SQLClient
    from repro.core import ServiceRegistry, mint_abstract_name
    from repro.dair import SQLDataResource, SQLRealisationService
    from repro.obs import get_tracer, render_trace_tree, use_exporter
    from repro.obs.journal import use_journal
    from repro.transport import DaisHttpServer, HttpTransport
    from repro.workload import RelationalWorkload, populate_shop_database

    registry = ServiceRegistry()
    server = DaisHttpServer(registry, port=0)
    address = server.url_for("/sql")
    service = SQLRealisationService("demo-sql", address)
    registry.register(service)
    database = populate_shop_database(RelationalWorkload(customers=8))
    resource = SQLDataResource(mint_abstract_name("shop"), database)
    service.add_resource(resource)

    client = SQLClient(HttpTransport())
    with use_exporter() as exporter, use_journal() as journal, server:
        with get_tracer().span("consumer.request", scenario="fig3-demo"):
            factory = client.sql_execute_factory(
                address,
                resource.abstract_name,
                "SELECT id, total FROM orders WHERE total > 100",
            )
            rowset = client.get_sql_rowset(
                factory.address, factory.abstract_name
            )
        spans = exporter.spans()

    print("trace demo — Figure 3 factory chain over HTTP "
          f"({len(rowset.rows)} rows pulled via the derived EPR):\n")
    print(render_trace_tree(spans))
    print("\nlifecycle journal:")
    for event in journal.events():
        print(f"  #{event.sequence} {event.event:<12} {event.resource}")
    return 0


def chaos_main(argv: list[str]) -> int:
    """Seeded chaos runs over the direct-access scenario, in virtual time."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="run seeded fault plans against resilient clients",
    )
    parser.add_argument("--seed", type=int, default=7, help="base plan seed")
    parser.add_argument(
        "--iterations", type=int, default=40, help="number of seeded runs"
    )
    parser.add_argument(
        "--rate", type=float, default=0.3, help="per-call fault probability"
    )
    options = parser.parse_args(argv)

    from repro.client.sql import SQLClient
    from repro.faultinject import FaultPlan, FaultyTransport
    from repro.obs import render_trace_tree, use_exporter
    from repro.resilience import Resilience, RetryPolicy, VirtualClock
    from repro.soap.fault import SoapFault
    from repro.transport import LoopbackTransport
    from repro.workload import RelationalWorkload, build_single_service

    deployment = build_single_service(RelationalWorkload(customers=4))
    expected = deployment.client.sql_query_rowset(
        deployment.address, deployment.name, "SELECT COUNT(*) FROM customers"
    ).rows

    outcomes: dict[str, int] = {}
    total_retries = 0
    total_injected = 0
    virtual_seconds = 0.0
    sample_tree: str | None = None
    for i in range(options.iterations):
        seed = options.seed + i
        clock = VirtualClock()
        plan = FaultPlan.chaos(seed=seed, rate=options.rate)
        resilience = Resilience(
            policy=RetryPolicy(max_attempts=4, budget_seconds=30.0),
            clock=clock,
            seed=seed,
        )
        transport = FaultyTransport(
            LoopbackTransport(deployment.registry),
            plan,
            clock=clock,
            resilience=resilience,
        )
        client = SQLClient(transport)
        with use_exporter() as exporter:
            from repro.obs import get_tracer

            with get_tracer().span("consumer.request", seed=seed):
                try:
                    rows = client.sql_query_rowset(
                        deployment.address,
                        deployment.name,
                        "SELECT COUNT(*) FROM customers",
                    ).rows
                    assert rows == expected, f"wrong answer under seed {seed}"
                    outcome = "ok"
                except SoapFault as fault:
                    outcome = type(fault).__name__
            retried = exporter.spans("rpc.retry")
            if retried and sample_tree is None and outcome == "ok":
                sample_tree = render_trace_tree(exporter.spans())
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        total_retries += int(
            resilience.metrics.counter("resilience.retries").total()
        )
        total_injected += int(
            transport.metrics.counter("faultinject.injected").total()
        )
        virtual_seconds += clock.now()

    print(
        f"chaos — {options.iterations} seeded runs "
        f"(base seed {options.seed}, fault rate {options.rate:.0%}):\n"
    )
    for outcome in sorted(outcomes):
        print(f"  {outcome:<28} {outcomes[outcome]:>4}")
    print(
        f"\n  faults injected: {total_injected}, retries taken: "
        f"{total_retries}, virtual backoff time: {virtual_seconds:.2f}s "
        f"(wall time: none — virtual clock)"
    )
    if sample_tree:
        print("\none retried call, as a single connected trace:\n")
        print(sample_tree)
    return 0


def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="render an exported span file as a trace tree",
    )
    parser.add_argument(
        "path", nargs="?", help="JSONL span file written by FileExporter"
    )
    parser.add_argument(
        "--trace-id", help="render only this trace id", default=None
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a traced factory chain over HTTP and render it",
    )
    options = parser.parse_args(argv)
    if options.demo:
        return _demo_trace()
    if not options.path:
        parser.error("a span file is required unless --demo is given")
    from repro.obs import load_spans, render_trace_tree

    spans = load_spans(options.path)
    if not spans:
        print(f"no spans in {options.path}")
        return 1
    print(render_trace_tree(spans, trace_id=options.trace_id))
    return 0


def jobs_main(argv: list[str]) -> int:
    """Submit → crash → restart → recover → execute → fetch, end to end."""
    parser = argparse.ArgumentParser(
        prog="python -m repro jobs",
        description="demo the durable asynchronous factory pipeline",
    )
    parser.add_argument(
        "--journal",
        default=None,
        help="journal path (default: a temporary file, removed afterwards)",
    )
    parser.add_argument(
        "--query",
        default="SELECT region, COUNT(*) FROM customers "
        "GROUP BY region ORDER BY 1",
        help="SQL expression the factory evaluates",
    )
    options = parser.parse_args(argv)

    import os
    import tempfile

    from repro.dair import SQLDataResource
    from repro.jobs import MODE_ASYNCHRONOUS, read_journal
    from repro.workload import RelationalWorkload, build_jobs_deployment

    if options.journal is None:
        handle, journal_path = tempfile.mkstemp(
            prefix="dais-jobs-", suffix=".jsonl"
        )
        os.close(handle)
        cleanup = True
    else:
        journal_path, cleanup = options.journal, False

    try:
        workload = RelationalWorkload(customers=10)
        print("1. first process: submit an asynchronous factory request")
        first = build_jobs_deployment(workload, journal_path=journal_path)
        submitted = first.client.sql_execute_factory(
            first.address,
            first.name,
            options.query,
            execution_mode=MODE_ASYNCHRONOUS,
        )
        job = first.jobs.get(submitted.job_id)
        print(f"   job {job.job_id}")
        print(f"   phase {job.phase}, journalled to {journal_path}")

        print("2. crash: the process dies before any worker claims the job")
        first.jobs.journal.close()
        records = read_journal(journal_path)
        print(f"   journal holds {len(records)} durable record(s)")

        print("3. restart: rebuild the job table from the journal")
        second = build_jobs_deployment(
            workload, journal_path=journal_path, recover=True
        )
        # The restarted service re-registers the same durable resource
        # name the recovered job's payload points at.
        second.service.add_resource(SQLDataResource(first.name, second.database))
        recovered = second.jobs.get(submitted.job_id)
        print(f"   recovered phase {recovered.phase}")

        print("4. execute: drain the queue, poll to a terminal phase")
        second.runner.drain()
        status = second.client.wait_for_job(
            second.address, submitted.job_id, sleep=lambda delay: None
        )
        print(f"   phase {status.phase}, attempts {status.attempts}")
        print(f"   derived resource {status.result_name}")

        print("5. fetch: page the derived rowset through streamed GetTuples")
        rowset = second.client.sql_rowset_factory(
            status.address, status.result_name
        )
        reader = second.client.rowset_reader(
            rowset.address, rowset.abstract_name, page_size=2
        )
        for row in reader:
            print("   " + " | ".join(str(value) for value in row))
        print(
            f"   {reader.total_rows} row(s) in {reader.pages_fetched} "
            f"GetTuples page(s)"
        )
        counts = second.jobs.counts()
        print(f"\njob table after the run: {counts}")
        return 0
    finally:
        if cleanup:
            try:
                os.unlink(journal_path)
            except OSError:
                pass


def serve_main(argv: list[str]) -> int:
    """Stand up one WS-DAIR service on a real HTTP port and serve until
    interrupted.  The bound port is printed as the first stdout line
    (``LISTENING <port>``) so harnesses — notably the c=10k tier of
    ``make bench-load``, which needs the server's file descriptors in a
    separate process — can drive it programmatically."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="serve one SQL realisation service over HTTP",
    )
    parser.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=8, help="handler pool size")
    parser.add_argument("--queue-depth", type=int, default=64, help="admission queue bound")
    parser.add_argument(
        "--queue-deadline", type=float, default=5.0,
        help="max queued wait seconds before a shed (<= 0 disables)",
    )
    parser.add_argument(
        "--read-deadline", type=float, default=10.0,
        help="slow-loris reap deadline for partial requests, seconds",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=60.0,
        help="idle keep-alive retention, seconds",
    )
    parser.add_argument(
        "--customers", type=int, default=100, help="synthetic workload size"
    )
    options = parser.parse_args(argv)

    from repro.workload import RelationalWorkload, build_http_deployment

    deployment = build_http_deployment(
        RelationalWorkload(customers=options.customers),
        port=options.port,
        workers=options.workers,
        queue_depth=options.queue_depth,
        queue_deadline=(
            options.queue_deadline if options.queue_deadline > 0 else None
        ),
        read_deadline=options.read_deadline,
        idle_timeout=options.idle_timeout,
    )
    with deployment.server:
        print(f"LISTENING {deployment.port}", flush=True)
        print(f"RESOURCE {deployment.name}", flush=True)
        print(f"service: {deployment.address}", flush=True)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Only the explicit subcommand routes away from the self-check, so
    # running under foreign argv (pytest, runpy) stays harmless.
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "jobs":
        return jobs_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    return self_check()


if __name__ == "__main__":
    sys.exit(main())
