"""Evaluation context and the node model the engine walks.

:mod:`repro.xmlutil` trees have no parent pointers (they are plain value
trees), so each evaluation builds a :class:`DocumentContext` that indexes
the tree once: parent links, document order, and synthetic nodes for the
document root and for attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.xmlutil import QName, XmlElement
from repro.xmlutil.tree import Comment, Text


@dataclass(frozen=True)
class AttributeNode:
    """An attribute viewed as an XPath node."""

    owner: XmlElement
    name: QName
    value: str


@dataclass(frozen=True)
class DocumentNode:
    """The synthetic root node (parent of the document element)."""

    root: XmlElement


XPathNode = Union[DocumentNode, XmlElement, Text, Comment, AttributeNode]
#: The four XPath value types: node-set, boolean, number, string.
XPathValue = Union[list, bool, float, str]


class DocumentContext:
    """Per-document index: parent links and document order."""

    def __init__(self, root: XmlElement) -> None:
        self.document = DocumentNode(root)
        self._parents: dict[int, XPathNode] = {}
        self._order: dict[int, int] = {id(self.document): 0}
        self._attr_cache: dict[int, dict[QName, AttributeNode]] = {}
        self._counter = 1
        self._index(root, self.document)

    def _index(self, element: XmlElement, parent: XPathNode) -> None:
        """Depth-first walk assigning parent links and document order.

        Attributes are ordered immediately after their owning element, as
        XPath 1.0 prescribes.
        """
        self._parents[id(element)] = parent
        self._order[id(element)] = self._counter
        self._counter += 1
        attrs: dict[QName, AttributeNode] = {}
        for name, value in element.attributes.items():
            attr = AttributeNode(element, name, value)
            attrs[name] = attr
            self._parents[id(attr)] = element
            self._order[id(attr)] = self._counter
            self._counter += 1
        self._attr_cache[id(element)] = attrs
        for child in element.children:
            if isinstance(child, XmlElement):
                self._index(child, element)
            else:
                self._parents[id(child)] = element
                self._order[id(child)] = self._counter
                self._counter += 1

    def parent_of(self, node: XPathNode) -> XPathNode | None:
        """Parent of *node*, or None for the document node."""
        return self._parents.get(id(node))

    def order_key(self, node: XPathNode) -> int:
        """Monotone document-order key (smaller = earlier)."""
        return self._order.get(id(node), 1 << 60)

    def attributes_of(self, element: XmlElement) -> list[AttributeNode]:
        """Canonical attribute nodes of *element*."""
        cache = self._attr_cache.get(id(element))
        if cache is None:
            cache = {
                name: AttributeNode(element, name, value)
                for name, value in element.attributes.items()
            }
            self._attr_cache[id(element)] = cache
            for attr in cache.values():
                self._parents[id(attr)] = element
        return list(cache.values())

    def sort_document_order(self, nodes: list[XPathNode]) -> list[XPathNode]:
        """Sort & deduplicate a node list into document order."""
        seen: set[int] = set()
        unique: list[XPathNode] = []
        for node in nodes:
            if id(node) not in seen:
                seen.add(id(node))
                unique.append(node)
        unique.sort(key=self.order_key)
        return unique


@dataclass
class XPathContext:
    """The dynamic context of one evaluation."""

    document: DocumentContext
    node: XPathNode
    position: int = 1
    size: int = 1
    variables: dict[str, Any] = field(default_factory=dict)
    namespaces: dict[str, str] = field(default_factory=dict)

    def with_node(self, node: XPathNode, position: int, size: int) -> "XPathContext":
        return XPathContext(
            self.document, node, position, size, self.variables, self.namespaces
        )


def string_value(node: XPathNode) -> str:
    """The XPath string-value of a node."""
    if isinstance(node, (Text, Comment)):
        return node.value
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, DocumentNode):
        return string_value(node.root)
    parts: list[str] = []
    _collect_text(node, parts)
    return "".join(parts)


def _collect_text(element: XmlElement, out: list[str]) -> None:
    for child in element.children:
        if isinstance(child, Text):
            out.append(child.value)
        elif isinstance(child, XmlElement):
            _collect_text(child, out)


def expanded_name(node: XPathNode) -> QName | None:
    """The expanded-name of a node, or None for unnamed node kinds."""
    if isinstance(node, XmlElement):
        return node.tag
    if isinstance(node, AttributeNode):
        return node.name
    return None
