"""The XPath evaluator: axes, node tests, predicates and expressions."""

from __future__ import annotations

import math
from functools import lru_cache

from repro.obs import get_tracer
from repro.xmlutil import QName, XmlElement
from repro.xmlutil.tree import Comment, Text
from repro.xpath import ast
from repro.xpath.context import (
    AttributeNode,
    DocumentContext,
    DocumentNode,
    XPathContext,
    XPathNode,
    string_value,
)
from repro.xpath.errors import XPathEvaluationError
from repro.xpath.functions import CORE_FUNCTIONS, to_boolean, to_number, to_string
from repro.xpath.parser import parse


@lru_cache(maxsize=512)
def compile_xpath(expression: str) -> ast.Expr:
    """Parse (with caching) an XPath expression into its AST."""
    return parse(expression)


class XPathEngine:
    """A reusable evaluator.

    :param namespaces: prefix → URI bindings for name tests in expressions.
    :param functions: extension functions merged over the XPath core library.
    """

    def __init__(
        self,
        namespaces: dict[str, str] | None = None,
        functions: dict | None = None,
    ) -> None:
        self._namespaces = dict(namespaces or {})
        self._functions = dict(CORE_FUNCTIONS)
        if functions:
            self._functions.update(functions)

    def evaluate(
        self,
        expression: str,
        root: XmlElement,
        context_node: XPathNode | None = None,
        variables: dict | None = None,
    ):
        """Evaluate *expression* against the document rooted at *root*.

        Returns one of the four XPath value types; node-sets come back as
        lists in document order.  Each evaluation is one
        ``xpath.evaluate`` span carrying the expression and result shape.
        """
        with get_tracer().span("xpath.evaluate", expression=expression) as span:
            tree = compile_xpath(expression)
            document = DocumentContext(root)
            ctx = XPathContext(
                document=document,
                node=context_node if context_node is not None else document.document,
                variables=dict(variables or {}),
                namespaces=self._namespaces,
            )
            result = self._eval(tree, ctx)
            if span.recording:
                span.set_attribute("result_type", type(result).__name__)
                if isinstance(result, list):
                    span.set_attribute("result_nodes", len(result))
            return result

    def select(self, expression: str, root: XmlElement, **kwargs) -> list[XPathNode]:
        """Evaluate and require a node-set result."""
        result = self.evaluate(expression, root, **kwargs)
        if not isinstance(result, list):
            raise XPathEvaluationError(
                f"expression {expression!r} returned a "
                f"{type(result).__name__}, not a node-set"
            )
        return result

    # -- dispatch -----------------------------------------------------------

    def _eval(self, node: ast.Expr, ctx: XPathContext):
        method = self._DISPATCH[type(node)]
        return method(self, node, ctx)

    def _eval_number(self, node: ast.NumberLiteral, ctx: XPathContext) -> float:
        return node.value

    def _eval_string(self, node: ast.StringLiteral, ctx: XPathContext) -> str:
        return node.value

    def _eval_variable(self, node: ast.VariableRef, ctx: XPathContext):
        try:
            return ctx.variables[node.name]
        except KeyError:
            raise XPathEvaluationError(f"unbound variable ${node.name}") from None

    def _eval_function(self, node: ast.FunctionCall, ctx: XPathContext):
        function = self._functions.get(node.name)
        if function is None:
            raise XPathEvaluationError(f"unknown function {node.name}()")
        args = [self._eval(arg, ctx) for arg in node.args]
        try:
            return function(ctx, *args)
        except TypeError as exc:
            raise XPathEvaluationError(f"{node.name}(): {exc}") from exc

    def _eval_or(self, node: ast.OrExpr, ctx: XPathContext) -> bool:
        return any(to_boolean(self._eval(part, ctx)) for part in node.parts)

    def _eval_and(self, node: ast.AndExpr, ctx: XPathContext) -> bool:
        return all(to_boolean(self._eval(part, ctx)) for part in node.parts)

    def _eval_negate(self, node: ast.NegateExpr, ctx: XPathContext) -> float:
        return -to_number(self._eval(node.operand, ctx))

    def _eval_arithmetic(self, node: ast.ArithmeticExpr, ctx: XPathContext) -> float:
        left = to_number(self._eval(node.left, ctx))
        right = to_number(self._eval(node.right, ctx))
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "div":
            if right == 0:
                if left == 0 or math.isnan(left):
                    return math.nan
                return math.inf if left > 0 else -math.inf
            return left / right
        if node.op == "mod":
            if right == 0 or math.isnan(left) or math.isnan(right):
                return math.nan
            # XPath mod keeps the sign of the dividend (like fmod).
            return math.fmod(left, right)
        raise XPathEvaluationError(f"unknown arithmetic operator {node.op}")

    def _eval_comparison(self, node: ast.ComparisonExpr, ctx: XPathContext) -> bool:
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        return _compare(node.op, left, right)

    def _eval_union(self, node: ast.UnionExpr, ctx: XPathContext) -> list:
        combined: list[XPathNode] = []
        for part in node.parts:
            value = self._eval(part, ctx)
            if not isinstance(value, list):
                raise XPathEvaluationError("union operands must be node-sets")
            combined.extend(value)
        return ctx.document.sort_document_order(combined)

    def _eval_filter(self, node: ast.FilterExpr, ctx: XPathContext) -> list:
        value = self._eval(node.primary, ctx)
        if not isinstance(value, list):
            raise XPathEvaluationError("predicates require a node-set")
        nodes = ctx.document.sort_document_order(value)
        for predicate in node.predicates:
            nodes = self._filter(nodes, predicate, ctx)
        return nodes

    def _eval_path(self, node: ast.PathExpr, ctx: XPathContext) -> list:
        start = self._eval(node.start, ctx)
        if not isinstance(start, list):
            raise XPathEvaluationError("a path step requires a node-set start")
        if node.descendant_glue:
            glue = ast.Step("descendant-or-self", ast.NodeTest("node"))
            steps = (glue,) + node.path.steps
        else:
            steps = node.path.steps
        return self._walk(start, steps, ctx)

    def _eval_location_path(self, node: ast.LocationPath, ctx: XPathContext) -> list:
        if node.absolute:
            start: list[XPathNode] = [ctx.document.document]
        else:
            start = [ctx.node]
        return self._walk(start, node.steps, ctx)

    _DISPATCH = {}

    # -- path machinery ------------------------------------------------------

    def _walk(
        self, start: list[XPathNode], steps: tuple[ast.Step, ...], ctx: XPathContext
    ) -> list:
        current = ctx.document.sort_document_order(list(start))
        for step in steps:
            gathered: list[XPathNode] = []
            for node in current:
                candidates = self._axis(step.axis, node, ctx.document)
                matched = [
                    c for c in candidates if _node_test(step.test, c, step.axis, ctx)
                ]
                for predicate in step.predicates:
                    reverse = step.axis in _REVERSE_AXES
                    matched = self._filter(matched, predicate, ctx, reverse)
                gathered.extend(matched)
            current = ctx.document.sort_document_order(gathered)
        return current

    def _filter(
        self,
        nodes: list[XPathNode],
        predicate: ast.Expr,
        ctx: XPathContext,
        reverse: bool = False,
    ) -> list[XPathNode]:
        ordered = list(reversed(nodes)) if reverse else nodes
        kept: list[XPathNode] = []
        size = len(ordered)
        for index, node in enumerate(ordered, start=1):
            sub = ctx.with_node(node, index, size)
            value = self._eval(predicate, sub)
            if isinstance(value, float):
                selected = value == index
            else:
                selected = to_boolean(value)
            if selected:
                kept.append(node)
        if reverse:
            kept.reverse()
        return kept

    def _axis(
        self, axis: str, node: XPathNode, document: DocumentContext
    ) -> list[XPathNode]:
        if axis == "self":
            return [node]
        if axis == "child":
            return _children(node)
        if axis == "attribute":
            if isinstance(node, XmlElement):
                return list(document.attributes_of(node))
            return []
        if axis == "parent":
            parent = document.parent_of(node)
            return [parent] if parent is not None else []
        if axis == "ancestor":
            return _ancestors(node, document)
        if axis == "ancestor-or-self":
            return [node] + _ancestors(node, document)
        if axis == "descendant":
            return _descendants(node)
        if axis == "descendant-or-self":
            return [node] + _descendants(node)
        if axis == "following-sibling":
            return _siblings(node, document, forward=True)
        if axis == "preceding-sibling":
            return _siblings(node, document, forward=False)
        if axis == "following":
            return _following(node, document)
        if axis == "preceding":
            return _preceding(node, document)
        raise XPathEvaluationError(f"unsupported axis {axis!r}")


def _children(node: XPathNode) -> list[XPathNode]:
    if isinstance(node, DocumentNode):
        return [node.root]
    if isinstance(node, XmlElement):
        return list(node.children)
    return []


def _descendants(node: XPathNode) -> list[XPathNode]:
    out: list[XPathNode] = []
    stack = _children(node)
    while stack:
        child = stack.pop(0)
        out.append(child)
        if isinstance(child, XmlElement):
            stack = list(child.children) + stack
    return out


def _ancestors(node: XPathNode, document: DocumentContext) -> list[XPathNode]:
    out: list[XPathNode] = []
    parent = document.parent_of(node)
    while parent is not None:
        out.append(parent)
        parent = document.parent_of(parent)
    return out


def _siblings(
    node: XPathNode, document: DocumentContext, forward: bool
) -> list[XPathNode]:
    if isinstance(node, AttributeNode):
        return []
    parent = document.parent_of(node)
    if parent is None or isinstance(node, DocumentNode):
        return []
    siblings = _children(parent)
    index = next(
        (i for i, sibling in enumerate(siblings) if sibling is node), None
    )
    if index is None:
        return []
    if forward:
        return siblings[index + 1 :]
    return list(reversed(siblings[:index]))


def _following(node: XPathNode, document: DocumentContext) -> list[XPathNode]:
    out: list[XPathNode] = []
    current: XPathNode | None = node
    while current is not None and not isinstance(current, DocumentNode):
        for sibling in _siblings(current, document, forward=True):
            out.append(sibling)
            out.extend(_descendants(sibling))
        current = document.parent_of(current)
    return out


def _preceding(node: XPathNode, document: DocumentContext) -> list[XPathNode]:
    out: list[XPathNode] = []
    current: XPathNode | None = node
    while current is not None and not isinstance(current, DocumentNode):
        for sibling in _siblings(current, document, forward=False):
            out.extend(reversed(_descendants(sibling)))
            out.append(sibling)
        current = document.parent_of(current)
    out.reverse()
    return out


_REVERSE_AXES = {"ancestor", "ancestor-or-self", "preceding", "preceding-sibling"}


def _node_test(
    test: ast.NodeTest, node: XPathNode, axis: str, ctx: XPathContext
) -> bool:
    if test.kind == "node":
        return True
    if test.kind == "text":
        return isinstance(node, Text)
    if test.kind == "comment":
        return isinstance(node, Comment)
    if test.kind == "processing-instruction":
        return False  # PIs are not retained by the parser
    # Name tests apply to the principal node type of the axis.
    if axis == "attribute":
        if not isinstance(node, AttributeNode):
            return False
        name = node.name
    else:
        if not isinstance(node, XmlElement):
            return False
        name = node.tag
    if test.kind == "wildcard":
        if test.prefix:
            uri = _resolve_prefix(test.prefix, ctx)
            return name.namespace == uri
        return True
    uri = _resolve_prefix(test.prefix, ctx) if test.prefix else ""
    return name == QName(uri, test.local)


def _resolve_prefix(prefix: str, ctx: XPathContext) -> str:
    try:
        return ctx.namespaces[prefix]
    except KeyError:
        raise XPathEvaluationError(
            f"undeclared namespace prefix {prefix!r} in expression"
        ) from None


def _compare(op: str, left, right) -> bool:
    left_set = isinstance(left, list)
    right_set = isinstance(right, list)
    # Per XPath 1.0 §3.4: node-set vs boolean compares boolean(node-set).
    if left_set and isinstance(right, bool):
        return _compare_atomic(op, to_boolean(left), right)
    if right_set and isinstance(left, bool):
        return _compare_atomic(op, left, to_boolean(right))
    if left_set and right_set:
        left_values = [string_value(n) for n in left]
        right_values = [string_value(n) for n in right]
        return any(
            _compare_atomic(op, lv, rv) for lv in left_values for rv in right_values
        )
    if left_set:
        return any(_compare_node(op, string_value(n), right) for n in left)
    if right_set:
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        return any(_compare_node(flipped, string_value(n), left) for n in right)
    return _compare_atomic(op, left, right)


def _compare_node(op: str, node_string: str, other) -> bool:
    """Existential comparison of one node's string-value with an atomic."""
    if isinstance(other, float) or op in ("<", "<=", ">", ">="):
        return _compare_atomic(op, to_number(node_string), other)
    return _compare_atomic(op, node_string, other)


def _compare_atomic(op: str, left, right) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    lnum, rnum = to_number(left), to_number(right)
    if math.isnan(lnum) or math.isnan(rnum):
        return False
    if op == "<":
        return lnum < rnum
    if op == "<=":
        return lnum <= rnum
    if op == ">":
        return lnum > rnum
    return lnum >= rnum


XPathEngine._DISPATCH = {
    ast.NumberLiteral: XPathEngine._eval_number,
    ast.StringLiteral: XPathEngine._eval_string,
    ast.VariableRef: XPathEngine._eval_variable,
    ast.FunctionCall: XPathEngine._eval_function,
    ast.OrExpr: XPathEngine._eval_or,
    ast.AndExpr: XPathEngine._eval_and,
    ast.NegateExpr: XPathEngine._eval_negate,
    ast.ArithmeticExpr: XPathEngine._eval_arithmetic,
    ast.ComparisonExpr: XPathEngine._eval_comparison,
    ast.UnionExpr: XPathEngine._eval_union,
    ast.FilterExpr: XPathEngine._eval_filter,
    ast.PathExpr: XPathEngine._eval_path,
    ast.LocationPath: XPathEngine._eval_location_path,
}
