"""XPath 1.0 tokenizer.

Implements the lexical rules of the XPath 1.0 recommendation, including the
disambiguation notes of §3.7: ``*`` is a multiply operator when preceded by
an operand, a wildcard otherwise; an NCName followed by ``(`` is a function
name unless it is a node-type or axis keyword, and so on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.xpath.errors import XPathSyntaxError


class TokenType(Enum):
    NUMBER = auto()
    LITERAL = auto()
    NAME = auto()          # NCName or prefixed name (prefix:local / prefix:*)
    WILDCARD = auto()      # *
    NODE_TYPE = auto()     # node | text | comment | processing-instruction
    FUNCTION_NAME = auto()
    AXIS = auto()          # axis name followed by ::
    VARIABLE = auto()      # $qname
    OPERATOR = auto()      # and or mod div + - = != < <= > >= | / // union etc.
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    DOT = auto()
    DOTDOT = auto()
    AT = auto()
    SLASH = auto()
    DOUBLE_SLASH = auto()
    PIPE = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int


_NUMBER_RE = re.compile(r"\d+(\.\d*)?|\.\d+")
_NCNAME = r"[A-Za-z_À-￿][\w.\-·À-￿]*"
_NAME_RE = re.compile(rf"({_NCNAME})(:({_NCNAME}|\*))?")
_WS_RE = re.compile(r"\s+")

_AXIS_NAMES = {
    "ancestor",
    "ancestor-or-self",
    "attribute",
    "child",
    "descendant",
    "descendant-or-self",
    "following",
    "following-sibling",
    "parent",
    "preceding",
    "preceding-sibling",
    "self",
}
_NODE_TYPES = {"node", "text", "comment", "processing-instruction"}
_NAMED_OPERATORS = {"and", "or", "mod", "div"}


def tokenize(expression: str) -> list[Token]:
    """Tokenize *expression*; raises :class:`XPathSyntaxError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    n = len(expression)

    def prev_is_operand() -> bool:
        """Per XPath §3.7: decide whether ``*``/names act as operators."""
        if not tokens:
            return False
        last = tokens[-1]
        if last.type in (
            TokenType.NUMBER,
            TokenType.LITERAL,
            TokenType.RPAREN,
            TokenType.RBRACKET,
            TokenType.DOT,
            TokenType.DOTDOT,
            TokenType.VARIABLE,
            TokenType.NAME,
            TokenType.WILDCARD,
            TokenType.NODE_TYPE,
        ):
            return True
        return False

    while pos < n:
        ws = _WS_RE.match(expression, pos)
        if ws:
            pos = ws.end()
            continue
        ch = expression[pos]

        if ch in "'\"":
            end = expression.find(ch, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated literal", expression, pos)
            tokens.append(Token(TokenType.LITERAL, expression[pos + 1 : end], pos))
            pos = end + 1
            continue

        number = _NUMBER_RE.match(expression, pos)
        if number and (ch.isdigit() or ch == "."):
            if ch == "." and not (pos + 1 < n and expression[pos + 1].isdigit()):
                pass  # fall through: '.' / '..'
            else:
                tokens.append(Token(TokenType.NUMBER, number.group(), pos))
                pos = number.end()
                continue

        if expression.startswith("..", pos):
            tokens.append(Token(TokenType.DOTDOT, "..", pos))
            pos += 2
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", pos))
            pos += 1
            continue
        if expression.startswith("//", pos):
            tokens.append(Token(TokenType.DOUBLE_SLASH, "//", pos))
            pos += 2
            continue
        if ch == "/":
            tokens.append(Token(TokenType.SLASH, "/", pos))
            pos += 1
            continue
        if ch == "|":
            tokens.append(Token(TokenType.PIPE, "|", pos))
            pos += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", pos))
            pos += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", pos))
            pos += 1
            continue
        if ch == "[":
            tokens.append(Token(TokenType.LBRACKET, "[", pos))
            pos += 1
            continue
        if ch == "]":
            tokens.append(Token(TokenType.RBRACKET, "]", pos))
            pos += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", pos))
            pos += 1
            continue
        if ch == "@":
            tokens.append(Token(TokenType.AT, "@", pos))
            pos += 1
            continue
        if ch == "$":
            name = _NAME_RE.match(expression, pos + 1)
            if not name or name.group().endswith("*"):
                raise XPathSyntaxError("invalid variable name", expression, pos)
            tokens.append(Token(TokenType.VARIABLE, name.group(), pos))
            pos = name.end()
            continue
        if expression.startswith(("<=", ">=", "!="), pos):
            tokens.append(Token(TokenType.OPERATOR, expression[pos : pos + 2], pos))
            pos += 2
            continue
        if ch in "<>=+-":
            tokens.append(Token(TokenType.OPERATOR, ch, pos))
            pos += 1
            continue
        if ch == "*":
            if prev_is_operand():
                tokens.append(Token(TokenType.OPERATOR, "*", pos))
            else:
                tokens.append(Token(TokenType.WILDCARD, "*", pos))
            pos += 1
            continue

        name = _NAME_RE.match(expression, pos)
        if name:
            text = name.group()
            end = name.end()
            # Named operators only in operand position.
            if text in _NAMED_OPERATORS and prev_is_operand():
                tokens.append(Token(TokenType.OPERATOR, text, pos))
                pos = end
                continue
            rest = expression[end:]
            rest_stripped = rest.lstrip()
            if rest_stripped.startswith("::"):
                if text not in _AXIS_NAMES:
                    raise XPathSyntaxError(f"unknown axis {text!r}", expression, pos)
                tokens.append(Token(TokenType.AXIS, text, pos))
                pos = end + (len(rest) - len(rest_stripped)) + 2
                continue
            if rest_stripped.startswith("("):
                if text in _NODE_TYPES:
                    tokens.append(Token(TokenType.NODE_TYPE, text, pos))
                else:
                    tokens.append(Token(TokenType.FUNCTION_NAME, text, pos))
                pos = end
                continue
            tokens.append(Token(TokenType.NAME, text, pos))
            pos = end
            continue

        raise XPathSyntaxError(f"unexpected character {ch!r}", expression, pos)

    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
