"""An XPath 1.0-subset engine over :mod:`repro.xmlutil` trees.

This engine backs two parts of the system:

* the WS-DAIX ``XPathExecute`` operation of :mod:`repro.daix`, evaluated
  against documents stored in :mod:`repro.xmldb`;
* the WSRF ``QueryResourceProperties`` operation of :mod:`repro.wsrf`,
  whose standard query dialect is XPath 1.0 over the property document.

Supported: all forward/reverse axes except ``namespace``, name/wildcard/
``node()``/``text()`` node tests, full expression grammar (predicates,
unions, arithmetic, comparisons, ``and``/``or``), the XPath 1.0 core
function library, and variable references.  Not supported: the ``id()``
function and the ``namespace`` axis, neither of which appears in DAIS use.
"""

from repro.xpath.errors import XPathError, XPathSyntaxError, XPathEvaluationError
from repro.xpath.evaluator import XPathEngine, compile_xpath
from repro.xpath.context import AttributeNode, XPathContext

__all__ = [
    "XPathError",
    "XPathSyntaxError",
    "XPathEvaluationError",
    "XPathEngine",
    "compile_xpath",
    "AttributeNode",
    "XPathContext",
]
