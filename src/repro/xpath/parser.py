"""Recursive-descent parser for the XPath 1.0 grammar."""

from __future__ import annotations

from repro.xpath import ast
from repro.xpath.errors import XPathSyntaxError
from repro.xpath.lexer import Token, TokenType, tokenize


def parse(expression: str) -> ast.Expr:
    """Parse *expression* into an AST; raises :class:`XPathSyntaxError`."""
    parser = _Parser(expression, tokenize(expression))
    tree = parser.parse_or_expr()
    parser.expect(TokenType.EOF)
    return tree


class _Parser:
    def __init__(self, expression: str, tokens: list[Token]) -> None:
        self._expression = expression
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def accept(self, type_: TokenType, value: str | None = None) -> Token | None:
        token = self.current
        if token.type is type_ and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, type_: TokenType, value: str | None = None) -> Token:
        token = self.accept(type_, value)
        if token is None:
            raise self.error(
                f"expected {value or type_.name}, found {self.current.value!r}"
            )
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self._expression, self.current.position)

    # -- expression grammar ---------------------------------------------------

    def parse_or_expr(self) -> ast.Expr:
        parts = [self.parse_and_expr()]
        while self.accept(TokenType.OPERATOR, "or"):
            parts.append(self.parse_and_expr())
        return parts[0] if len(parts) == 1 else ast.OrExpr(tuple(parts))

    def parse_and_expr(self) -> ast.Expr:
        parts = [self.parse_equality_expr()]
        while self.accept(TokenType.OPERATOR, "and"):
            parts.append(self.parse_equality_expr())
        return parts[0] if len(parts) == 1 else ast.AndExpr(tuple(parts))

    def parse_equality_expr(self) -> ast.Expr:
        left = self.parse_relational_expr()
        while self.current.type is TokenType.OPERATOR and self.current.value in (
            "=",
            "!=",
        ):
            op = self.advance().value
            left = ast.ComparisonExpr(op, left, self.parse_relational_expr())
        return left

    def parse_relational_expr(self) -> ast.Expr:
        left = self.parse_additive_expr()
        while self.current.type is TokenType.OPERATOR and self.current.value in (
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self.advance().value
            left = ast.ComparisonExpr(op, left, self.parse_additive_expr())
        return left

    def parse_additive_expr(self) -> ast.Expr:
        left = self.parse_multiplicative_expr()
        while self.current.type is TokenType.OPERATOR and self.current.value in (
            "+",
            "-",
        ):
            op = self.advance().value
            left = ast.ArithmeticExpr(op, left, self.parse_multiplicative_expr())
        return left

    def parse_multiplicative_expr(self) -> ast.Expr:
        left = self.parse_unary_expr()
        while self.current.type is TokenType.OPERATOR and self.current.value in (
            "*",
            "div",
            "mod",
        ):
            op = self.advance().value
            left = ast.ArithmeticExpr(op, left, self.parse_unary_expr())
        return left

    def parse_unary_expr(self) -> ast.Expr:
        negations = 0
        while self.accept(TokenType.OPERATOR, "-"):
            negations += 1
        expr = self.parse_union_expr()
        for _ in range(negations):
            expr = ast.NegateExpr(expr)
        return expr

    def parse_union_expr(self) -> ast.Expr:
        parts = [self.parse_path_expr()]
        while self.accept(TokenType.PIPE):
            parts.append(self.parse_path_expr())
        return parts[0] if len(parts) == 1 else ast.UnionExpr(tuple(parts))

    # -- paths ------------------------------------------------------------

    def parse_path_expr(self) -> ast.Expr:
        if self._at_primary_expr():
            primary = self.parse_primary_expr()
            predicates = self.parse_predicates()
            filtered: ast.Expr = (
                primary
                if not predicates
                else ast.FilterExpr(primary, tuple(predicates))
            )
            if self.current.type in (TokenType.SLASH, TokenType.DOUBLE_SLASH):
                glue = self.advance().type is TokenType.DOUBLE_SLASH
                path = self.parse_relative_location_path()
                return ast.PathExpr(filtered, glue, path)
            return filtered
        return self.parse_location_path()

    def _at_primary_expr(self) -> bool:
        token = self.current
        if token.type in (
            TokenType.NUMBER,
            TokenType.LITERAL,
            TokenType.VARIABLE,
            TokenType.LPAREN,
            TokenType.FUNCTION_NAME,
        ):
            return True
        return False

    def parse_primary_expr(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.NumberLiteral(float(token.value))
        if token.type is TokenType.LITERAL:
            self.advance()
            return ast.StringLiteral(token.value)
        if token.type is TokenType.VARIABLE:
            self.advance()
            return ast.VariableRef(token.value)
        if token.type is TokenType.LPAREN:
            self.advance()
            inner = self.parse_or_expr()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.FUNCTION_NAME:
            self.advance()
            self.expect(TokenType.LPAREN)
            args: list[ast.Expr] = []
            if self.current.type is not TokenType.RPAREN:
                args.append(self.parse_or_expr())
                while self.accept(TokenType.COMMA):
                    args.append(self.parse_or_expr())
            self.expect(TokenType.RPAREN)
            return ast.FunctionCall(token.value, tuple(args))
        raise self.error("expected a primary expression")

    def parse_location_path(self) -> ast.LocationPath:
        if self.accept(TokenType.DOUBLE_SLASH):
            steps = [_descendant_or_self_step()]
            rest = self.parse_relative_location_path()
            return ast.LocationPath(True, tuple(steps) + rest.steps)
        if self.accept(TokenType.SLASH):
            if self._at_step():
                rest = self.parse_relative_location_path()
                return ast.LocationPath(True, rest.steps)
            return ast.LocationPath(True, ())
        return self.parse_relative_location_path()

    def parse_relative_location_path(self) -> ast.LocationPath:
        steps = [self.parse_step()]
        while True:
            if self.accept(TokenType.DOUBLE_SLASH):
                steps.append(_descendant_or_self_step())
                steps.append(self.parse_step())
            elif self.accept(TokenType.SLASH):
                steps.append(self.parse_step())
            else:
                break
        return ast.LocationPath(False, tuple(steps))

    def _at_step(self) -> bool:
        return self.current.type in (
            TokenType.NAME,
            TokenType.WILDCARD,
            TokenType.NODE_TYPE,
            TokenType.AXIS,
            TokenType.AT,
            TokenType.DOT,
            TokenType.DOTDOT,
        )

    def parse_step(self) -> ast.Step:
        if self.accept(TokenType.DOT):
            return ast.Step("self", ast.NodeTest("node"))
        if self.accept(TokenType.DOTDOT):
            return ast.Step("parent", ast.NodeTest("node"))

        axis = "child"
        if self.current.type is TokenType.AXIS:
            axis = self.advance().value
        elif self.accept(TokenType.AT):
            axis = "attribute"

        test = self.parse_node_test()
        predicates = self.parse_predicates()
        return ast.Step(axis, test, tuple(predicates))

    def parse_node_test(self) -> ast.NodeTest:
        token = self.current
        if token.type is TokenType.WILDCARD:
            self.advance()
            return ast.NodeTest("wildcard")
        if token.type is TokenType.NODE_TYPE:
            self.advance()
            self.expect(TokenType.LPAREN)
            if token.value == "processing-instruction":
                self.accept(TokenType.LITERAL)
            self.expect(TokenType.RPAREN)
            return ast.NodeTest(token.value)
        if token.type is TokenType.NAME:
            self.advance()
            prefix, sep, local = token.value.partition(":")
            if not sep:
                return ast.NodeTest("name", "", token.value)
            if local == "*":
                return ast.NodeTest("wildcard", prefix, "")
            return ast.NodeTest("name", prefix, local)
        raise self.error("expected a node test")

    def parse_predicates(self) -> list[ast.Expr]:
        predicates: list[ast.Expr] = []
        while self.accept(TokenType.LBRACKET):
            predicates.append(self.parse_or_expr())
            self.expect(TokenType.RBRACKET)
        return predicates


def _descendant_or_self_step() -> ast.Step:
    return ast.Step("descendant-or-self", ast.NodeTest("node"))
