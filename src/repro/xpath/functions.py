"""The XPath 1.0 core function library.

Each function receives the call context and already-evaluated arguments
and returns an XPath value.  Type coercions follow the recommendation:
``string()``, ``number()`` and ``boolean()`` are exposed both as callable
functions and as the coercion helpers the evaluator itself uses.
"""

from __future__ import annotations

import math

from repro.xpath.context import XPathContext, expanded_name, string_value
from repro.xpath.errors import XPathEvaluationError


def to_string(value) -> str:
    """XPath ``string()`` coercion."""
    if isinstance(value, list):
        return string_value(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    return value


def format_number(value: float) -> str:
    """Render a number the way XPath 1.0 prescribes (no trailing ``.0``)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def to_number(value) -> float:
    """XPath ``number()`` coercion (NaN on unparseable strings)."""
    if isinstance(value, list):
        return to_number(to_string(value))
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    try:
        return float(value.strip())
    except (ValueError, AttributeError):
        return math.nan


def to_boolean(value) -> bool:
    """XPath ``boolean()`` coercion."""
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return bool(value) and not math.isnan(value)
    return bool(value)


def _require_nodeset(value, function: str) -> list:
    if not isinstance(value, list):
        raise XPathEvaluationError(f"{function}() requires a node-set argument")
    return value


# -- node-set functions -------------------------------------------------------


def fn_last(ctx: XPathContext) -> float:
    return float(ctx.size)


def fn_position(ctx: XPathContext) -> float:
    return float(ctx.position)


def fn_count(ctx: XPathContext, nodes) -> float:
    return float(len(_require_nodeset(nodes, "count")))


def fn_local_name(ctx: XPathContext, nodes=None) -> str:
    node = _context_or_first(ctx, nodes, "local-name")
    name = expanded_name(node) if node is not None else None
    return name.local if name else ""


def fn_namespace_uri(ctx: XPathContext, nodes=None) -> str:
    node = _context_or_first(ctx, nodes, "namespace-uri")
    name = expanded_name(node) if node is not None else None
    return name.namespace if name else ""


def fn_name(ctx: XPathContext, nodes=None) -> str:
    # Without in-scope prefix tracking on output, the expanded local name
    # is the most useful stable rendering.
    return fn_local_name(ctx, nodes)


def _context_or_first(ctx: XPathContext, nodes, function: str):
    if nodes is None:
        return ctx.node
    nodeset = _require_nodeset(nodes, function)
    return nodeset[0] if nodeset else None


# -- string functions ---------------------------------------------------------


def fn_string(ctx: XPathContext, value=None) -> str:
    if value is None:
        return string_value(ctx.node)
    return to_string(value)


def fn_concat(ctx: XPathContext, *parts) -> str:
    if len(parts) < 2:
        raise XPathEvaluationError("concat() requires at least two arguments")
    return "".join(to_string(p) for p in parts)


def fn_starts_with(ctx: XPathContext, a, b) -> bool:
    return to_string(a).startswith(to_string(b))


def fn_contains(ctx: XPathContext, a, b) -> bool:
    return to_string(b) in to_string(a)


def fn_substring_before(ctx: XPathContext, a, b) -> str:
    text, sep = to_string(a), to_string(b)
    before, found, _ = text.partition(sep)
    return before if found else ""


def fn_substring_after(ctx: XPathContext, a, b) -> str:
    text, sep = to_string(a), to_string(b)
    _, found, after = text.partition(sep)
    return after if found else ""


def fn_substring(ctx: XPathContext, value, start, length=None) -> str:
    text = to_string(value)
    begin = to_number(start)
    if math.isnan(begin):
        return ""
    begin = round(begin)
    if length is None:
        end = len(text) + 1
    else:
        span = to_number(length)
        if math.isnan(span):
            return ""
        end = begin + round(span)
    # XPath positions are 1-based and the window is [begin, begin+len).
    lo = max(1, begin)
    hi = max(lo, end)
    return text[lo - 1 : hi - 1]


def fn_string_length(ctx: XPathContext, value=None) -> float:
    text = string_value(ctx.node) if value is None else to_string(value)
    return float(len(text))


def fn_normalize_space(ctx: XPathContext, value=None) -> str:
    text = string_value(ctx.node) if value is None else to_string(value)
    return " ".join(text.split())


def fn_translate(ctx: XPathContext, value, src, dst) -> str:
    text, from_chars, to_chars = to_string(value), to_string(src), to_string(dst)
    table: dict[int, int | None] = {}
    for index, ch in enumerate(from_chars):
        if ord(ch) in table:
            continue
        table[ord(ch)] = ord(to_chars[index]) if index < len(to_chars) else None
    return text.translate(table)


# -- boolean functions --------------------------------------------------------


def fn_boolean(ctx: XPathContext, value) -> bool:
    return to_boolean(value)


def fn_not(ctx: XPathContext, value) -> bool:
    return not to_boolean(value)


def fn_true(ctx: XPathContext) -> bool:
    return True


def fn_false(ctx: XPathContext) -> bool:
    return False


def fn_lang(ctx: XPathContext, value) -> bool:
    # xml:lang support: walk ancestors looking for the attribute.
    from repro.xmlutil.names import XML_NS
    from repro.xmlutil import QName, XmlElement

    wanted = to_string(value).lower()
    node = ctx.node
    while node is not None:
        if isinstance(node, XmlElement):
            lang = node.get(QName(XML_NS, "lang"))
            if lang is not None:
                lang = lang.lower()
                return lang == wanted or lang.startswith(wanted + "-")
        node = ctx.document.parent_of(node)
    return False


# -- number functions ---------------------------------------------------------


def fn_number(ctx: XPathContext, value=None) -> float:
    if value is None:
        return to_number(string_value(ctx.node))
    return to_number(value)


def fn_sum(ctx: XPathContext, nodes) -> float:
    return float(
        sum(to_number(string_value(n)) for n in _require_nodeset(nodes, "sum"))
    )


def fn_floor(ctx: XPathContext, value) -> float:
    return math.floor(to_number(value))


def fn_ceiling(ctx: XPathContext, value) -> float:
    return math.ceil(to_number(value))


def fn_round(ctx: XPathContext, value) -> float:
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return number
    # XPath rounds .5 toward positive infinity.
    return math.floor(number + 0.5)


CORE_FUNCTIONS = {
    "last": fn_last,
    "position": fn_position,
    "count": fn_count,
    "local-name": fn_local_name,
    "namespace-uri": fn_namespace_uri,
    "name": fn_name,
    "string": fn_string,
    "concat": fn_concat,
    "starts-with": fn_starts_with,
    "contains": fn_contains,
    "substring-before": fn_substring_before,
    "substring-after": fn_substring_after,
    "substring": fn_substring,
    "string-length": fn_string_length,
    "normalize-space": fn_normalize_space,
    "translate": fn_translate,
    "boolean": fn_boolean,
    "not": fn_not,
    "true": fn_true,
    "false": fn_false,
    "lang": fn_lang,
    "number": fn_number,
    "sum": fn_sum,
    "floor": fn_floor,
    "ceiling": fn_ceiling,
    "round": fn_round,
}
