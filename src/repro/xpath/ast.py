"""XPath abstract syntax tree node types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Expr = Union[
    "OrExpr",
    "AndExpr",
    "ComparisonExpr",
    "ArithmeticExpr",
    "NegateExpr",
    "UnionExpr",
    "PathExpr",
    "FilterExpr",
    "FunctionCall",
    "VariableRef",
    "NumberLiteral",
    "StringLiteral",
    "LocationPath",
]


@dataclass(frozen=True)
class NumberLiteral:
    value: float


@dataclass(frozen=True)
class StringLiteral:
    value: str


@dataclass(frozen=True)
class VariableRef:
    name: str  # possibly prefixed


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class NodeTest:
    """A step's node test.

    ``kind`` is one of ``"name"`` (match *prefix*/*local*), ``"wildcard"``
    (``*`` or ``prefix:*``), ``"node"``, ``"text"``, ``"comment"`` or
    ``"processing-instruction"``.
    """

    kind: str
    prefix: str = ""
    local: str = ""


@dataclass(frozen=True)
class Step:
    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class LocationPath:
    absolute: bool
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class FilterExpr:
    """A primary expression filtered by predicates, optionally continued
    with a relative path: ``$var[1]/child``."""

    primary: Expr
    predicates: tuple[Expr, ...]


@dataclass(frozen=True)
class PathExpr:
    """``filter / relative-path`` — the filter's node-set is the start."""

    start: Expr
    descendant_glue: bool  # True for ``//``
    path: LocationPath


@dataclass(frozen=True)
class UnionExpr:
    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class NegateExpr:
    operand: Expr


@dataclass(frozen=True)
class ArithmeticExpr:
    op: str  # + - * div mod
    left: Expr
    right: Expr


@dataclass(frozen=True)
class ComparisonExpr:
    op: str  # = != < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class AndExpr:
    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class OrExpr:
    parts: tuple[Expr, ...]
