"""XPath error taxonomy."""


class XPathError(Exception):
    """Base class for all XPath failures."""


class XPathSyntaxError(XPathError):
    """The expression failed to lex or parse."""

    def __init__(self, message: str, expression: str, position: int) -> None:
        super().__init__(f"{message} in {expression!r} at position {position}")
        self.expression = expression
        self.position = position


class XPathEvaluationError(XPathError):
    """The expression parsed but could not be evaluated."""
