"""Request composition: activity pipelines over DAIS interfaces.

Paper §2.2: the DAIS-WG's requirements analysis found "significant
demand for services that not only accessed data resources, but which
supported flexible data movement and transformation capabilities" — e.g.
"retrieve data from a database, transform the data using XSLT, and
deliver the result to a third party".  That language became the
OGSA-DAI *activity model*; the current specifications instead provide
"extensibility points for more sophisticated data transformation or
movement functionalities".

This package is that extensibility point exercised: a small, typed
activity pipeline whose activities are clients of the DAIS port types —
query activities pull from WS-DAIR/WS-DAIX services, transformation
activities reshape the data (XQuery stands in for XSLT; the substitution
is recorded in DESIGN.md), and delivery activities push results into an
XML collection or a file collection on a *different* service, enacting
third-party delivery at the workflow level.
"""

from repro.compose.pipeline import (
    Activity,
    ActivityError,
    Pipeline,
    PipelineResult,
)
from repro.compose.activities import (
    CsvRenderActivity,
    DeliverToCollectionActivity,
    DeliverToFileActivity,
    ProjectColumnsActivity,
    RowsetToXmlActivity,
    SQLQueryActivity,
    XPathQueryActivity,
    XQueryTransformActivity,
)

__all__ = [
    "Activity",
    "ActivityError",
    "Pipeline",
    "PipelineResult",
    "SQLQueryActivity",
    "XPathQueryActivity",
    "RowsetToXmlActivity",
    "XQueryTransformActivity",
    "ProjectColumnsActivity",
    "CsvRenderActivity",
    "DeliverToCollectionActivity",
    "DeliverToFileActivity",
]
