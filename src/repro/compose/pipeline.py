"""The pipeline engine: typed, sequential activity composition."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.obs import MetricsRegistry, current_span

#: Engine-wide metrics: pipelines are built ad hoc (no long-lived
#: service object to hang a registry off), so failures land here.
METRICS = MetricsRegistry()

#: Activity failures by ``where=<activity label>`` — every exception the
#: engine converts into an :class:`ActivityError` is counted and
#: recorded on the active span before it propagates.
ERRORS = METRICS.counter(
    "compose.errors", "activity failures per activity label"
)


class ActivityError(Exception):
    """An activity failed; carries which one and why."""

    def __init__(self, activity: "Activity", cause: Exception) -> None:
        super().__init__(f"{type(activity).__name__} failed: {cause}")
        self.activity = activity
        self.cause = cause


class Activity(ABC):
    """One pipeline stage: consumes its predecessor's output."""

    #: Human-readable type tags for pre-execution compatibility checks.
    CONSUMES: str = "any"
    PRODUCES: str = "any"

    @abstractmethod
    def run(self, value: Any) -> Any:
        """Transform *value* into this activity's output."""

    @property
    def label(self) -> str:
        return type(self).__name__


@dataclass
class ActivityTrace:
    """What one activity did during a run."""

    label: str
    seconds: float
    output_summary: str


@dataclass
class PipelineResult:
    """Final output plus the per-activity execution trace."""

    output: Any
    trace: list[ActivityTrace] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(step.seconds for step in self.trace)


class Pipeline:
    """A linear composition of activities.

    Type tags are checked at construction: an activity consuming
    ``"rowset"`` cannot follow one producing ``"xml"`` (``"any"``
    matches everything) — catching mis-wired requests before any data
    service is contacted.
    """

    def __init__(self, activities: list[Activity]) -> None:
        if not activities:
            raise ValueError("a pipeline needs at least one activity")
        for first, second in zip(activities, activities[1:]):
            if (
                first.PRODUCES != "any"
                and second.CONSUMES != "any"
                and first.PRODUCES != second.CONSUMES
            ):
                raise ValueError(
                    f"{second.label} consumes {second.CONSUMES!r} but "
                    f"{first.label} produces {first.PRODUCES!r}"
                )
        self._activities = list(activities)

    @property
    def activities(self) -> list[Activity]:
        return list(self._activities)

    def execute(self, initial: Any = None) -> PipelineResult:
        """Run all activities in order; raises :class:`ActivityError` on
        the first failure (no partial-result recovery — callers that
        want retry wrap the pipeline)."""
        value = initial
        trace: list[ActivityTrace] = []
        for activity in self._activities:
            start = time.perf_counter()
            try:
                value = activity.run(value)
            except ActivityError as err:
                _record_failure(activity, err)
                raise
            except Exception as exc:
                _record_failure(activity, exc)
                raise ActivityError(activity, exc) from exc
            trace.append(
                ActivityTrace(
                    label=activity.label,
                    seconds=time.perf_counter() - start,
                    output_summary=_summarize(value),
                )
            )
        return PipelineResult(output=value, trace=trace)


def _record_failure(activity: Activity, exc: Exception) -> None:
    """Make an activity failure observable before it propagates."""
    span = current_span()
    if span.recording:
        span.record_exception(exc)
    ERRORS.inc(where=activity.label)


def _summarize(value: Any) -> str:
    if value is None:
        return "none"
    if isinstance(value, (list, tuple)):
        return f"{type(value).__name__}[{len(value)}]"
    if isinstance(value, bytes):
        return f"bytes[{len(value)}]"
    return type(value).__name__
