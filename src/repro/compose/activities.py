"""The activity library: DAIS access, transformation, delivery."""

from __future__ import annotations

from typing import Optional

from repro.client.files import FilesClient
from repro.client.sql import SQLClient
from repro.client.xml import XMLClient
from repro.compose.pipeline import Activity
from repro.dair.datasets import Rowset
from repro.relational.types import NULL
from repro.xmldb import XQueryEngine
from repro.xmlutil import E, XmlElement, serialize


# ---------------------------------------------------------------------------
# access activities (pipeline sources)
# ---------------------------------------------------------------------------


class SQLQueryActivity(Activity):
    """Pull a rowset from a WS-DAIR service (ignores its input)."""

    CONSUMES = "any"
    PRODUCES = "rowset"

    def __init__(
        self,
        client: SQLClient,
        address: str,
        abstract_name: str,
        sql: str,
        parameters: Optional[list] = None,
    ) -> None:
        self._client = client
        self._address = address
        self._abstract_name = abstract_name
        self._sql = sql
        self._parameters = list(parameters or [])

    def run(self, value) -> Rowset:
        return self._client.sql_query_rowset(
            self._address, self._abstract_name, self._sql, self._parameters
        )


class XPathQueryActivity(Activity):
    """Pull items from a WS-DAIX collection (ignores its input)."""

    CONSUMES = "any"
    PRODUCES = "xml-items"

    def __init__(
        self,
        client: XMLClient,
        address: str,
        abstract_name: str,
        expression: str,
    ) -> None:
        self._client = client
        self._address = address
        self._abstract_name = abstract_name
        self._expression = expression

    def run(self, value) -> list[XmlElement]:
        return self._client.xpath_execute(
            self._address, self._abstract_name, self._expression
        )


# ---------------------------------------------------------------------------
# transformation activities
# ---------------------------------------------------------------------------


class ProjectColumnsActivity(Activity):
    """Keep a subset of rowset columns, in the requested order."""

    CONSUMES = "rowset"
    PRODUCES = "rowset"

    def __init__(self, columns: list[str]) -> None:
        self._columns = list(columns)

    def run(self, rowset: Rowset) -> Rowset:
        positions = []
        for wanted in self._columns:
            matches = [
                index
                for index, name in enumerate(rowset.columns)
                if name.lower() == wanted.lower()
            ]
            if not matches:
                raise KeyError(f"no column {wanted!r} in rowset")
            positions.append(matches[0])
        return Rowset(
            columns=[rowset.columns[p] for p in positions],
            types=[
                rowset.types[p] if p < len(rowset.types) else ""
                for p in positions
            ],
            rows=[tuple(row[p] for p in positions) for row in rowset.rows],
        )


class RowsetToXmlActivity(Activity):
    """Render a rowset as a row-per-element XML document."""

    CONSUMES = "rowset"
    PRODUCES = "xml"

    def __init__(self, root_tag: str = "rows", row_tag: str = "row") -> None:
        self._root_tag = root_tag
        self._row_tag = row_tag

    def run(self, rowset: Rowset) -> XmlElement:
        root = E(self._root_tag)
        for row in rowset.rows:
            element = E(self._row_tag)
            for name, value in zip(rowset.columns, row):
                child = E(_xml_name(name))
                if value is NULL:
                    child.set("null", "true")
                else:
                    child.text = value
                element.append(child)
            root.append(element)
        return root


class XQueryTransformActivity(Activity):
    """Transform an XML document with an XQuery (the XSLT stand-in).

    The paper's §2.2 example transforms query results "using XSLT";
    dais-py ships an XQuery engine instead, which covers the same
    reshape-select-reorder use cases (DESIGN.md records the
    substitution).  The result is wrapped under *result_tag*.
    """

    CONSUMES = "xml"
    PRODUCES = "xml"

    def __init__(
        self,
        query: str,
        result_tag: str = "result",
        namespaces: Optional[dict] = None,
    ) -> None:
        self._engine = XQueryEngine(namespaces=namespaces)
        self._query = query
        self._result_tag = result_tag

    def run(self, document: XmlElement) -> XmlElement:
        items = self._engine.execute(self._query, document)
        root = E(self._result_tag)
        for item in items:
            if isinstance(item, XmlElement):
                root.append(item.copy())
            else:
                from repro.xpath.context import string_value
                from repro.xpath.functions import to_string
                from repro.xmlutil.tree import Text

                if isinstance(item, (bool, float, str)):
                    root.append(Text(to_string(item)))
                else:
                    root.append(Text(string_value(item)))
        return root


class CsvRenderActivity(Activity):
    """Render a rowset as CSV bytes (for file delivery)."""

    CONSUMES = "rowset"
    PRODUCES = "bytes"

    def run(self, rowset: Rowset) -> bytes:
        from repro.dair.datasets import _csv_escape, _NULL_TOKEN

        lines = [",".join(_csv_escape(c) for c in rowset.columns)]
        for row in rowset.rows:
            lines.append(
                ",".join(
                    _NULL_TOKEN if v is NULL else _csv_escape(v) for v in row
                )
            )
        return "\n".join(lines).encode("utf-8")


# ---------------------------------------------------------------------------
# delivery activities (third-party delivery, §2.2)
# ---------------------------------------------------------------------------


class DeliverToCollectionActivity(Activity):
    """Add the incoming XML document to a WS-DAIX collection."""

    CONSUMES = "xml"
    PRODUCES = "delivery"

    def __init__(
        self,
        client: XMLClient,
        address: str,
        abstract_name: str,
        document_name: str,
        replace: bool = True,
    ) -> None:
        self._client = client
        self._address = address
        self._abstract_name = abstract_name
        self._document_name = document_name
        self._replace = replace

    def run(self, document: XmlElement) -> dict:
        results = self._client.add_documents(
            self._address,
            self._abstract_name,
            [(self._document_name, document)],
            replace=self._replace,
        )
        name, status = results[0]
        if status != "Added":
            raise RuntimeError(f"delivery of {name!r} failed: {status}")
        return {
            "delivered_to": self._address,
            "document": name,
            "bytes": len(serialize(document)),
        }


class DeliverToFileActivity(Activity):
    """Write the incoming bytes to a WS-DAIF file collection."""

    CONSUMES = "bytes"
    PRODUCES = "delivery"

    def __init__(
        self,
        client: FilesClient,
        address: str,
        abstract_name: str,
        path: str,
    ) -> None:
        self._client = client
        self._address = address
        self._abstract_name = abstract_name
        self._path = path

    def run(self, content: bytes) -> dict:
        response = self._client.put_file(
            self._address, self._abstract_name, self._path, content
        )
        return {
            "delivered_to": self._address,
            "path": response.path,
            "bytes": response.size,
        }


def _xml_name(column: str) -> str:
    """Make a column name safe as an XML element name."""
    cleaned = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in column)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"c_{cleaned}"
    return cleaned
