"""The property-document cache.

Figure 4 of the paper prices a property-document fetch at 10–92 KB, and
until this tier every fetch re-rendered the document from the live
catalog — for a relational resource that means walking every table,
column, constraint and index to rebuild the ``CIMDescription`` element.
This cache keeps the *rendered bytes* of each resource's own document,
plus a master tree parsed back from those bytes, so a repeat read costs
one dict lookup plus a deep copy — several times cheaper than either
re-rendering or re-parsing (see ``make bench-fig4``).

Correctness contract
--------------------

The design copies the :class:`repro.relational.PlanCache` pattern:

* Every entry is stamped with the resource's *property version* (for a
  relational resource, :attr:`Catalog.version`, which bumps on every
  schema mutation including the undo arms of failed DDL).  A lookup
  that finds a stale stamp drops the entry — counted as an invalidation
  **and** a miss — so a document cached before DDL can never be served
  after it, without any eager sweeping on the DDL path.
* Entries are **bytes**, rendered at fill time; the master tree kept
  alongside is parsed *from those bytes*, never taken from the live
  render, so cached documents cannot alias mutable catalog or rowset
  state: a consumer that mutates the catalog in place (without a
  version bump) still cannot corrupt what the cache serves.  Served
  trees are deep copies of the master — a tree handed to one consumer
  is never shared with the next, and vandalising a served tree cannot
  poison the cache.
* Lifecycle events that change a document outside the version stamp —
  a WSRF ``SetTerminationTime``, destroy, or soft-state sweep — call
  :meth:`invalidate` explicitly.

Thread-safety: one lock guards the table; payload bytes are immutable
and the master tree is only ever deep-copied, never handed out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.xmlutil import XmlElement, parse_bytes

__all__ = ["PropertyDocumentCache"]

#: Default number of resource documents retained (LRU beyond this).
DEFAULT_CAPACITY = 256


class PropertyDocumentCache:
    """A bounded, thread-safe LRU of rendered property-document bytes.

    Keys are resource abstract names; each entry is stamped with the
    resource's property version at render time and checked at lookup.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("property-document cache capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[int, bytes, XmlElement]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._hits_counter = None
        self._misses_counter = None
        self._invalidations_counter = None

    def bind_counters(self, hits, misses, invalidations) -> None:
        """Mirror cache activity into ``cache.propdoc.*`` counters.

        Activity counted before the first bind is flushed in, so the
        metrics exposition matches :meth:`stats`.  Rebinding replaces
        the targets without re-flushing.
        """
        with self._lock:
            first_bind = self._hits_counter is None
            self._hits_counter = hits
            self._misses_counter = misses
            self._invalidations_counter = invalidations
            if first_bind:
                if self.hits:
                    hits.inc(self.hits)
                if self.misses:
                    misses.inc(self.misses)
                if self.invalidations:
                    invalidations.inc(self.invalidations)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _get(self, key: str, version: int):
        """Shared hit/stale/miss accounting; call with the lock held.

        A stale-stamped entry is dropped here (invalidation + miss)
        rather than swept eagerly when the version bumps.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self._misses_counter is not None:
                self._misses_counter.inc()
            return None
        if entry[0] != version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            if self._invalidations_counter is not None:
                self._invalidations_counter.inc()
            if self._misses_counter is not None:
                self._misses_counter.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._hits_counter is not None:
            self._hits_counter.inc()
        return entry

    def lookup(self, key: str, version: int) -> Optional[bytes]:
        """Return the cached bytes for *key* at *version*, or ``None``."""
        with self._lock:
            entry = self._get(key, version)
            return None if entry is None else entry[1]

    def lookup_document(self, key: str, version: int) -> Optional[XmlElement]:
        """A served tree for *key* at *version*: a deep copy of the
        master, or ``None`` on miss/stale."""
        with self._lock:
            entry = self._get(key, version)
        # Copy outside the lock: the master is never mutated (only ever
        # copied), so concurrent serves are safe.
        return None if entry is None else entry[2].copy()

    def store(self, key: str, version: int, payload: bytes) -> XmlElement:
        """Cache *payload* as the rendering of *key* at *version*.

        The master tree is parsed from *payload* — not taken from the
        caller's live render — so it cannot alias catalog state.
        Returns a served (deep-copied) tree for the filling request.
        """
        master = parse_bytes(payload)
        with self._lock:
            self._entries[key] = (version, payload, master)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return master.copy()

    def invalidate(self, key: str) -> None:
        """Drop *key* (lifetime transition, destroy, sweep).

        Counted only when an entry was actually present.
        """
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self.invalidations += 1
                if self._invalidations_counter is not None:
                    self._invalidations_counter.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot of the counters (plus current size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
            }
