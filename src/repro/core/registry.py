"""Service registry: the directory transports dispatch through.

Maps service addresses to :class:`~repro.core.service.DataService`
instances and resolves data resource addresses (EPRs) back to the
service + abstract name pair they designate.

The registry is shared mutable state under the threaded HTTP binding —
every handler thread resolves through it while factories register
services and sweeps retire resources — so all map access goes through
one lock.  ``sweep_all`` iterates a snapshot, never the live dict, and
:meth:`start_sweeper` runs it on a background thread so soft state
expires without anyone calling ``sweep_all`` by hand.
"""

from __future__ import annotations

import threading

from repro.core.service import RESOURCE_REFERENCE_PARAMETER, DataService
from repro.obs.journal import record_event
from repro.soap.addressing import EndpointReference


class ServiceRegistry:
    """All services reachable in one deployment (one 'grid fabric')."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._services: dict[str, DataService] = {}
        self._sweeper: threading.Thread | None = None
        self._sweeper_stop: threading.Event | None = None

    def register(self, service: DataService) -> DataService:
        with self._lock:
            if service.address in self._services:
                raise ValueError(
                    f"address {service.address!r} already registered"
                )
            self._services[service.address] = service
        return service

    def unregister(self, address: str) -> None:
        with self._lock:
            self._services.pop(address, None)

    def addresses(self) -> list[str]:
        with self._lock:
            return sorted(self._services)

    def services(self) -> list[DataService]:
        """A point-in-time snapshot of every registered service, in
        address order — safe to iterate while registrations churn."""
        with self._lock:
            return [self._services[address] for address in sorted(self._services)]

    def service_at(self, address: str) -> DataService:
        with self._lock:
            try:
                return self._services[address]
            except KeyError:
                raise LookupError(f"no service at {address!r}") from None

    def resolve_epr(self, epr: EndpointReference) -> tuple[DataService, str | None]:
        """Resolve an EPR to (service, abstract name from ref params)."""
        service = self.service_at(epr.address)
        name = epr.reference_parameter_text(RESOURCE_REFERENCE_PARAMETER)
        if name:
            record_event("resolved", name, service=service.name)
        return service, name

    def sweep_all(self) -> dict[str, list[str]]:
        """Run soft-state sweeps on every WSRF service; returns what each
        destroyed (address → abstract names)."""
        destroyed: dict[str, list[str]] = {}
        for service in self.services():
            expired = service.sweep_expired()
            if expired:
                destroyed[service.address] = expired
        if destroyed:
            record_event(
                "sweep",
                "*",
                services=len(destroyed),
                destroyed=sum(len(names) for names in destroyed.values()),
            )
        return destroyed

    # -- background sweeper ----------------------------------------------------

    def start_sweeper(self, interval: float = 1.0) -> threading.Thread:
        """Run :meth:`sweep_all` every *interval* seconds on a daemon
        thread, so soft state expires without manual sweeps.

        Returns the sweeper thread; call :meth:`stop_sweeper` (or let the
        process exit — the thread is a daemon) to stop it.  A service
        raising mid-sweep is journalled and does not kill the sweeper.
        """
        if interval <= 0:
            raise ValueError("sweep interval must be positive")
        with self._lock:
            if self._sweeper is not None and self._sweeper.is_alive():
                raise RuntimeError("sweeper already running")
            stop = threading.Event()
            thread = threading.Thread(
                target=self._sweep_loop,
                args=(interval, stop),
                name="dais-soft-state-sweeper",
                daemon=True,
            )
            self._sweeper = thread
            self._sweeper_stop = stop
        thread.start()
        return thread

    def stop_sweeper(self, timeout: float = 5.0) -> None:
        """Stop the background sweeper, if one is running."""
        with self._lock:
            thread = self._sweeper
            stop = self._sweeper_stop
            self._sweeper = None
            self._sweeper_stop = None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout)

    @property
    def sweeping(self) -> bool:
        with self._lock:
            return self._sweeper is not None and self._sweeper.is_alive()

    def _sweep_loop(self, interval: float, stop: threading.Event) -> None:
        while not stop.wait(interval):
            try:
                self.sweep_all()
            except Exception as exc:  # pragma: no cover - defensive
                record_event("sweep-error", "*", error=str(exc))
