"""Service registry: the directory transports dispatch through.

Maps service addresses to :class:`~repro.core.service.DataService`
instances and resolves data resource addresses (EPRs) back to the
service + abstract name pair they designate.
"""

from __future__ import annotations

from repro.core.service import RESOURCE_REFERENCE_PARAMETER, DataService
from repro.obs.journal import record_event
from repro.soap.addressing import EndpointReference


class ServiceRegistry:
    """All services reachable in one deployment (one 'grid fabric')."""

    def __init__(self) -> None:
        self._services: dict[str, DataService] = {}

    def register(self, service: DataService) -> DataService:
        if service.address in self._services:
            raise ValueError(f"address {service.address!r} already registered")
        self._services[service.address] = service
        return service

    def unregister(self, address: str) -> None:
        self._services.pop(address, None)

    def addresses(self) -> list[str]:
        return sorted(self._services)

    def service_at(self, address: str) -> DataService:
        try:
            return self._services[address]
        except KeyError:
            raise LookupError(f"no service at {address!r}") from None

    def resolve_epr(self, epr: EndpointReference) -> tuple[DataService, str | None]:
        """Resolve an EPR to (service, abstract name from ref params)."""
        service = self.service_at(epr.address)
        name = epr.reference_parameter_text(RESOURCE_REFERENCE_PARAMETER)
        if name:
            record_event("resolved", name, service=service.name)
        return service, name

    def sweep_all(self) -> dict[str, list[str]]:
        """Run soft-state sweeps on every WSRF service; returns what each
        destroyed (address → abstract names)."""
        destroyed: dict[str, list[str]] = {}
        for address, service in self._services.items():
            expired = service.sweep_expired()
            if expired:
                destroyed[address] = expired
        if destroyed:
            record_event(
                "sweep",
                "*",
                services=len(destroyed),
                destroyed=sum(len(names) for names in destroyed.values()),
            )
        return destroyed
