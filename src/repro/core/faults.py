"""The DAIS fault family.

WS-DAI defines a set of faults shared by all realisations; each is a SOAP
fault whose detail carries a typed element in the WS-DAI namespace.  A
resolver registered with the envelope layer restores the typed Python
class on the consumer side, so ``except InvalidLanguageFault:`` works
across the wire.
"""

from __future__ import annotations

from repro.core.namespaces import WSDAI_NS
from repro.soap.envelope import register_fault_resolver
from repro.soap.fault import FaultCode, SoapFault
from repro.xmlutil import E, QName


class DaisFault(SoapFault):
    """Base DAIS fault: typed detail element + human-readable message."""

    DETAIL_LOCAL = "DataAccessFault"
    CODE = FaultCode.CLIENT

    def __init__(self, message: str) -> None:
        detail = E(
            QName(WSDAI_NS, self.DETAIL_LOCAL),
            E(QName(WSDAI_NS, "Message"), message),
        )
        super().__init__(self.CODE, message, [detail])


class InvalidResourceNameFault(DaisFault):
    """The abstract name does not identify a resource known to the service."""

    DETAIL_LOCAL = "InvalidResourceNameFault"


class DataResourceUnavailableFault(DaisFault):
    """The resource exists but cannot currently be accessed."""

    DETAIL_LOCAL = "DataResourceUnavailableFault"
    CODE = FaultCode.SERVER


class InvalidLanguageFault(DaisFault):
    """The query language is not in the resource's LanguageMap."""

    DETAIL_LOCAL = "InvalidLanguageFault"


class InvalidExpressionFault(DaisFault):
    """The query expression is malformed or failed to evaluate."""

    DETAIL_LOCAL = "InvalidExpressionFault"


class InvalidDatasetFormatFault(DaisFault):
    """The requested DataFormatURI is not in the resource's DatasetMap."""

    DETAIL_LOCAL = "InvalidDatasetFormatFault"


class InvalidConfigurationDocumentFault(DaisFault):
    """A factory configuration document contains bad property values."""

    DETAIL_LOCAL = "InvalidConfigurationDocumentFault"


class InvalidPortTypeQNameFault(DaisFault):
    """The requested access port type is not supported for derived data."""

    DETAIL_LOCAL = "InvalidPortTypeQNameFault"


class NotAuthorizedFault(DaisFault):
    """The consumer may not perform this operation (Readable/Writeable)."""

    DETAIL_LOCAL = "NotAuthorizedFault"


class ServiceBusyFault(DaisFault):
    """The service rejected the request due to concurrent access limits."""

    DETAIL_LOCAL = "ServiceBusyFault"
    CODE = FaultCode.SERVER


class TransportFault(DaisFault):
    """The request never completed at the transport level.

    Raised client-side for connection refusals, socket timeouts, dropped
    connections and non-SOAP HTTP error responses — cases where no usable
    response envelope came back, so the consumer cannot know whether the
    service acted on the request.  Carries the HTTP status when one was
    observed (``status=None`` for pure socket-level failures).

    Retry policies treat this as retryable; see :mod:`repro.resilience`.
    """

    DETAIL_LOCAL = "TransportFault"
    CODE = FaultCode.SERVER

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class UnknownJobFault(DaisFault):
    """The job id does not identify a job known to the service.

    The asynchronous factory pattern hands back a job id; status and
    cancel requests for an id the service never issued — or one whose
    terminal record has been swept by soft-state lifetime — fault here.
    """

    DETAIL_LOCAL = "UnknownJobFault"


class ServiceNotFoundFault(DaisFault, LookupError):
    """No data service is deployed at the addressed endpoint.

    Both transports raise this for an unknown address/path, so consumer
    code handles a mis-wired EPR identically over loopback and HTTP.
    Also a :class:`LookupError` (like :class:`KeyError`), since callers
    of the registry historically caught that for a failed resolve.
    """

    DETAIL_LOCAL = "ServiceNotFoundFault"


_FAULTS_BY_DETAIL = {
    fault.DETAIL_LOCAL: fault
    for fault in (
        DaisFault,
        InvalidResourceNameFault,
        DataResourceUnavailableFault,
        InvalidLanguageFault,
        InvalidExpressionFault,
        InvalidDatasetFormatFault,
        InvalidConfigurationDocumentFault,
        InvalidPortTypeQNameFault,
        NotAuthorizedFault,
        ServiceBusyFault,
        ServiceNotFoundFault,
        TransportFault,
        UnknownJobFault,
    )
}


def fault_class_for(detail_local: str) -> type[DaisFault] | None:
    """The typed DAIS fault class whose detail element is *detail_local*.

    Used by the job layer to rehydrate the original fault of an ERROR
    job from its journalled type name; None for unknown names (the
    caller falls back to a generic fault).
    """
    return _FAULTS_BY_DETAIL.get(detail_local)


def _resolve_dais_fault(fault: SoapFault) -> SoapFault | None:
    """Map a generic fault back to its typed DAIS class via the detail."""
    for detail in fault.detail:
        if detail.tag.namespace != WSDAI_NS:
            continue
        cls = _FAULTS_BY_DETAIL.get(detail.tag.local)
        if cls is not None:
            message = detail.findtext(QName(WSDAI_NS, "Message"), fault.message)
            return cls(message or fault.message)
    return None


register_fault_resolver(_resolve_dais_fault)
