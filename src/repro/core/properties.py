"""The WS-DAI property document (Figure 4).

Properties divide into *static* properties fixed by the implementation
and *configurable* properties a consumer may set when a factory creates a
derived resource.  The document renders to XML for
``GetDataResourcePropertyDocument`` and for fine-grained WSRF access;
realisations extend :class:`CorePropertyDocument` with their own
elements (e.g. WS-DAIR's ``CIMDescription``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.core.faults import InvalidConfigurationDocumentFault
from repro.core.namespaces import WSDAI_NS
from repro.xmlutil import E, QName, XmlElement


class DataResourceManagement(enum.Enum):
    """Whether the data outlives the service relationship (paper §3)."""

    EXTERNALLY_MANAGED = "ExternallyManaged"
    SERVICE_MANAGED = "ServiceManaged"


class TransactionInitiation(enum.Enum):
    """When the service opens a transaction for an incoming message."""

    NOT_SUPPORTED = "NotSupported"
    AUTOMATIC = "Automatic"       # one atomic transaction per message
    CONSUMER = "Consumer"         # consumer controls the transaction context


class TransactionIsolation(enum.Enum):
    """Isolation of service-initiated transactions (mirrors SQL levels)."""

    NOT_SUPPORTED = "NotSupported"
    READ_UNCOMMITTED = "ReadUncommitted"
    READ_COMMITTED = "ReadCommitted"
    REPEATABLE_READ = "RepeatableRead"
    SERIALIZABLE = "Serializable"


class Sensitivity(enum.Enum):
    """Whether derived data tracks changes in its parent resource."""

    INSENSITIVE = "Insensitive"   # snapshot
    SENSITIVE = "Sensitive"       # reflects parent updates


@dataclass(frozen=True)
class DatasetMapEntry:
    """One supported return format: request message QName → format URI."""

    message_qname: QName
    data_format_uri: str


@dataclass(frozen=True)
class ConfigurationMapEntry:
    """Factory support: request message QName → port type it can wire up."""

    message_qname: QName
    port_type_qname: QName


@dataclass
class ConfigurableProperties:
    """The consumer-settable properties (Figure 4, right column)."""

    data_resource_description: str = ""
    readable: bool = True
    writeable: bool = True
    transaction_initiation: TransactionInitiation = TransactionInitiation.NOT_SUPPORTED
    transaction_isolation: TransactionIsolation = TransactionIsolation.NOT_SUPPORTED
    sensitivity: Sensitivity = Sensitivity.INSENSITIVE

    def copy(self) -> "ConfigurableProperties":
        return replace(self)

    # -- configuration documents -----------------------------------------------

    def apply_configuration_document(
        self, document: XmlElement
    ) -> "ConfigurableProperties":
        """Return a copy overridden by a factory ConfigurationDocument.

        Unknown elements raise
        :class:`InvalidConfigurationDocumentFault` — silently ignoring a
        consumer's requested behaviour would be worse than failing.
        """
        updated = self.copy()
        for child in document.element_children():
            if child.tag.namespace != WSDAI_NS:
                raise InvalidConfigurationDocumentFault(
                    f"foreign element {child.tag.clark()}"
                )
            value = child.text.strip()
            local = child.tag.local
            try:
                if local == "DataResourceDescription":
                    updated.data_resource_description = child.text
                elif local == "Readable":
                    updated.readable = _parse_bool(value)
                elif local == "Writeable":
                    updated.writeable = _parse_bool(value)
                elif local == "TransactionInitiation":
                    updated.transaction_initiation = TransactionInitiation(value)
                elif local == "TransactionIsolation":
                    updated.transaction_isolation = TransactionIsolation(value)
                elif local == "Sensitivity":
                    updated.sensitivity = Sensitivity(value)
                else:
                    raise InvalidConfigurationDocumentFault(
                        f"unknown configurable property {local!r}"
                    )
            except ValueError as exc:
                raise InvalidConfigurationDocumentFault(
                    f"bad value for {local}: {exc}"
                ) from exc
        return updated

    def to_elements(self) -> list[XmlElement]:
        return [
            E(_q("DataResourceDescription"), self.data_resource_description),
            E(_q("Readable"), _bool_text(self.readable)),
            E(_q("Writeable"), _bool_text(self.writeable)),
            E(_q("TransactionInitiation"), self.transaction_initiation.value),
            E(_q("TransactionIsolation"), self.transaction_isolation.value),
            E(_q("Sensitivity"), self.sensitivity.value),
        ]


@dataclass
class CorePropertyDocument:
    """The full WS-DAI property document for one service↔resource pair."""

    abstract_name: str
    management: DataResourceManagement
    parent: str = ""  # parent's abstract name for derived resources
    concurrent_access: bool = True
    dataset_maps: list[DatasetMapEntry] = field(default_factory=list)
    configuration_maps: list[ConfigurationMapEntry] = field(default_factory=list)
    languages: list[str] = field(default_factory=list)  # GenericQueryLanguage
    configurable: ConfigurableProperties = field(
        default_factory=ConfigurableProperties
    )

    #: Root element tag; realisations override (e.g. SQLPropertyDocument).
    ROOT_LOCAL = "PropertyDocument"
    ROOT_NS = WSDAI_NS

    def to_xml(self) -> XmlElement:
        root = E(
            QName(self.ROOT_NS, self.ROOT_LOCAL),
            E(_q("DataResourceAbstractName"), self.abstract_name),
            E(_q("ParentDataResource"), self.parent),
            E(_q("DataResourceManagement"), self.management.value),
            E(_q("ConcurrentAccess"), _bool_text(self.concurrent_access)),
        )
        for entry in self.dataset_maps:
            root.append(
                E(
                    _q("DatasetMap"),
                    E(_q("MessageQName"), entry.message_qname.clark()),
                    E(_q("DataFormatURI"), entry.data_format_uri),
                )
            )
        for entry in self.configuration_maps:
            root.append(
                E(
                    _q("ConfigurationMap"),
                    E(_q("MessageQName"), entry.message_qname.clark()),
                    E(_q("PortTypeQName"), entry.port_type_qname.clark()),
                )
            )
        for language in self.languages:
            root.append(E(_q("GenericQueryLanguage"), language))
        root.extend(self.configurable.to_elements())
        self.extend_xml(root)
        return root

    def extend_xml(self, root: XmlElement) -> None:
        """Hook for realisations to append their extension properties."""

    # -- conveniences -------------------------------------------------------

    def supports_format(self, data_format_uri: str) -> bool:
        return any(
            entry.data_format_uri == data_format_uri
            for entry in self.dataset_maps
        )

    def supports_language(self, language_uri: str) -> bool:
        return language_uri in self.languages

    def default_format(self) -> str:
        if not self.dataset_maps:
            raise InvalidConfigurationDocumentFault(
                "resource advertises no dataset formats"
            )
        return self.dataset_maps[0].data_format_uri


def _q(local: str) -> QName:
    return QName(WSDAI_NS, local)


def _bool_text(value: bool) -> str:
    return "true" if value else "false"


def _parse_bool(value: str) -> bool:
    lowered = value.strip().lower()
    if lowered in ("true", "1"):
        return True
    if lowered in ("false", "0"):
        return False
    raise ValueError(f"not a boolean: {value!r}")
