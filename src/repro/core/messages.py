"""WS-DAI message payloads (Figures 2 and 3, core column).

Every request carries the mandatory ``DataResourceAbstractName`` as its
first body child (paper §3: the abstract name is always in the body so
the framework is identical with and without WSRF).  Each message class
knows its body tag and its ``wsa:Action`` URI; realisations subclass the
request/response templates and extend them — exactly how WS-DAIR/WS-DAIX
extend the core message patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro import fastpath
from repro.core.names import AbstractName
from repro.core.namespaces import WSDAI_NS, action_uri
from repro.soap.addressing import EndpointReference
from repro.xmlutil import E, QName, XmlElement

_DRAN = QName(WSDAI_NS, "DataResourceAbstractName")

# Asynchronous-execution extension elements (repro.jobs).  Declared here
# by QName only — serialized solely when a consumer opts in, so the
# synchronous wire format is byte-identical to the pre-jobs one.
_EXECUTION_MODE = QName(
    "http://www.ggf.org/namespaces/2005/05/WS-DAI-Jobs", "ExecutionMode"
)
_JOB_ID = QName("http://www.ggf.org/namespaces/2005/05/WS-DAI-Jobs", "JobID")


def _q(local: str) -> QName:
    return QName(WSDAI_NS, local)


@dataclass
class DaisMessage:
    """Base for all DAIS payloads: tag + action + XML (de)serialization."""

    TAG: ClassVar[QName]

    @classmethod
    def action(cls) -> str:
        return action_uri(cls.TAG.local, cls.TAG.namespace)

    def to_xml(self) -> XmlElement:
        raise NotImplementedError

    @classmethod
    def from_xml(cls, element: XmlElement) -> "DaisMessage":
        raise NotImplementedError


@dataclass
class DaisRequest(DaisMessage):
    """A request targeting one data resource through a data service."""

    abstract_name: str

    def _root(self) -> XmlElement:
        return E(self.TAG, E(_DRAN, self.abstract_name))

    @staticmethod
    def _read_name(element: XmlElement) -> AbstractName:
        text = element.findtext(_DRAN)
        if text is None:
            from repro.core.faults import InvalidResourceNameFault

            raise InvalidResourceNameFault(
                f"{element.tag.clark()} is missing the mandatory "
                "DataResourceAbstractName body element"
            )
        return AbstractName(text)


# ---------------------------------------------------------------------------
# CoreDataAccess
# ---------------------------------------------------------------------------


@dataclass
class GenericQueryRequest(DaisRequest):
    """GenericQuery: language-tagged expression (Figure 6, core)."""

    TAG: ClassVar[QName] = _q("GenericQueryRequest")

    language_uri: str = ""
    expression: str = ""
    parameters: list[str] = field(default_factory=list)
    dataset_format_uri: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.dataset_format_uri:
            root.append(E(_q("DatasetFormatURI"), self.dataset_format_uri))
        expression = E(_q("GenericExpression"), E(_q("Expression"), self.expression))
        expression.set("language", self.language_uri)
        root.append(expression)
        for parameter in self.parameters:
            root.append(E(_q("Parameter"), parameter))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement) -> "GenericQueryRequest":
        abstract_name = cls._read_name(element)  # mandatory, checked first
        expression_el = element.find(_q("GenericExpression"))
        if expression_el is None:
            from repro.core.faults import InvalidExpressionFault

            raise InvalidExpressionFault("missing GenericExpression element")
        return cls(
            abstract_name=abstract_name,
            language_uri=expression_el.get("language", "") or "",
            expression=expression_el.findtext(_q("Expression"), "") or "",
            parameters=[p.text for p in element.findall(_q("Parameter"))],
            dataset_format_uri=element.findtext(_q("DatasetFormatURI")),
        )


@dataclass
class GenericQueryResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GenericQueryResponse")

    dataset_format_uri: str = ""
    data: list[XmlElement] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        root = E(self.TAG, E(_q("DatasetFormatURI"), self.dataset_format_uri))
        # Data items are shared, not copied: serializers never mutate, and
        # copying every row subtree per render dominates large responses.
        dataset = E(_q("DatasetData"))
        copy = not fastpath.enabled()
        for item in self.data:
            dataset.append(item.copy() if copy else item)
        root.append(dataset)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement) -> "GenericQueryResponse":
        dataset = element.find(_q("DatasetData"))
        return cls(
            dataset_format_uri=element.findtext(_q("DatasetFormatURI"), "") or "",
            data=[c.copy() for c in (dataset.element_children() if dataset else [])],
        )


@dataclass
class DestroyDataResourceRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("DestroyDataResourceRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement) -> "DestroyDataResourceRequest":
        return cls(abstract_name=cls._read_name(element))


@dataclass
class DestroyDataResourceResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("DestroyDataResourceResponse")

    destroyed: str = ""

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_DRAN, self.destroyed))

    @classmethod
    def from_xml(cls, element: XmlElement) -> "DestroyDataResourceResponse":
        return cls(destroyed=element.findtext(_DRAN, "") or "")


@dataclass
class GetDataResourcePropertyDocumentRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetDataResourcePropertyDocumentRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(abstract_name=cls._read_name(element))


@dataclass
class GetDataResourcePropertyDocumentResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetDataResourcePropertyDocumentResponse")

    document: Optional[XmlElement] = None

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        if self.document is not None:
            root.append(self.document.copy())
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        children = element.element_children()
        return cls(document=children[0].copy() if children else None)


# ---------------------------------------------------------------------------
# CoreResourceList (optional interface)
# ---------------------------------------------------------------------------


@dataclass
class GetResourceListRequest(DaisMessage):
    TAG: ClassVar[QName] = _q("GetResourceListRequest")

    def to_xml(self) -> XmlElement:
        return E(self.TAG)

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls()


@dataclass
class GetResourceListResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetResourceListResponse")

    names: list[str] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        return E(self.TAG, [E(_DRAN, name) for name in self.names])

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(names=[c.text for c in element.findall(_DRAN)])


@dataclass
class ResolveRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("ResolveRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(abstract_name=cls._read_name(element))


@dataclass
class ResolveResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("ResolveResponse")

    address: Optional[EndpointReference] = None

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        if self.address is not None:
            root.append(self.address.to_xml(_q("DataResourceAddress")))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        address_el = element.find(_q("DataResourceAddress"))
        return cls(
            address=EndpointReference.from_xml(address_el)
            if address_el is not None
            else None
        )


# ---------------------------------------------------------------------------
# Factory template (Figure 3, core column)
# ---------------------------------------------------------------------------


@dataclass
class FactoryRequest(DaisRequest):
    """The indirect-access template: expression + requested port type +
    configuration document (all per Figure 3)."""

    port_type_qname: Optional[QName] = None
    configuration_document: Optional[XmlElement] = None
    expression: str = ""
    language_uri: str = ""
    parameters: list[str] = field(default_factory=list)
    #: "" (synchronous, the default) or MODE_ASYNCHRONOUS: execute via
    #: the durable job queue and answer with a job id instead of the
    #: derived resource's EPR.
    execution_mode: str = ""

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.execution_mode:
            root.append(E(_EXECUTION_MODE, self.execution_mode))
        if self.port_type_qname is not None:
            root.append(E(_q("PortTypeQName"), self.port_type_qname.clark()))
        if self.configuration_document is not None:
            wrapper = E(_q("ConfigurationDocument"))
            wrapper.append(self.configuration_document.copy())
            root.append(wrapper)
        expression = E(_q("GenericExpression"), E(_q("Expression"), self.expression))
        if self.language_uri:
            expression.set("language", self.language_uri)
        root.append(expression)
        for parameter in self.parameters:
            root.append(E(_q("Parameter"), parameter))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        expression_el = element.find(_q("GenericExpression"))
        port_type_text = element.findtext(_q("PortTypeQName"))
        config_wrapper = element.find(_q("ConfigurationDocument"))
        config = None
        if config_wrapper is not None:
            children = config_wrapper.element_children()
            config = children[0].copy() if children else None
        return cls(
            abstract_name=cls._read_name(element),
            port_type_qname=QName.parse(port_type_text.strip())
            if port_type_text
            else None,
            configuration_document=config,
            expression=(
                expression_el.findtext(_q("Expression"), "") if expression_el else ""
            )
            or "",
            language_uri=(
                (expression_el.get("language", "") or "") if expression_el else ""
            ),
            parameters=[p.text for p in element.findall(_q("Parameter"))],
            execution_mode=element.findtext(_EXECUTION_MODE, "") or "",
        )


@dataclass
class FactoryResponse(DaisMessage):
    """The EPR of the derived data resource (Figure 3)."""

    address: Optional[EndpointReference] = None
    abstract_name: str = ""
    #: Set instead of address/abstract_name when the factory accepted
    #: the request asynchronously: poll GetJobStatus with this id.
    job_id: str = ""

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        if self.address is not None:
            root.append(self.address.to_xml(_q("DataResourceAddress")))
        root.append(E(_DRAN, self.abstract_name))
        if self.job_id:
            root.append(E(_JOB_ID, self.job_id))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        address_el = element.find(_q("DataResourceAddress"))
        return cls(
            address=EndpointReference.from_xml(address_el)
            if address_el is not None
            else None,
            abstract_name=element.findtext(_DRAN, "") or "",
            job_id=element.findtext(_JOB_ID, "") or "",
        )
