"""WSRF operation payloads in the DAIS framing.

Paper §5: even under WSRF, DAIS mandates the resource abstract name in
the message *body* ("... you still require the data resource abstract
name to be included in the message body even if it is only for a WSRF
implementation to ignore it").  These payloads therefore extend
:class:`~repro.core.messages.DaisRequest` and carry WSRF particulars as
additional children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro.core.messages import DaisMessage, DaisRequest
from repro.wsrf.namespaces import WSRF_RL_NS, WSRF_RP_NS
from repro.xmlutil import E, QName, XmlElement


@dataclass
class GetResourcePropertyRequest(DaisRequest):
    TAG: ClassVar[QName] = QName(WSRF_RP_NS, "GetResourceProperty")

    property_qname: Optional[QName] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.property_qname is not None:
            root.append(
                E(QName(WSRF_RP_NS, "ResourceProperty"), self.property_qname.clark())
            )
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        text = element.findtext(QName(WSRF_RP_NS, "ResourceProperty"))
        return cls(
            abstract_name=cls._read_name(element),
            property_qname=QName.parse(text.strip()) if text else None,
        )


@dataclass
class GetResourcePropertyResponse(DaisMessage):
    TAG: ClassVar[QName] = QName(WSRF_RP_NS, "GetResourcePropertyResponse")

    properties: list[XmlElement] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        return E(self.TAG, [p.copy() for p in self.properties])

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(properties=[c.copy() for c in element.element_children()])


@dataclass
class GetMultipleResourcePropertiesRequest(DaisRequest):
    TAG: ClassVar[QName] = QName(WSRF_RP_NS, "GetMultipleResourceProperties")

    property_qnames: list[QName] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        root = self._root()
        for name in self.property_qnames:
            root.append(E(QName(WSRF_RP_NS, "ResourceProperty"), name.clark()))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            property_qnames=[
                QName.parse(c.text.strip())
                for c in element.findall(QName(WSRF_RP_NS, "ResourceProperty"))
            ],
        )


@dataclass
class GetMultipleResourcePropertiesResponse(GetResourcePropertyResponse):
    TAG: ClassVar[QName] = QName(
        WSRF_RP_NS, "GetMultipleResourcePropertiesResponse"
    )


@dataclass
class QueryResourcePropertiesRequest(DaisRequest):
    TAG: ClassVar[QName] = QName(WSRF_RP_NS, "QueryResourceProperties")

    query: str = ""
    dialect: str = "http://www.w3.org/TR/1999/REC-xpath-19991116"

    def to_xml(self) -> XmlElement:
        root = self._root()
        expression = E(QName(WSRF_RP_NS, "QueryExpression"), self.query)
        expression.set("Dialect", self.dialect)
        root.append(expression)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        expression = element.find(QName(WSRF_RP_NS, "QueryExpression"))
        return cls(
            abstract_name=cls._read_name(element),
            query=expression.text if expression is not None else "",
            dialect=(
                expression.get("Dialect", "") if expression is not None else ""
            )
            or "",
        )


@dataclass
class QueryResourcePropertiesResponse(GetResourcePropertyResponse):
    TAG: ClassVar[QName] = QName(WSRF_RP_NS, "QueryResourcePropertiesResponse")


@dataclass
class SetTerminationTimeRequest(DaisRequest):
    TAG: ClassVar[QName] = QName(WSRF_RL_NS, "SetTerminationTime")

    #: Absolute termination time (seconds since epoch), or None = infinite.
    requested_termination_time: Optional[float] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        node = E(QName(WSRF_RL_NS, "RequestedTerminationTime"))
        if self.requested_termination_time is None:
            node.set("nil", "true")
        else:
            node.text = repr(self.requested_termination_time)
        root.append(node)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        node = element.find(QName(WSRF_RL_NS, "RequestedTerminationTime"))
        requested: Optional[float] = None
        if node is not None and node.get("nil") != "true" and node.text.strip():
            requested = float(node.text.strip())
        return cls(
            abstract_name=cls._read_name(element),
            requested_termination_time=requested,
        )


@dataclass
class SetTerminationTimeResponse(DaisMessage):
    TAG: ClassVar[QName] = QName(WSRF_RL_NS, "SetTerminationTimeResponse")

    new_termination_time: Optional[float] = None
    current_time: float = 0.0

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        node = E(QName(WSRF_RL_NS, "NewTerminationTime"))
        if self.new_termination_time is None:
            node.set("nil", "true")
        else:
            node.text = repr(self.new_termination_time)
        root.append(node)
        root.append(E(QName(WSRF_RL_NS, "CurrentTime"), repr(self.current_time)))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        node = element.find(QName(WSRF_RL_NS, "NewTerminationTime"))
        new_time: Optional[float] = None
        if node is not None and node.get("nil") != "true" and node.text.strip():
            new_time = float(node.text.strip())
        current = element.findtext(QName(WSRF_RL_NS, "CurrentTime"), "0") or "0"
        return cls(new_termination_time=new_time, current_time=float(current))
