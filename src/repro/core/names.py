"""Abstract names for data resources.

Per the paper (§3): *"A data resource must always have an identifier, an
abstract name, which is unique and persistent ... for now DAIS uses a URI
to represent data resource's abstract names."*
"""

from __future__ import annotations

import itertools
import re
import uuid

#: Scheme prefix used for names minted by this library.
ABSTRACT_NAME_PREFIX = "urn:dais:resource:"

_URI_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.\-]*:\S+$")

_counter = itertools.count(1)


class AbstractName(str):
    """A data resource abstract name — a validated URI string.

    Subclassing ``str`` keeps names directly usable in messages and as
    dictionary keys while rejecting junk at construction time.
    """

    def __new__(cls, value: str) -> "AbstractName":
        value = value.strip()
        if not _URI_RE.match(value):
            from repro.core.faults import InvalidResourceNameFault

            raise InvalidResourceNameFault(
                f"abstract name must be a URI, got {value!r}"
            )
        return super().__new__(cls, value)


def mint_abstract_name(hint: str = "") -> AbstractName:
    """Mint a fresh globally-unique abstract name.

    *hint* (e.g. ``"sqlresponse"``) makes traces readable; uniqueness
    comes from a UUID.
    """
    label = f"{hint}:" if hint else ""
    return AbstractName(f"{ABSTRACT_NAME_PREFIX}{label}{uuid.uuid4()}")


def deterministic_abstract_name(hint: str = "r") -> AbstractName:
    """Mint a process-unique, *deterministic* name (tests/benchmarks)."""
    return AbstractName(f"{ABSTRACT_NAME_PREFIX}{hint}:{next(_counter)}")
