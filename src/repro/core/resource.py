"""The data resource abstraction.

A :class:`DataResource` is "any entity that can act as a source or sink
of data" (paper §3).  Concrete resources — a relational database, an XML
collection, a derived SQL response or rowset — subclass this and
implement the hooks their port types need.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.faults import InvalidLanguageFault
from repro.core.names import AbstractName
from repro.core.properties import (
    ConfigurableProperties,
    CorePropertyDocument,
    DataResourceManagement,
)
from repro.obs.journal import record_event
from repro.obs.tracing import current_span
from repro.xmlutil import XmlElement


class DataResource(ABC):
    """Base class for everything a data service can represent."""

    def __init__(
        self,
        abstract_name: AbstractName,
        management: DataResourceManagement,
        parent: str = "",
    ) -> None:
        self.abstract_name = abstract_name
        self.management = management
        self.parent = parent
        #: The (trace_id, span_id) under which this resource was created,
        #: when a trace was live — factory-derived resources use it to
        #: link later accesses back to the creating trace.
        span = current_span()
        self.creating_trace: tuple[str, str] | None = (
            (span.trace_id, span.span_id) if span.recording else None
        )
        record_event(
            "created",
            abstract_name,
            type=type(self).__name__,
            management=management.value,
            parent=parent or None,
        )

    # -- property document -------------------------------------------------

    @abstractmethod
    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        """Build the current property document for this resource as bound
        to a service with the given configurable properties."""

    def property_version(self) -> int | None:
        """Version stamp for property-document caching.

        The served document may be rebuilt from cached bytes as long as
        this value is unchanged (see
        :class:`repro.core.propcache.PropertyDocumentCache`).  Resources
        whose document derives from mutable state return a counter that
        bumps on every mutation (the relational resource returns
        :attr:`Catalog.version`); fully static documents keep the
        default ``0``.  Return ``None`` to opt out of caching entirely.
        """
        return 0

    # -- generic query ----------------------------------------------------

    def generic_query_languages(self) -> list[str]:
        """Language URIs accepted by :meth:`generic_query`."""
        return []

    def generic_query(
        self, language_uri: str, expression: str, parameters: list[str]
    ) -> list[XmlElement]:
        """Evaluate a generic query; returns result elements.

        The default implementation rejects every language — resources
        that advertise ``GenericQueryLanguage`` properties override it.
        """
        raise InvalidLanguageFault(
            f"this resource does not support generic queries "
            f"(language {language_uri!r})"
        )

    # -- lifecycle -----------------------------------------------------------

    def on_destroy(self) -> None:
        """Release resource state when the service↔resource relationship
        is destroyed.

        Externally managed resources typically do nothing with their
        data (it remains in place, paper §4.3); service managed
        resources drop theirs.  Overrides must call ``super()`` so the
        destruction lands in the lifecycle journal.
        """
        record_event(
            "destroyed", self.abstract_name, management=self.management.value
        )

    # -- introspection ---------------------------------------------------------

    @property
    def is_service_managed(self) -> bool:
        return self.management is DataResourceManagement.SERVICE_MANAGED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.abstract_name} "
            f"({self.management.value})>"
        )
