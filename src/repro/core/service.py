"""The data service: resource bindings, operation dispatch, two profiles.

A :class:`DataService` represents zero or more data resources (paper §3)
and exposes operations keyed by ``wsa:Action``.  The service always
implements the ``CoreDataAccess`` operations; ``CoreResourceList`` is on
by default (it is optional in the spec, so it can be disabled); the WSRF
profile adds fine-grained property access and soft-state lifetime
(paper §5) without changing any message body.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.core import messages as msg
from repro.core import wsrf_messages as wmsg
from repro.core.faults import (
    InvalidResourceNameFault,
    NotAuthorizedFault,
    ServiceBusyFault,
)
from repro.core.names import AbstractName
from repro.core.propcache import PropertyDocumentCache
from repro.core.properties import ConfigurableProperties
from repro.core.resource import DataResource
from repro.obs import MetricsRegistry, get_tracer
from repro.obs.journal import get_journal, journal_element, record_event
from repro.obs.properties import metrics_element
from repro.soap.addressing import EndpointReference, MessageHeaders
from repro.soap.envelope import Envelope, fault_envelope
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.tracecontext import extract_context
from repro.wsrf.clock import Clock
from repro.wsrf.faults import WsrfFault
from repro.wsrf.lifetime import LifetimeManager
from repro.wsrf.properties import PropertyAccess
from repro.xmlutil import E, QName, XmlElement, serialize_bytes
from repro.core.namespaces import WSDAI_NS

#: The reference-parameter tag DAIS puts in data resource EPRs.
RESOURCE_REFERENCE_PARAMETER = QName(WSDAI_NS, "DataResourceAbstractName")

Handler = Callable[[XmlElement, MessageHeaders], msg.DaisMessage]


class ResourceBinding:
    """One service↔resource relationship and its configurable properties."""

    def __init__(
        self,
        resource: DataResource,
        configurable: ConfigurableProperties,
        service: "DataService",
    ) -> None:
        self.resource = resource
        self.configurable = configurable
        self._service = service
        #: How many independent service↔resource relationships share this
        #: binding.  A shared derived resource (factory result reuse)
        #: raises it via :meth:`DataService.acquire_resource`; explicit
        #: destroys release claims one at a time and only the last claim
        #: actually destroys (soft-state expiry ignores claims — a
        #: passed termination time ends the resource for every holder).
        self.refcount = 1

    @property
    def abstract_name(self) -> str:
        return self.resource.abstract_name

    def property_document(self) -> XmlElement:
        """Render the current property document (WSRF provider protocol).

        The service's live metrics ride along as a ``ServiceMetrics``
        extension element, so consumers can read them through the
        standard property operations (paper §5).  When a span exporter
        or the journal has dropped records at capacity, the drop counts
        ride along too — eviction is observable, never silent.  The
        resource's lifecycle history is the ``LifecycleJournal``
        property element.

        Only the resource's *own* document is cacheable (see
        :meth:`DataService._resource_document`); the metrics, journal,
        resilience and job-set elements below are volatile and are
        appended fresh on every read.
        """
        document = self._service._resource_document(self)
        journal = get_journal()
        extra = []
        exporter = get_tracer().exporter
        if exporter is not None:
            extra.append(
                ("obs.spans.dropped", {}, getattr(exporter, "dropped", 0))
            )
        if journal.dropped:
            extra.append(("obs.journal.dropped", {}, journal.dropped))
        document.append(
            metrics_element(self._service.metrics, extra_counters=extra)
        )
        document.append(
            journal_element(journal.events(resource=self.abstract_name))
        )
        resilience = self._service.resilience
        if resilience is not None:
            document.append(resilience.status_element())
        jobs = self._service.jobs
        if jobs is not None:
            from repro.jobs.messages import job_set_element

            document.append(
                job_set_element(
                    [
                        job
                        for job in jobs.jobs()
                        if job.payload.get("resource") == self.abstract_name
                    ]
                )
            )
        return document

    def require_readable(self) -> None:
        if not self.configurable.readable:
            raise NotAuthorizedFault(
                f"resource {self.abstract_name} is not readable"
            )

    def require_writeable(self) -> None:
        if not self.configurable.writeable:
            raise NotAuthorizedFault(
                f"resource {self.abstract_name} is not writeable"
            )


class DataService:
    """A DAIS data service bound to zero or more data resources."""

    def __init__(
        self,
        name: str,
        address: str,
        wsrf: bool = False,
        resource_list_enabled: bool = True,
        clock: Clock | None = None,
        property_namespaces: dict[str, str] | None = None,
        max_concurrent: int | None = None,
    ) -> None:
        self.name = name
        self.address = address
        self.wsrf = wsrf
        #: Guards the service↔resource table.  An RLock because a
        #: lifetime destructor (running under this lock via
        #: ``destroy_resource``) pops from the same table.
        self._resources_lock = threading.RLock()
        self._bindings: dict[str, ResourceBinding] = {}
        self._handlers: dict[str, Handler] = {}
        self._property_namespaces = dict(property_namespaces or {})
        self._property_namespaces.setdefault("wsdai", WSDAI_NS)
        self.lifetime = LifetimeManager(clock) if wsrf else None
        #: Failure injection: when set, every dispatch faults ServiceBusy.
        self.fail_busy = False
        #: When this service also acts as a consumer, attach its outbound
        #: :class:`repro.resilience.Resilience` layer here: its breaker
        #: states then publish as the ``obs:ResilienceStatus`` property.
        self.resilience = None
        #: The durable job queue this service's factories submit into
        #: when a consumer requests ``ExecutionMode=asynchronous``; None
        #: (the default) keeps every factory strictly synchronous.  Set
        #: via :meth:`enable_jobs`.
        self.jobs = None
        #: The ConcurrentAccess limit: None = unbounded.  Exceeding it
        #: (possible under the threaded HTTP binding) faults ServiceBusy.
        self.max_concurrent = max_concurrent
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Per-service metrics (dispatch counts, latency, faults); exposed
        #: to consumers through the property document (ServiceMetrics).
        self.metrics = MetricsRegistry()
        #: Rendered-bytes cache for resource property documents; set to
        #: ``None`` to disable (the fig-4 benchmark baseline does).
        self.propdoc_cache = PropertyDocumentCache()
        self.propdoc_cache.bind_counters(
            self.metrics.counter(
                "cache.propdoc.hits", "property-document cache hits"
            ),
            self.metrics.counter(
                "cache.propdoc.misses", "property-document cache misses"
            ),
            self.metrics.counter(
                "cache.propdoc.invalidations",
                "property-document cache invalidations",
            ),
        )
        self._dispatch_counter = self.metrics.counter(
            "dais.dispatch.count", "dispatches per wsa:Action"
        )
        self._fault_counter = self.metrics.counter(
            "dais.dispatch.faults", "fault responses per wsa:Action"
        )
        self._dispatch_seconds = self.metrics.histogram(
            "dais.dispatch.seconds", "dispatch wall-clock seconds"
        )

        self._install_core_operations()
        if resource_list_enabled:
            self._install_resource_list_operations()
        if wsrf:
            self._install_wsrf_operations()

    # -- resource management ---------------------------------------------------

    def add_resource(
        self,
        resource: DataResource,
        configurable: ConfigurableProperties | None = None,
        lifetime_seconds: float | None = None,
    ) -> ResourceBinding:
        """Bind *resource* to this service.

        *lifetime_seconds* only applies under the WSRF profile (soft
        state); without WSRF the resource lives until explicit destroy.
        """
        name = resource.abstract_name
        binding = ResourceBinding(
            resource, (configurable or ConfigurableProperties()).copy(), self
        )
        with self._resources_lock:
            if name in self._bindings:
                raise ValueError(
                    f"resource {name} already bound to {self.name}"
                )
            self._bindings[name] = binding
            if self.lifetime is not None:
                try:
                    self.lifetime.register(
                        name, self._destroy_by_lifetime, lifetime_seconds
                    )
                except BaseException:
                    del self._bindings[name]
                    raise
        return binding

    def resource_names(self) -> list[str]:
        with self._resources_lock:
            return sorted(self._bindings)

    def has_resource(self, abstract_name: str) -> bool:
        with self._resources_lock:
            return abstract_name in self._bindings

    def binding(self, abstract_name: str) -> ResourceBinding:
        with self._resources_lock:
            try:
                return self._bindings[abstract_name]
            except KeyError:
                raise InvalidResourceNameFault(
                    f"service {self.name!r} does not know resource "
                    f"{abstract_name!r}"
                ) from None

    def acquire_resource(self, abstract_name: str) -> bool:
        """Add one claim on an existing binding (shared derived results).

        Returns ``False`` when the resource is already gone — the caller
        (the factory result cache) must then treat its entry as stale.
        The claim is released by :meth:`destroy_resource`: only the last
        release actually destroys.
        """
        with self._resources_lock:
            binding = self._bindings.get(abstract_name)
            if binding is None:
                return False
            binding.refcount += 1
            return True

    def destroy_resource(self, abstract_name: str) -> None:
        """Sever the service↔resource relationship (paper §4.3).

        Safe against racing destroyers: the check-then-act on the
        binding table happens under the resource lock, and the lifetime
        route is idempotent — when an explicit destroy, a sweep and a
        WSRF ``Destroy`` race, exactly one runs ``on_destroy``.

        A binding holding several claims (see :meth:`acquire_resource`)
        just sheds one claim here; the relationship persists for the
        other holders and only the final destroy tears it down.
        """
        with self._resources_lock:
            binding = self.binding(abstract_name)  # faults when unknown
            if binding.refcount > 1:
                binding.refcount -= 1
                record_event(
                    "released",
                    abstract_name,
                    service=self.name,
                    remaining=binding.refcount,
                )
                return
            via_lifetime = (
                self.lifetime is not None
                and self.lifetime.registered(abstract_name)
            )
            if not via_lifetime:
                del self._bindings[abstract_name]
        if via_lifetime:
            # Route through the lifetime manager so records stay
            # coherent; losing the claim to a concurrent sweep is fine.
            self.lifetime.destroy(abstract_name, missing_ok=True)
            return
        self._invalidate_document(abstract_name)
        binding.resource.on_destroy()

    def _destroy_by_lifetime(self, abstract_name: str) -> None:
        with self._resources_lock:
            binding = self._bindings.pop(abstract_name, None)
        if binding is not None:
            self._invalidate_document(abstract_name)
            binding.resource.on_destroy()

    def sweep_expired(self) -> list[str]:
        """WSRF soft state: destroy resources past their termination time."""
        if self.lifetime is None:
            return []
        return self.lifetime.sweep()

    # -- property-document cache -------------------------------------------

    def _resource_document(self, binding: ResourceBinding) -> XmlElement:
        """The resource's own property document, served from the cache.

        The cache is filled with *rendered bytes*; its master tree is
        parsed back from those bytes and every serve (the fill included)
        is a deep copy of that master, so a hit and the fill it followed
        are byte-identical and neither aliases mutable catalog state.  A
        resource whose :meth:`~repro.core.resource.DataResource.property_version`
        is ``None`` (or a service with the cache disabled) renders
        directly.
        """
        cache = self.propdoc_cache
        version = binding.resource.property_version()
        if cache is None or version is None:
            return binding.resource.property_document(
                binding.configurable
            ).to_xml()
        key = binding.abstract_name
        served = cache.lookup_document(key, version)
        if served is None:
            document = binding.resource.property_document(
                binding.configurable
            ).to_xml()
            served = cache.store(key, version, serialize_bytes(document))
        return served

    def _invalidate_document(self, abstract_name: str) -> None:
        if self.propdoc_cache is not None:
            self.propdoc_cache.invalidate(abstract_name)

    def epr_for(self, abstract_name: str) -> EndpointReference:
        """The data resource address: service address + abstract name as a
        reference parameter (paper §3)."""
        self.binding(abstract_name)  # existence check
        return EndpointReference(
            address=self.address,
            reference_parameters=(
                E(RESOURCE_REFERENCE_PARAMETER, abstract_name),
            ),
        )

    # -- operation registry ------------------------------------------------

    def register_operation(self, action: str, handler: Handler) -> None:
        """Register *handler* for an action URI (realisations extend here)."""
        self._handlers[action] = handler

    def supports_action(self, action: str) -> bool:
        return action in self._handlers

    def actions(self) -> list[str]:
        return sorted(self._handlers)

    # -- dispatch ----------------------------------------------------------

    @property
    def dispatch_counts(self) -> dict[str, int]:
        """Dispatch count per action URI (a snapshot of the live counter)."""
        return {
            labels.get("action", ""): int(value)
            for labels, value in self._dispatch_counter.items()
        }

    def dispatch(self, request: Envelope) -> Envelope:
        """Process one request envelope; always returns a response
        envelope (success or fault).

        Every dispatch is one ``dais.dispatch`` span (action, resource
        abstract name, fault status) with a ``dais.handler`` child for
        the handler body, and feeds the per-action metrics.  When the
        request carries an ``obs:TraceContext`` header and no in-process
        span is already open (a remote caller), the dispatch span adopts
        the caller's trace so consumer and service form one tree; when
        the target resource was created by a *different* trace (a
        factory product), that trace is recorded as a span link.
        """
        action = request.headers.action
        tracer = get_tracer()
        started = time.perf_counter()
        with tracer.span("dais.dispatch", service=self.name, action=action) as span:
            if span.recording:
                if span.parent_id is None:
                    context = extract_context(
                        request.headers.reference_parameters
                    )
                    if context is not None:
                        span.adopt(context.trace_id, context.parent_id)
                resource = request.payload.findtext(RESOURCE_REFERENCE_PARAMETER)
                if resource:
                    name = resource.strip()
                    span.set_attribute("resource", name)
                    with self._resources_lock:
                        binding = self._bindings.get(name)
                    creating = (
                        getattr(binding.resource, "creating_trace", None)
                        if binding is not None
                        else None
                    )
                    if creating and creating[0] != span.trace_id:
                        span.add_link(
                            creating[0], creating[1], relation="created-by"
                        )
            response = self._dispatch_guarded(request, action, tracer)
            self._dispatch_counter.inc(action=action)
            self._dispatch_seconds.observe(
                time.perf_counter() - started, action=action
            )
            if response.is_fault():
                span.mark_fault()
                self._fault_counter.inc(action=action)
            return response

    def _dispatch_guarded(
        self, request: Envelope, action: str, tracer
    ) -> Envelope:
        admitted = False
        try:
            if self.fail_busy:
                raise ServiceBusyFault(f"service {self.name!r} is busy")
            admitted = self._admit()
            if not admitted:
                raise ServiceBusyFault(
                    f"service {self.name!r} is at its concurrency limit "
                    f"({self.max_concurrent})"
                )
            handler = self._handlers.get(action)
            if handler is None:
                raise SoapFault(
                    FaultCode.CLIENT, f"unsupported wsa:Action {action!r}"
                )
            with tracer.span("dais.handler", action=action):
                response_message = handler(request.payload, request.headers)
            return Envelope(
                headers=request.headers.reply(f"{action}Response"),
                payload=response_message.to_xml(),
            )
        except SoapFault as fault:
            return fault_envelope(request.headers, fault)
        except Exception as exc:  # pragma: no cover - defensive boundary
            return fault_envelope(
                request.headers,
                SoapFault(FaultCode.SERVER, f"internal error: {exc}"),
            )
        finally:
            if admitted:
                self._release()

    def _admit(self) -> bool:
        with self._inflight_lock:
            if (
                self.max_concurrent is not None
                and self._inflight >= self.max_concurrent
            ):
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    # -- CoreDataAccess handlers ----------------------------------------------

    def _install_core_operations(self) -> None:
        self.register_operation(
            msg.GenericQueryRequest.action(), self._handle_generic_query
        )
        self.register_operation(
            msg.DestroyDataResourceRequest.action(), self._handle_destroy
        )
        self.register_operation(
            msg.GetDataResourcePropertyDocumentRequest.action(),
            self._handle_get_property_document,
        )

    def _handle_generic_query(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GenericQueryResponse:
        request = msg.GenericQueryRequest.from_xml(payload)
        binding = self.binding(request.abstract_name)
        binding.require_readable()
        from repro.core.faults import InvalidLanguageFault

        if request.language_uri not in binding.resource.generic_query_languages():
            raise InvalidLanguageFault(
                f"language {request.language_uri!r} not supported; "
                f"advertised: {binding.resource.generic_query_languages()}"
            )
        data = binding.resource.generic_query(
            request.language_uri, request.expression, request.parameters
        )
        return msg.GenericQueryResponse(
            dataset_format_uri=request.dataset_format_uri or "",
            data=data,
        )

    def _handle_destroy(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.DestroyDataResourceResponse:
        request = msg.DestroyDataResourceRequest.from_xml(payload)
        self.destroy_resource(request.abstract_name)
        return msg.DestroyDataResourceResponse(destroyed=request.abstract_name)

    def _handle_get_property_document(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetDataResourcePropertyDocumentResponse:
        request = msg.GetDataResourcePropertyDocumentRequest.from_xml(payload)
        binding = self.binding(request.abstract_name)
        return msg.GetDataResourcePropertyDocumentResponse(
            document=binding.property_document()
        )

    # -- CoreResourceList handlers ----------------------------------------------

    def _install_resource_list_operations(self) -> None:
        self.register_operation(
            msg.GetResourceListRequest.action(), self._handle_get_resource_list
        )
        self.register_operation(msg.ResolveRequest.action(), self._handle_resolve)

    def _handle_get_resource_list(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetResourceListResponse:
        return msg.GetResourceListResponse(names=self.resource_names())

    def _handle_resolve(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.ResolveResponse:
        request = msg.ResolveRequest.from_xml(payload)
        address = self.epr_for(request.abstract_name)
        record_event("resolved", request.abstract_name, service=self.name)
        return msg.ResolveResponse(address=address)

    # -- asynchronous jobs ----------------------------------------------------

    def enable_jobs(self, jobs, terminal_ttl: float | None = None) -> None:
        """Attach a :class:`repro.jobs.JobManager` and install the
        ``GetJobStatus``/``CancelJob`` operations.

        Factories on this service then honour
        ``ExecutionMode=asynchronous`` (realisations override this to
        register their executors).  Under the WSRF profile,
        *terminal_ttl* gives finished job records a soft-state
        termination time via the service's LifetimeManager, so the job
        table does not grow without bound.
        """
        from repro.jobs import messages as jmsg

        self.jobs = jobs
        if self.lifetime is not None and terminal_ttl is not None:
            jobs.attach_lifetime(self.lifetime, terminal_ttl)
        self.register_operation(
            jmsg.GetJobStatusRequest.action(), self._handle_get_job_status
        )
        self.register_operation(
            jmsg.CancelJobRequest.action(), self._handle_cancel_job
        )

    def _job_or_fault(self, job_id: str):
        from repro.core.faults import UnknownJobFault
        from repro.jobs.manager import UnknownJobError

        if self.jobs is None:  # pragma: no cover - handlers install with jobs
            raise UnknownJobFault("asynchronous jobs are not enabled")
        try:
            return self.jobs.get(job_id)
        except UnknownJobError:
            raise UnknownJobFault(
                f"service {self.name!r} knows no job {job_id!r}"
            ) from None

    def _job_status_response(self, job):
        from repro.jobs import messages as jmsg
        from repro.jobs.model import COMPLETED

        response = jmsg.GetJobStatusResponse(
            job_id=job.job_id,
            phase=job.phase,
            attempts=job.attempts,
            cancel_requested=job.cancel_requested,
            fault_type=job.fault_type,
            fault_message=job.fault_message,
        )
        if job.phase == COMPLETED and job.result:
            name = job.result.get("abstract_name", "")
            address = job.result.get("address", "")
            response.result_name = name
            if address and name:
                # Reconstruct the data resource address the synchronous
                # factory response would have carried (paper §3).
                response.address = EndpointReference(
                    address=address,
                    reference_parameters=(
                        E(RESOURCE_REFERENCE_PARAMETER, name),
                    ),
                )
        return response

    def _handle_get_job_status(
        self, payload: XmlElement, headers: MessageHeaders
    ):
        from repro.jobs import messages as jmsg

        request = jmsg.GetJobStatusRequest.from_xml(payload)
        return self._job_status_response(self._job_or_fault(request.abstract_name))

    def _handle_cancel_job(self, payload: XmlElement, headers: MessageHeaders):
        from repro.jobs import messages as jmsg

        request = jmsg.CancelJobRequest.from_xml(payload)
        self._job_or_fault(request.abstract_name)
        job = self.jobs.cancel(request.abstract_name)
        return jmsg.CancelJobResponse(job_id=job.job_id, phase=job.phase)

    # -- WSRF handlers -------------------------------------------------------

    def _install_wsrf_operations(self) -> None:
        self.register_operation(
            wmsg.GetResourcePropertyRequest.action(),
            self._handle_get_resource_property,
        )
        self.register_operation(
            wmsg.GetMultipleResourcePropertiesRequest.action(),
            self._handle_get_multiple_properties,
        )
        self.register_operation(
            wmsg.QueryResourcePropertiesRequest.action(),
            self._handle_query_properties,
        )
        self.register_operation(
            wmsg.SetTerminationTimeRequest.action(),
            self._handle_set_termination_time,
        )
        # WS-ResourceLifetime's immediate Destroy is an alias for the DAIS
        # DestroyDataResource semantics on this service.
        from repro.wsrf.namespaces import WSRF_RL_NS

        self.register_operation(f"{WSRF_RL_NS}/Destroy", self._handle_destroy)

    def _property_access(self, binding: ResourceBinding) -> PropertyAccess:
        return PropertyAccess(binding, namespaces=self._property_namespaces)

    def _handle_get_resource_property(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> wmsg.GetResourcePropertyResponse:
        request = wmsg.GetResourcePropertyRequest.from_xml(payload)
        binding = self.binding(request.abstract_name)
        if request.property_qname is None:
            raise WsrfFault("GetResourceProperty requires a property QName")
        return wmsg.GetResourcePropertyResponse(
            properties=self._property_access(binding).get(request.property_qname)
        )

    def _handle_get_multiple_properties(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> wmsg.GetMultipleResourcePropertiesResponse:
        request = wmsg.GetMultipleResourcePropertiesRequest.from_xml(payload)
        binding = self.binding(request.abstract_name)
        return wmsg.GetMultipleResourcePropertiesResponse(
            properties=self._property_access(binding).get_multiple(
                request.property_qnames
            )
        )

    def _handle_query_properties(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> wmsg.QueryResourcePropertiesResponse:
        request = wmsg.QueryResourcePropertiesRequest.from_xml(payload)
        binding = self.binding(request.abstract_name)
        return wmsg.QueryResourcePropertiesResponse(
            properties=self._property_access(binding).query(
                request.query, request.dialect
            )
        )

    def _handle_set_termination_time(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> wmsg.SetTerminationTimeResponse:
        request = wmsg.SetTerminationTimeRequest.from_xml(payload)
        self.binding(request.abstract_name)
        if self.lifetime is None:  # pragma: no cover - wsrf only installs this
            raise WsrfFault("service runs the non-WSRF profile")
        record = self.lifetime.set_termination_time(
            request.abstract_name, request.requested_termination_time
        )
        # A lifetime transition changes what a property read should
        # reflect without touching the resource's version stamp.
        self._invalidate_document(request.abstract_name)
        return wmsg.SetTerminationTimeResponse(
            new_termination_time=record.termination_time,
            current_time=record.current_time,
        )
