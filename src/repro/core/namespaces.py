"""WS-DAI wire namespace and action URIs."""

from repro.xmlutil.names import DEFAULT_REGISTRY
from repro.xmlutil.parser import intern_vocabulary

#: The WS-DAI 1.0 namespace (GGF DAIS-WG, 2005 drafts).
WSDAI_NS = "http://www.ggf.org/namespaces/2005/05/WS-DAI"

DEFAULT_REGISTRY.register("wsdai", WSDAI_NS)

# Core message scaffolding seen on every DAIS request/response; interning
# lets the parser resolve these names without per-document work.
intern_vocabulary(
    WSDAI_NS,
    (
        "DataResourceAbstractName",
        "DataResourceAddress",
        "DatasetFormatURI",
        "DatasetData",
        "GenericExpression",
        "Expression",
        "Parameter",
        "Parameters",
    ),
)


def action_uri(operation: str, namespace: str = WSDAI_NS) -> str:
    """The ``wsa:Action`` URI for *operation* in a DAIS namespace."""
    return f"{namespace}/{operation}"


#: Well-known generic query language URIs advertised in LanguageMap.
SQL_LANGUAGE_URI = "http://www.sql.org/sql-92"
XPATH_LANGUAGE_URI = "http://www.w3.org/TR/1999/REC-xpath-19991116"
XQUERY_LANGUAGE_URI = "http://www.w3.org/TR/xquery"
XUPDATE_LANGUAGE_URI = "http://www.xmldb.org/xupdate"
