"""WS-DAI: the model-agnostic core of the DAIS specifications.

This package implements the paper's §3–§4 core machinery:

* **data resources** with unique, persistent *abstract names* (URIs),
  classified as *externally managed* or *service managed* (§3);
* **data services** exposing port-type operations addressed by
  ``wsa:Action`` URIs, always targeted by the abstract name carried in
  the SOAP *body* (§3, §5);
* the **property document** (data description interface) with the core
  static and configurable properties of Figure 4;
* the **core operations** of Figure 6 — ``GenericQuery``,
  ``DestroyDataResource``, ``GetDataResourcePropertyDocument`` plus the
  optional ``CoreResourceList`` (``GetResourceList``, ``Resolve``);
* the **direct and indirect (factory) access patterns** of Figure 1,
  including configuration documents and requested-port-type negotiation;
* the **DAIS fault family** carried as typed SOAP fault details.

WS-DAIR (:mod:`repro.dair`) and WS-DAIX (:mod:`repro.daix`) extend these
classes — mirroring how the specifications extend the core document.
"""

from repro.core.namespaces import WSDAI_NS, action_uri
from repro.core.names import AbstractName, mint_abstract_name
from repro.core.faults import (
    DaisFault,
    DataResourceUnavailableFault,
    InvalidConfigurationDocumentFault,
    InvalidDatasetFormatFault,
    InvalidExpressionFault,
    InvalidLanguageFault,
    InvalidPortTypeQNameFault,
    InvalidResourceNameFault,
    NotAuthorizedFault,
    ServiceBusyFault,
    ServiceNotFoundFault,
    TransportFault,
    UnknownJobFault,
)
from repro.core.properties import (
    ConfigurableProperties,
    CorePropertyDocument,
    DataResourceManagement,
    DatasetMapEntry,
    Sensitivity,
    TransactionInitiation,
    TransactionIsolation,
)
from repro.core.resource import DataResource
from repro.core.service import DataService, ResourceBinding
from repro.core.registry import ServiceRegistry

__all__ = [
    "WSDAI_NS",
    "action_uri",
    "AbstractName",
    "mint_abstract_name",
    "DaisFault",
    "InvalidResourceNameFault",
    "DataResourceUnavailableFault",
    "InvalidLanguageFault",
    "InvalidExpressionFault",
    "InvalidDatasetFormatFault",
    "InvalidConfigurationDocumentFault",
    "InvalidPortTypeQNameFault",
    "NotAuthorizedFault",
    "ServiceBusyFault",
    "ServiceNotFoundFault",
    "UnknownJobFault",
    "TransportFault",
    "DataResourceManagement",
    "TransactionInitiation",
    "TransactionIsolation",
    "Sensitivity",
    "DatasetMapEntry",
    "ConfigurableProperties",
    "CorePropertyDocument",
    "DataResource",
    "DataService",
    "ResourceBinding",
    "ServiceRegistry",
]
