"""The fault vocabulary a plan can inject into a call.

Each action models one failure mode of the wide-area fabric between a
DAIS consumer and a data service.  Actions are inert descriptions; the
:class:`~repro.faultinject.transport.FaultyTransport` (client side) and
``DaisHttpServer`` (server handler path) interpret them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "FaultAction",
    "ConnectionRefused",
    "DropResponse",
    "Latency",
    "LatencySpread",
    "HttpStatus",
    "Busy",
    "ExpireResource",
    "latency_percentiles",
]


class FaultAction:
    """Base class; exists so plans can type-check their menu."""

    def sample(self, rng: random.Random) -> "FaultAction":
        """Resolve any randomness into a concrete action (default: self)."""
        return self


@dataclass(frozen=True)
class ConnectionRefused(FaultAction):
    """The request never reaches the service (socket-level refusal)."""


@dataclass(frozen=True)
class DropResponse(FaultAction):
    """The service processes the request but the response is lost —
    the nasty case: side effects happened, the consumer cannot know."""


@dataclass(frozen=True)
class Latency(FaultAction):
    """Delay the call by ``seconds`` before forwarding it normally."""

    seconds: float


@dataclass(frozen=True)
class LatencySpread(FaultAction):
    """Latency drawn uniformly from ``[low, high]`` at injection time —
    build via :func:`latency_percentiles` for a p50/p99-style spread."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> Latency:
        return Latency(rng.uniform(self.low, self.high))


def latency_percentiles(p50: float, p99: float) -> LatencySpread:
    """A latency spread whose median ≈ *p50* and tail reaches *p99*."""
    if p99 < p50:
        raise ValueError("p99 must not be below p50")
    return LatencySpread(low=max(0.0, 2 * p50 - p99), high=p99)


@dataclass(frozen=True)
class HttpStatus(FaultAction):
    """An HTTP-level error (503/500/…) with a non-SOAP body."""

    status: int = 503


@dataclass(frozen=True)
class Busy(FaultAction):
    """A well-formed SOAP ``ServiceBusyFault`` response."""


@dataclass(frozen=True)
class ExpireResource(FaultAction):
    """A WSRF ``ResourceUnknownFault`` — the soft-state resource expired
    between calls.  Pair with :meth:`FaultPlan.after` to fire only from
    the N-th call onward."""
