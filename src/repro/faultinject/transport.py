"""``FaultyTransport`` — wrap any transport in a fault plan.

Sits between a client and its real transport, consulting the plan once
per ``send``.  Transport-level failures surface as the typed
:class:`~repro.core.faults.TransportFault` (exactly what the real HTTP
client raises for refusals/timeouts); protocol-level injections come
back as well-formed SOAP fault envelopes, indistinguishable on the wire
from a service that really answered that way.

Like the transports it wraps, the faulty transport honours an installed
``resilience`` layer — and runs the retry loop *outside* the injection
point, so retries genuinely re-traverse the faulty fabric.
"""

from __future__ import annotations

from repro.core.faults import ServiceBusyFault, TransportFault
from repro.faultinject.actions import (
    Busy,
    ConnectionRefused,
    DropResponse,
    ExpireResource,
    FaultAction,
    HttpStatus,
    Latency,
)
from repro.faultinject.plan import FaultPlan
from repro.obs import MetricsRegistry, add_to_current_span
from repro.resilience import RealClock, coerce_resilience
from repro.soap.envelope import Envelope, fault_envelope
from repro.wsrf.faults import ResourceUnknownFault

__all__ = ["FaultyTransport"]


class FaultyTransport:
    """A transport decorator that injects faults per a :class:`FaultPlan`."""

    def __init__(self, inner, plan: FaultPlan, clock=None, resilience=None) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock if clock is not None else RealClock()
        #: Optional retry/breaker layer applied *around* the injections.
        self.resilience = coerce_resilience(resilience)
        #: Injection counts per action class, for assertions and demos.
        self.metrics = MetricsRegistry()
        self._injected = self.metrics.counter(
            "faultinject.injected", "injected faults per kind"
        )

    @property
    def stats(self):
        """Wire stats of the wrapped transport (recorded attempts only)."""
        return self.inner.stats

    def send(self, address: str, request: Envelope) -> Envelope:
        if self.resilience is None:
            return self._send_once(address, request)
        return self.resilience.call(address, request, self._send_once)

    def _send_once(self, address: str, request: Envelope) -> Envelope:
        action = self.plan.decide(address, request.headers.action)
        if action is None:
            return self.inner.send(address, request)
        self._injected.inc(kind=type(action).__name__)
        add_to_current_span("faults.injected")
        return self._apply(action, address, request)

    def _apply(
        self, action: FaultAction, address: str, request: Envelope
    ) -> Envelope:
        if isinstance(action, Latency):
            self.clock.sleep(action.seconds)
            return self.inner.send(address, request)
        if isinstance(action, ConnectionRefused):
            raise TransportFault(f"connection refused by {address} [injected]")
        if isinstance(action, DropResponse):
            # The service really processes the request; the reply is lost.
            self.inner.send(address, request)
            raise TransportFault(
                f"connection to {address} dropped mid-response [injected]"
            )
        if isinstance(action, HttpStatus):
            raise TransportFault(
                f"HTTP {action.status} from {address} [injected]",
                status=action.status,
            )
        if isinstance(action, Busy):
            return fault_envelope(
                request.headers,
                ServiceBusyFault(f"service at {address} is busy [injected]"),
            )
        if isinstance(action, ExpireResource):
            return fault_envelope(
                request.headers,
                ResourceUnknownFault(
                    "resource lifetime expired [injected]"
                ),
            )
        raise TypeError(f"unknown fault action {type(action).__name__}")
