"""Deterministic fault plans: *which call fails, and how*.

A :class:`FaultPlan` is an ordered rule list consulted once per call.
Rules match on the global call index (1-based) and optionally on the
target address / ``wsa:Action``; the first match wins.  Randomised rules
draw from the plan's own seeded RNG, so a plan replays identically for a
given seed and call sequence — chaos tests quote only their seed.

    plan = FaultPlan(seed=7)
    plan.at(3, ConnectionRefused())               # exactly call #3
    plan.after(10, ExpireResource(), times=1)     # once, from call 10 on
    plan.with_probability(0.2, Busy())            # seeded coin per call

    plan = FaultPlan.chaos(seed=42, rate=0.3)     # the standard chaos mix
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.faultinject.actions import (
    Busy,
    ConnectionRefused,
    DropResponse,
    ExpireResource,
    FaultAction,
    HttpStatus,
    Latency,
    latency_percentiles,
)

__all__ = ["FaultPlan", "Rule", "CHAOS_MENU"]

#: The default chaos mix: every failure mode the harness can inject.
CHAOS_MENU: tuple[FaultAction, ...] = (
    ConnectionRefused(),
    DropResponse(),
    Latency(0.05),
    latency_percentiles(0.02, 0.5),
    HttpStatus(503),
    HttpStatus(500),
    Busy(),
    ExpireResource(),
)


@dataclass
class Rule:
    """One matcher → action entry in a plan."""

    action: FaultAction
    #: Fire only on this exact 1-based call index (None = any).
    at_index: int | None = None
    #: Fire only from this call index onward (None = any).
    from_index: int | None = None
    #: Restrict to one target address / wsa:Action (None = any).
    address: str | None = None
    action_uri: str | None = None
    #: Seeded firing probability (None = always when matched).
    probability: float | None = None
    #: Remaining firings (None = unlimited).
    remaining: int | None = field(default=None)

    def matches(self, index: int, address: str, action_uri: str) -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.at_index is not None and index != self.at_index:
            return False
        if self.from_index is not None and index < self.from_index:
            return False
        if self.address is not None and address != self.address:
            return False
        if self.action_uri is not None and action_uri != self.action_uri:
            return False
        return True


class FaultPlan:
    """An ordered, seeded schedule of fault injections."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[Rule] = []
        self._calls = 0
        #: ``(call index, address, action URI, injected action | None)``
        #: per decided call — the audit trail chaos tests assert against.
        self.log: list[tuple[int, str, str, FaultAction | None]] = []

    # -- building ------------------------------------------------------------

    def add(self, rule: Rule) -> "FaultPlan":
        self._rules.append(rule)
        return self

    def at(self, index: int, action: FaultAction, **match) -> "FaultPlan":
        """Inject *action* on exactly the *index*-th call (1-based)."""
        return self.add(Rule(action, at_index=index, **match))

    def after(
        self, index: int, action: FaultAction, times: int | None = 1, **match
    ) -> "FaultPlan":
        """Inject from the *index*-th call onward, at most *times* times."""
        return self.add(Rule(action, from_index=index, remaining=times, **match))

    def always(self, action: FaultAction, **match) -> "FaultPlan":
        """Inject on every matching call."""
        return self.add(Rule(action, **match))

    def with_probability(
        self, probability: float, action: FaultAction, **match
    ) -> "FaultPlan":
        """Inject with a seeded per-call coin flip."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        return self.add(Rule(action, probability=probability, **match))

    @classmethod
    def chaos(
        cls,
        seed: int,
        rate: float = 0.25,
        menu: tuple[FaultAction, ...] = CHAOS_MENU,
    ) -> "FaultPlan":
        """The standard chaos schedule: with probability *rate* per call,
        inject one action drawn (seeded) from *menu*."""
        plan = cls(seed=seed)
        plan.add(_ChaosRule(rate, menu))
        return plan

    # -- deciding ------------------------------------------------------------

    @property
    def calls_seen(self) -> int:
        return self._calls

    def decide(self, address: str, action_uri: str) -> FaultAction | None:
        """The injection decision for the next call (advances the plan)."""
        self._calls += 1
        chosen: FaultAction | None = None
        for rule in self._rules:
            if not rule.matches(self._calls, address, action_uri):
                continue
            if (
                rule.probability is not None
                and self._rng.random() >= rule.probability
            ):
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            chosen = rule.action.sample(self._rng)
            break
        self.log.append((self._calls, address, action_uri, chosen))
        return chosen


class _ChaosRule(Rule):
    """A probability rule whose action is drawn from a menu per firing."""

    def __init__(self, rate: float, menu: tuple[FaultAction, ...]) -> None:
        if not menu:
            raise ValueError("chaos menu must not be empty")
        super().__init__(action=_MenuDraw(menu), probability=rate)


@dataclass(frozen=True)
class _MenuDraw(FaultAction):
    menu: tuple[FaultAction, ...]

    def sample(self, rng: random.Random) -> FaultAction:
        return rng.choice(self.menu).sample(rng)
