"""Deterministic fault injection for transports and the HTTP server.

The harness half of the robustness story (:mod:`repro.resilience` is the
client half): a seeded :class:`FaultPlan` schedules connection refusals,
mid-response drops, fixed or spread latency, HTTP 503/500, SOAP
``ServiceBusyFault`` and expired-resource ``ResourceUnknownFault``
injections; :class:`FaultyTransport` applies them around any transport,
and ``DaisHttpServer(fault_plan=...)`` applies them on the real HTTP
handler path.  Same seed → same failures, so every chaos run replays.
"""

from repro.faultinject.actions import (
    Busy,
    ConnectionRefused,
    DropResponse,
    ExpireResource,
    FaultAction,
    HttpStatus,
    Latency,
    LatencySpread,
    latency_percentiles,
)
from repro.faultinject.plan import CHAOS_MENU, FaultPlan, Rule
from repro.faultinject.transport import FaultyTransport

__all__ = [
    "Busy",
    "ConnectionRefused",
    "DropResponse",
    "ExpireResource",
    "FaultAction",
    "HttpStatus",
    "Latency",
    "LatencySpread",
    "latency_percentiles",
    "CHAOS_MENU",
    "FaultPlan",
    "Rule",
    "FaultyTransport",
]
