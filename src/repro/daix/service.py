"""The WS-DAIX data service."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.faults import (
    DataResourceUnavailableFault,
    InvalidExpressionFault,
    InvalidPortTypeQNameFault,
    InvalidResourceNameFault,
)
from repro.core.names import mint_abstract_name
from repro.core.service import DataService, ResourceBinding
from repro.daix import messages as msg
from repro.daix.namespaces import (
    WSDAIX_NS,
    XML_SEQUENCE_ACCESS_PT,
)
from repro.daix.resources import XMLCollectionResource, XMLSequenceResource
from repro.jobs.namespaces import MODE_ASYNCHRONOUS
from repro.soap.addressing import MessageHeaders
from repro.xmldb.errors import XmlDbError
from repro.xmlutil import XmlElement, parse, serialize

#: Short names of the WS-DAIX port types.
PORT_TYPES = {
    "collection_access",
    "xpath_access",
    "xquery_access",
    "xupdate_access",
    "xpath_factory",
    "xquery_factory",
    "sequence_access",
}


class XMLRealisationService(DataService):
    """A data service exposing a configurable set of WS-DAIX port types."""

    def __init__(
        self,
        name: str,
        address: str,
        port_types: Iterable[str] = tuple(sorted(PORT_TYPES)),
        sequence_target: Optional["XMLRealisationService"] = None,
        **kwargs,
    ) -> None:
        from repro.core.namespaces import WSDAI_NS

        kwargs.setdefault(
            "property_namespaces", {"wsdai": WSDAI_NS, "wsdaix": WSDAIX_NS}
        )
        super().__init__(name, address, **kwargs)
        self.port_types = set(port_types)
        unknown = self.port_types - PORT_TYPES
        if unknown:
            raise ValueError(f"unknown port types {sorted(unknown)}")
        self.sequence_target = sequence_target or self

        if "collection_access" in self.port_types:
            self._install_collection_access()
        if "xpath_access" in self.port_types:
            self.register_operation(
                msg.XPathExecuteRequest.action(), self._handle_xpath_execute
            )
        if "xquery_access" in self.port_types:
            self.register_operation(
                msg.XQueryExecuteRequest.action(), self._handle_xquery_execute
            )
        if "xupdate_access" in self.port_types:
            self.register_operation(
                msg.XUpdateExecuteRequest.action(), self._handle_xupdate_execute
            )
        if "xpath_factory" in self.port_types:
            self.register_operation(
                msg.XPathExecuteFactoryRequest.action(),
                self._handle_xpath_factory,
            )
        if "xquery_factory" in self.port_types:
            self.register_operation(
                msg.XQueryExecuteFactoryRequest.action(),
                self._handle_xquery_factory,
            )
        if "sequence_access" in self.port_types:
            self.register_operation(
                msg.GetItemsRequest.action(), self._handle_get_items
            )

    # -- typed binding lookups ----------------------------------------------

    def _collection_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, XMLCollectionResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not an XML collection resource"
            )
        return binding

    def _sequence_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, XMLSequenceResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not an XML sequence resource"
            )
        return binding

    # -- XMLCollectionAccess -------------------------------------------------

    def _install_collection_access(self) -> None:
        self.register_operation(
            msg.AddDocumentsRequest.action(), self._handle_add_documents
        )
        self.register_operation(
            msg.GetDocumentsRequest.action(), self._handle_get_documents
        )
        self.register_operation(
            msg.RemoveDocumentsRequest.action(), self._handle_remove_documents
        )
        self.register_operation(
            msg.ListDocumentsRequest.action(), self._handle_list_documents
        )
        self.register_operation(
            msg.CreateSubcollectionRequest.action(),
            self._handle_create_subcollection,
        )
        self.register_operation(
            msg.RemoveSubcollectionRequest.action(),
            self._handle_remove_subcollection,
        )
        self.register_operation(
            msg.GetCollectionPropertyDocumentRequest.action(),
            self._handle_get_collection_property_document,
        )

    def _handle_add_documents(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.AddDocumentsResponse:
        request = msg.AddDocumentsRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        collection = binding.resource.collection
        results = []
        for name, content in request.documents:
            try:
                collection.add(name, content, replace=request.replace)
                results.append((name, "Added"))
            except XmlDbError as exc:
                results.append((name, f"Error: {exc}"))
        return msg.AddDocumentsResponse(results=results)

    def _handle_get_documents(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetDocumentsResponse:
        request = msg.GetDocumentsRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        collection = binding.resource.collection
        documents = []
        for name in request.names:
            try:
                documents.append((name, collection.get(name).root.copy()))
            except XmlDbError:
                continue  # absent documents are simply omitted
        return msg.GetDocumentsResponse(documents=documents)

    def _handle_remove_documents(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.RemoveDocumentsResponse:
        request = msg.RemoveDocumentsRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        collection = binding.resource.collection
        removed = 0
        for name in request.names:
            try:
                collection.remove(name)
                removed += 1
            except XmlDbError:
                continue
        return msg.RemoveDocumentsResponse(removed=removed)

    def _handle_list_documents(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.ListDocumentsResponse:
        request = msg.ListDocumentsRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        collection = binding.resource.collection
        return msg.ListDocumentsResponse(
            names=collection.document_names(),
            subcollections=collection.child_names(),
        )

    def _handle_create_subcollection(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.CreateSubcollectionResponse:
        request = msg.CreateSubcollectionRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        parent: XMLCollectionResource = binding.resource
        try:
            child = parent.collection.create_child(request.collection_name)
        except XmlDbError as exc:
            raise InvalidExpressionFault(str(exc)) from exc
        derived = XMLCollectionResource(
            mint_abstract_name("xmlcollection"),
            child,
            namespaces=parent._namespaces,
        )
        derived.parent = parent.abstract_name
        self.add_resource(derived, binding.configurable.copy())
        return msg.CreateSubcollectionResponse(
            address=self.epr_for(derived.abstract_name),
            abstract_name=derived.abstract_name,
        )

    def _handle_remove_subcollection(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.RemoveSubcollectionResponse:
        request = msg.RemoveSubcollectionRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        collection = binding.resource.collection
        try:
            removed = collection.remove_child(request.collection_name)
        except XmlDbError as exc:
            raise InvalidExpressionFault(str(exc)) from exc
        # Destroy any binding this service holds for the removed subtree.
        for name in list(self.resource_names()):
            other = self.binding(name).resource
            if (
                isinstance(other, XMLCollectionResource)
                and other.collection is removed
            ):
                self.destroy_resource(name)
        return msg.RemoveSubcollectionResponse(removed=request.collection_name)

    def _handle_get_collection_property_document(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetCollectionPropertyDocumentResponse:
        request = msg.GetCollectionPropertyDocumentRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        return msg.GetCollectionPropertyDocumentResponse(
            document=binding.property_document()
        )

    # -- query access ------------------------------------------------------

    def _handle_xpath_execute(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.XPathExecuteResponse:
        request = msg.XPathExecuteRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        items = binding.resource.xpath_execute(
            request.expression, request.document_name
        )
        return msg.XPathExecuteResponse(items=items)

    def _handle_xquery_execute(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.XQueryExecuteResponse:
        request = msg.XQueryExecuteRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        items = binding.resource.xquery_execute(
            request.expression, request.document_name
        )
        return msg.XQueryExecuteResponse(items=items)

    def _handle_xupdate_execute(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.XUpdateExecuteResponse:
        request = msg.XUpdateExecuteRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        if request.modifications is None:
            raise InvalidExpressionFault(
                "XUpdateExecute requires an xupdate:modifications element"
            )
        modified = binding.resource.xupdate_execute(
            request.modifications, request.document_name
        )
        return msg.XUpdateExecuteResponse(modified=modified)

    # -- factories ------------------------------------------------------------

    def _handle_xpath_factory(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.XPathExecuteFactoryResponse:
        request = msg.XPathExecuteFactoryRequest.from_xml(payload)
        return msg.XPathExecuteFactoryResponse(
            **self._run_factory(request, use_xquery=False)
        )

    def _handle_xquery_factory(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.XQueryExecuteFactoryResponse:
        request = msg.XQueryExecuteFactoryRequest.from_xml(payload)
        return msg.XQueryExecuteFactoryResponse(
            **self._run_factory(request, use_xquery=True)
        )

    def _run_factory(
        self, request: msg.XPathExecuteFactoryRequest, use_xquery: bool
    ) -> dict:
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        resource: XMLCollectionResource = binding.resource

        requested_pt = request.port_type_qname or XML_SEQUENCE_ACCESS_PT
        if requested_pt != XML_SEQUENCE_ACCESS_PT:
            raise InvalidPortTypeQNameFault(
                f"XML factories wire up {XML_SEQUENCE_ACCESS_PT.clark()}, "
                f"not {requested_pt.clark()}"
            )
        target = self.sequence_target
        if "sequence_access" not in target.port_types:
            raise InvalidPortTypeQNameFault(
                f"target service {target.name!r} lacks SequenceAccess"
            )

        configurable = binding.configurable.copy()
        if request.configuration_document is not None:
            configurable = configurable.apply_configuration_document(
                request.configuration_document
            )

        if request.execution_mode == MODE_ASYNCHRONOUS:
            if self.jobs is None:
                raise DataResourceUnavailableFault(
                    f"service {self.name!r} does not accept asynchronous "
                    "factory requests (no job queue attached)"
                )
            job = self.jobs.submit(
                self._xml_factory_kind(),
                {
                    "resource": str(request.abstract_name),
                    "expression": request.expression,
                    "document_name": request.document_name,
                    "use_xquery": use_xquery,
                    "configuration": serialize(request.configuration_document)
                    if request.configuration_document is not None
                    else "",
                },
            )
            return {"job_id": job.job_id}

        derived = self._materialize_sequence(
            binding,
            configurable,
            request.expression,
            request.document_name,
            use_xquery,
        )
        target.add_resource(derived, configurable)
        try:
            return {
                "address": target.epr_for(derived.abstract_name),
                "abstract_name": derived.abstract_name,
            }
        except BaseException:
            # A failure after the name was reserved must not leave the
            # registry entry dangling.
            target.destroy_resource(derived.abstract_name)
            raise

    def _materialize_sequence(
        self,
        binding: ResourceBinding,
        configurable,
        expression: str,
        document_name: Optional[str],
        use_xquery: bool,
    ) -> XMLSequenceResource:
        """Evaluate an XPath/XQuery factory expression into the derived
        sequence resource (not yet registered)."""
        from repro.core.properties import Sensitivity

        resource: XMLCollectionResource = binding.resource
        if use_xquery:
            items = resource.xquery_execute(expression, document_name)
        else:
            items = resource.xpath_execute(expression, document_name)
        return XMLSequenceResource(
            mint_abstract_name("xmlsequence"),
            resource,
            items,
            query=expression,
            use_xquery=use_xquery,
            document_name=document_name,
            sensitive=configurable.sensitivity is Sensitivity.SENSITIVE,
        )

    # -- asynchronous factory execution ------------------------------------

    def _xml_factory_kind(self) -> str:
        """Executor-registry key, service-scoped (see the WS-DAIR twin)."""
        return f"{self.name}:xml-factory"

    def enable_jobs(self, jobs, terminal_ttl: float | None = None) -> None:
        super().enable_jobs(jobs, terminal_ttl)
        if {"xpath_factory", "xquery_factory"} & self.port_types:
            jobs.register_executor(
                self._xml_factory_kind(),
                self._execute_xml_factory_job,
                rollback=self._rollback_xml_factory_job,
            )

    def _execute_xml_factory_job(self, job) -> dict:
        """Run one deferred XPath/XQuery factory request."""
        payload = job.payload
        binding = self._collection_binding(payload["resource"])
        binding.require_readable()
        configurable = binding.configurable.copy()
        if payload.get("configuration"):
            configurable = configurable.apply_configuration_document(
                parse(payload["configuration"])
            )
        derived = self._materialize_sequence(
            binding,
            configurable,
            payload["expression"],
            payload.get("document_name"),
            bool(payload.get("use_xquery")),
        )
        target = self.sequence_target
        target.add_resource(derived, configurable)
        return {
            "abstract_name": str(derived.abstract_name),
            "address": target.address,
        }

    def _rollback_xml_factory_job(self, job, result: dict) -> None:
        name = result.get("abstract_name")
        if name and self.sequence_target.has_resource(name):
            self.sequence_target.destroy_resource(name)

    # -- SequenceAccess -----------------------------------------------------------

    def _handle_get_items(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetItemsResponse:
        request = msg.GetItemsRequest.from_xml(payload)
        binding = self._sequence_binding(request.abstract_name)
        binding.require_readable()
        resource: XMLSequenceResource = binding.resource
        return msg.GetItemsResponse(
            items=resource.get_items(request.start_position, request.count),
            total_items=resource.item_count,
        )
