"""WS-DAIX: the XML realisation (paper §4 closing remarks and [WS-DAIX]).

Follows the same core principles as WS-DAIR (the paper: "The XML
extensions follow the same principles"):

* **XMLCollectionAccess** — document and subcollection management:
  ``AddDocuments``, ``GetDocuments``, ``RemoveDocuments``,
  ``ListDocuments``, ``CreateSubcollection``, ``RemoveSubcollection``,
  ``GetCollectionPropertyDocument``;
* **XPathAccess** — ``XPathExecute`` (direct access);
* **XQueryAccess** — ``XQueryExecute`` (direct access, FLWOR-lite);
* **XUpdateAccess** — ``XUpdateExecute`` (in-place modification);
* **XPath/XQueryFactory** — derive a service managed *sequence*
  resource from query results;
* **SequenceAccess** — ``GetItems`` paged retrieval over a derived
  sequence (the XML analogue of WS-DAIR's ``GetTuples``).
"""

from repro.daix.namespaces import WSDAIX_NS
from repro.daix.resources import XMLCollectionResource, XMLSequenceResource
from repro.daix.service import XMLRealisationService

__all__ = [
    "WSDAIX_NS",
    "XMLCollectionResource",
    "XMLSequenceResource",
    "XMLRealisationService",
]
