"""WS-DAIX message payloads.

Same construction as :mod:`repro.dair.messages`: each message extends
the core templates, carries the mandatory abstract name first, and
(de)serializes itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro.core.messages import (
    DaisMessage,
    DaisRequest,
    FactoryRequest,
    FactoryResponse,
)
from repro.daix.namespaces import WSDAIX_NS
from repro.xmlutil import E, QName, XmlElement


def _q(local: str) -> QName:
    return QName(WSDAIX_NS, local)


# ---------------------------------------------------------------------------
# XMLCollectionAccess
# ---------------------------------------------------------------------------


@dataclass
class AddDocumentsRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("AddDocumentsRequest")

    #: (document name, root element) pairs.
    documents: list[tuple[str, XmlElement]] = field(default_factory=list)
    replace: bool = False

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.set("replace", "true" if self.replace else "false")
        for name, content in self.documents:
            wrapper = E(_q("Document"))
            wrapper.set("name", name)
            wrapper.append(content.copy())
            root.append(wrapper)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        documents = []
        for wrapper in element.findall(_q("Document")):
            children = wrapper.element_children()
            if children:
                documents.append((wrapper.get("name", "") or "", children[0].copy()))
        return cls(
            abstract_name=cls._read_name(element),
            documents=documents,
            replace=element.get("replace") == "true",
        )


@dataclass
class AddDocumentsResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("AddDocumentsResponse")

    #: (document name, status) — status is "Added" or an error token.
    results: list[tuple[str, str]] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        for name, status in self.results:
            result = E(_q("Result"), status)
            result.set("name", name)
            root.append(result)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            results=[
                (r.get("name", "") or "", r.text)
                for r in element.findall(_q("Result"))
            ]
        )


@dataclass
class _NamesRequest(DaisRequest):
    """Shared shape: abstract name + list of document names."""

    names: list[str] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        root = self._root()
        for name in self.names:
            root.append(E(_q("DocumentName"), name))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            names=[c.text for c in element.findall(_q("DocumentName"))],
        )


@dataclass
class GetDocumentsRequest(_NamesRequest):
    TAG: ClassVar[QName] = _q("GetDocumentsRequest")


@dataclass
class GetDocumentsResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetDocumentsResponse")

    documents: list[tuple[str, XmlElement]] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        for name, content in self.documents:
            wrapper = E(_q("Document"))
            wrapper.set("name", name)
            wrapper.append(content.copy())
            root.append(wrapper)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        documents = []
        for wrapper in element.findall(_q("Document")):
            children = wrapper.element_children()
            if children:
                documents.append((wrapper.get("name", "") or "", children[0].copy()))
        return cls(documents=documents)


@dataclass
class RemoveDocumentsRequest(_NamesRequest):
    TAG: ClassVar[QName] = _q("RemoveDocumentsRequest")


@dataclass
class RemoveDocumentsResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("RemoveDocumentsResponse")

    removed: int = 0

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_q("Removed"), self.removed))

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(removed=int(element.findtext(_q("Removed"), "0") or "0"))


@dataclass
class ListDocumentsRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("ListDocumentsRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(abstract_name=cls._read_name(element))


@dataclass
class ListDocumentsResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("ListDocumentsResponse")

    names: list[str] = field(default_factory=list)
    subcollections: list[str] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        return E(
            self.TAG,
            [E(_q("DocumentName"), name) for name in self.names],
            [E(_q("SubcollectionName"), name) for name in self.subcollections],
        )

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            names=[c.text for c in element.findall(_q("DocumentName"))],
            subcollections=[
                c.text for c in element.findall(_q("SubcollectionName"))
            ],
        )


@dataclass
class CreateSubcollectionRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("CreateSubcollectionRequest")

    collection_name: str = ""

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("CollectionName"), self.collection_name))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            collection_name=element.findtext(_q("CollectionName"), "") or "",
        )


@dataclass
class CreateSubcollectionResponse(FactoryResponse):
    """The new subcollection is itself a data resource → factory shape."""

    TAG: ClassVar[QName] = _q("CreateSubcollectionResponse")


@dataclass
class RemoveSubcollectionRequest(CreateSubcollectionRequest):
    TAG: ClassVar[QName] = _q("RemoveSubcollectionRequest")


@dataclass
class RemoveSubcollectionResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("RemoveSubcollectionResponse")

    removed: str = ""

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_q("CollectionName"), self.removed))

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(removed=element.findtext(_q("CollectionName"), "") or "")


@dataclass
class GetCollectionPropertyDocumentRequest(ListDocumentsRequest):
    TAG: ClassVar[QName] = _q("GetCollectionPropertyDocumentRequest")


@dataclass
class GetCollectionPropertyDocumentResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetCollectionPropertyDocumentResponse")

    document: Optional[XmlElement] = None

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        if self.document is not None:
            root.append(self.document.copy())
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        children = element.element_children()
        return cls(document=children[0].copy() if children else None)


# ---------------------------------------------------------------------------
# XPath / XQuery / XUpdate access
# ---------------------------------------------------------------------------


@dataclass
class _ExpressionRequest(DaisRequest):
    """Shared shape: expression + optional single-document scope."""

    expression: str = ""
    document_name: Optional[str] = None

    EXPR_LOCAL: ClassVar[str] = "Expression"

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.document_name:
            root.append(E(_q("DocumentName"), self.document_name))
        root.append(E(_q(self.EXPR_LOCAL), self.expression))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            expression=element.findtext(_q(cls.EXPR_LOCAL), "") or "",
            document_name=element.findtext(_q("DocumentName")),
        )


@dataclass
class XPathExecuteRequest(_ExpressionRequest):
    TAG: ClassVar[QName] = _q("XPathExecuteRequest")
    EXPR_LOCAL: ClassVar[str] = "XPathExpression"


@dataclass
class XQueryExecuteRequest(_ExpressionRequest):
    TAG: ClassVar[QName] = _q("XQueryExecuteRequest")
    EXPR_LOCAL: ClassVar[str] = "XQueryExpression"


@dataclass
class ItemSequenceResponse(DaisMessage):
    """Shared response shape: a sequence of result items."""

    items: list[XmlElement] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        return E(self.TAG, [item.copy() for item in self.items])

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(items=[c.copy() for c in element.findall(_q("Item"))])


@dataclass
class XPathExecuteResponse(ItemSequenceResponse):
    TAG: ClassVar[QName] = _q("XPathExecuteResponse")


@dataclass
class XQueryExecuteResponse(ItemSequenceResponse):
    TAG: ClassVar[QName] = _q("XQueryExecuteResponse")


@dataclass
class XUpdateExecuteRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("XUpdateExecuteRequest")

    modifications: Optional[XmlElement] = None
    document_name: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.document_name:
            root.append(E(_q("DocumentName"), self.document_name))
        if self.modifications is not None:
            root.append(self.modifications.copy())
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        from repro.xmldb.xupdate import XUPDATE_NS

        modifications = element.find(QName(XUPDATE_NS, "modifications"))
        return cls(
            abstract_name=cls._read_name(element),
            modifications=modifications.copy()
            if modifications is not None
            else None,
            document_name=element.findtext(_q("DocumentName")),
        )


@dataclass
class XUpdateExecuteResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("XUpdateExecuteResponse")

    modified: int = 0

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_q("Modified"), self.modified))

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(modified=int(element.findtext(_q("Modified"), "0") or "0"))


# ---------------------------------------------------------------------------
# Factories + SequenceAccess
# ---------------------------------------------------------------------------


@dataclass
class XPathExecuteFactoryRequest(FactoryRequest):
    TAG: ClassVar[QName] = _q("XPathExecuteFactoryRequest")

    document_name: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = super().to_xml()
        if self.document_name:
            root.append(E(_q("DocumentName"), self.document_name))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        base = FactoryRequest.from_xml(element)
        return cls(
            abstract_name=base.abstract_name,
            port_type_qname=base.port_type_qname,
            configuration_document=base.configuration_document,
            expression=base.expression,
            language_uri=base.language_uri,
            parameters=base.parameters,
            execution_mode=base.execution_mode,
            document_name=element.findtext(_q("DocumentName")),
        )


@dataclass
class XQueryExecuteFactoryRequest(XPathExecuteFactoryRequest):
    TAG: ClassVar[QName] = _q("XQueryExecuteFactoryRequest")


@dataclass
class XPathExecuteFactoryResponse(FactoryResponse):
    TAG: ClassVar[QName] = _q("XPathExecuteFactoryResponse")


@dataclass
class XQueryExecuteFactoryResponse(FactoryResponse):
    TAG: ClassVar[QName] = _q("XQueryExecuteFactoryResponse")


@dataclass
class GetItemsRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetItemsRequest")

    start_position: int = 0
    count: int = 0

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("StartPosition"), self.start_position))
        root.append(E(_q("Count"), self.count))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            start_position=int(element.findtext(_q("StartPosition"), "0") or "0"),
            count=int(element.findtext(_q("Count"), "0") or "0"),
        )


@dataclass
class GetItemsResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetItemsResponse")

    items: list[XmlElement] = field(default_factory=list)
    total_items: int = 0

    def to_xml(self) -> XmlElement:
        return E(
            self.TAG,
            E(_q("TotalItems"), self.total_items),
            [item.copy() for item in self.items],
        )

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            items=[c.copy() for c in element.findall(_q("Item"))],
            total_items=int(element.findtext(_q("TotalItems"), "0") or "0"),
        )
