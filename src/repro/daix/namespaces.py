"""WS-DAIX wire namespace and port type QNames."""

from repro.xmlutil import QName
from repro.xmlutil.names import DEFAULT_REGISTRY

#: The WS-DAIX 1.0 namespace (GGF DAIS-WG, 2005 drafts).
WSDAIX_NS = "http://www.ggf.org/namespaces/2005/05/WS-DAIX"

DEFAULT_REGISTRY.register("wsdaix", WSDAIX_NS)

XML_COLLECTION_ACCESS_PT = QName(WSDAIX_NS, "XMLCollectionAccessPT")
XPATH_ACCESS_PT = QName(WSDAIX_NS, "XPathAccessPT")
XQUERY_ACCESS_PT = QName(WSDAIX_NS, "XQueryAccessPT")
XUPDATE_ACCESS_PT = QName(WSDAIX_NS, "XUpdateAccessPT")
XML_SEQUENCE_ACCESS_PT = QName(WSDAIX_NS, "XMLSequenceAccessPT")
