"""WS-DAIX data resources.

* :class:`XMLCollectionResource` — an externally managed XML collection
  (a node of a :class:`~repro.xmldb.collection.CollectionManager` tree);
* :class:`XMLSequenceResource` — a service managed, pageable sequence of
  result items derived by an XPath/XQuery factory.
"""

from __future__ import annotations

from repro.core.faults import (
    DataResourceUnavailableFault,
    InvalidExpressionFault,
)
from repro.core.names import AbstractName
from repro.core.namespaces import (
    XPATH_LANGUAGE_URI,
    XQUERY_LANGUAGE_URI,
)
from repro.core.properties import (
    ConfigurableProperties,
    CorePropertyDocument,
    DataResourceManagement,
    DatasetMapEntry,
)
from repro.core.resource import DataResource
from repro.daix.namespaces import WSDAIX_NS
from repro.xmldb import (
    Collection,
    XmlDbError,
    XQueryEngine,
    XQueryError,
    XUpdateProcessor,
)
from repro.xmlutil import E, QName, XmlElement
from repro.xmlutil.tree import Text
from repro.xpath import AttributeNode, XPathEngine, XPathError
from repro.xpath.functions import format_number


def _q(local: str) -> QName:
    return QName(WSDAIX_NS, local)


#: Dataset format URI for item sequences (the only one WS-DAIX needs here).
XML_SEQUENCE_FORMAT_URI = f"{WSDAIX_NS}/ItemSequence"


def value_to_items(value) -> list[XmlElement]:
    """Render an XPath/XQuery result as a list of ``Item`` elements.

    Elements are embedded whole; attributes, text nodes and atomic
    values become text items — the WS-DAIX item-sequence convention.
    """
    values = value if isinstance(value, list) else [value]
    items: list[XmlElement] = []
    for entry in values:
        item = E(_q("Item"))
        if isinstance(entry, XmlElement):
            item.append(entry.copy())
        elif isinstance(entry, AttributeNode):
            item.set("name", entry.name.clark())
            item.append(Text(entry.value))
        elif isinstance(entry, Text):
            item.append(Text(entry.value))
        elif isinstance(entry, bool):
            item.append(Text("true" if entry else "false"))
        elif isinstance(entry, float):
            item.append(Text(format_number(entry)))
        else:
            item.append(Text(str(entry)))
        items.append(item)
    return items


class XMLCollectionResource(DataResource):
    """An externally managed XML collection behind a data service."""

    def __init__(
        self,
        abstract_name: AbstractName,
        collection: Collection,
        namespaces: dict[str, str] | None = None,
    ) -> None:
        super().__init__(
            abstract_name, DataResourceManagement.EXTERNALLY_MANAGED
        )
        self.collection = collection
        self._namespaces = dict(namespaces or {})
        self._xpath = XPathEngine(namespaces=self._namespaces)
        self._xquery = XQueryEngine(namespaces=self._namespaces)
        self._xupdate = XUpdateProcessor(namespaces=self._namespaces)

    # -- query execution ------------------------------------------------------

    def xpath_execute(
        self, expression: str, document_name: str | None = None
    ) -> list[XmlElement]:
        """Evaluate XPath over one document or every document in turn."""
        try:
            results: list[XmlElement] = []
            for document in self._documents(document_name):
                value = self._xpath.evaluate(expression, document.root)
                results.extend(value_to_items(value))
            return results
        except XPathError as exc:
            raise InvalidExpressionFault(f"XPath error: {exc}") from exc

    def xquery_execute(
        self, query: str, document_name: str | None = None
    ) -> list[XmlElement]:
        """Evaluate an XQuery (FLWOR-lite) over the collection.

        The outermost ``for`` ranges across every document, so ``where``
        and ``order by`` apply globally (collection semantics).
        """
        try:
            roots = [d.root for d in self._documents(document_name)]
            value = self._xquery.execute(query, roots)
            return value_to_items(value)
        except XQueryError as exc:
            raise InvalidExpressionFault(f"XQuery error: {exc}") from exc

    def xupdate_execute(
        self, modifications: XmlElement, document_name: str | None = None
    ) -> int:
        """Apply XUpdate modifications; returns total nodes modified."""
        try:
            total = 0
            for document in self._documents(document_name):
                total += self._xupdate.apply(modifications, document.root)
            return total
        except XmlDbError as exc:
            raise InvalidExpressionFault(f"XUpdate error: {exc}") from exc

    def _documents(self, document_name: str | None):
        if document_name:
            return [self.collection.get(document_name)]
        return self.collection.documents()

    # -- generic query (core spec) ----------------------------------------------

    def generic_query_languages(self) -> list[str]:
        return [XPATH_LANGUAGE_URI, XQUERY_LANGUAGE_URI]

    def generic_query(
        self, language_uri: str, expression: str, parameters: list[str]
    ) -> list[XmlElement]:
        if language_uri == XPATH_LANGUAGE_URI:
            return self.xpath_execute(expression)
        return self.xquery_execute(expression)

    # -- property document -------------------------------------------------------

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        document = CorePropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            dataset_maps=[
                DatasetMapEntry(_q("XPathExecuteRequest"), XML_SEQUENCE_FORMAT_URI),
                DatasetMapEntry(_q("XQueryExecuteRequest"), XML_SEQUENCE_FORMAT_URI),
            ],
            # LanguageMap advertises exactly what GenericQuery accepts;
            # XUpdate rides its own operation, not the generic interface.
            languages=[XPATH_LANGUAGE_URI, XQUERY_LANGUAGE_URI],
            configurable=configurable,
        )
        document.ROOT_LOCAL = "XMLCollectionPropertyDocument"
        document.ROOT_NS = WSDAIX_NS
        return document


class XMLSequenceResource(DataResource):
    """A derived, pageable sequence of query result items.

    Like WS-DAIR responses, a sequence honours the ``Sensitivity``
    property: an *insensitive* sequence (the default) snapshots its items
    at creation; a *sensitive* one re-runs the stored query against the
    parent collection on every access.
    """

    def __init__(
        self,
        abstract_name: AbstractName,
        parent: XMLCollectionResource,
        items: list[XmlElement],
        query: str | None = None,
        use_xquery: bool = False,
        document_name: str | None = None,
        sensitive: bool = False,
    ) -> None:
        super().__init__(
            abstract_name,
            DataResourceManagement.SERVICE_MANAGED,
            parent=parent.abstract_name,
        )
        self._parent_resource = parent
        self._items = [item.copy() for item in items]
        self._query = query
        self._use_xquery = use_xquery
        self._document_name = document_name
        self._sensitive = sensitive and query is not None
        self._destroyed = False

    def items(self) -> list[XmlElement]:
        if self._destroyed:
            raise DataResourceUnavailableFault(
                f"sequence {self.abstract_name} has been destroyed"
            )
        if self._sensitive:
            if self._use_xquery:
                return self._parent_resource.xquery_execute(
                    self._query, self._document_name
                )
            return self._parent_resource.xpath_execute(
                self._query, self._document_name
            )
        return self._items

    def get_items(self, start: int, count: int) -> list[XmlElement]:
        if start < 0 or count < 0:
            raise InvalidExpressionFault(
                "GetItems start/count must be non-negative"
            )
        return [item.copy() for item in self.items()[start : start + count]]

    @property
    def item_count(self) -> int:
        return len(self.items())

    def on_destroy(self) -> None:
        super().on_destroy()
        self._items = []
        self._destroyed = True

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        document = CorePropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            dataset_maps=[
                DatasetMapEntry(_q("GetItemsRequest"), XML_SEQUENCE_FORMAT_URI)
            ],
            configurable=configurable,
        )
        document.ROOT_LOCAL = "XMLSequencePropertyDocument"
        document.ROOT_NS = WSDAIX_NS
        return document
