"""A real SOAP-over-HTTP binding on localhost.

``DaisHttpServer`` serves every service in a registry from one port —
the request path selects the service (its address is
``http://host:port/<name>``).  ``HttpTransport`` is the matching client
side.  Used by the examples and a handful of integration tests; the
loopback transport remains the default elsewhere.

Per SOAP 1.1 over HTTP, every response carrying a ``soapenv:Fault`` is
sent with status 500; transport-level problems (unparseable envelope,
unknown service path) are wrapped into proper SOAP fault envelopes
rather than ad-hoc error bodies, so consumers always get something
:meth:`~repro.soap.envelope.Envelope.raise_if_fault` understands.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.registry import ServiceRegistry
from repro.obs import MetricsRegistry, get_tracer
from repro.soap.addressing import MessageHeaders
from repro.soap.envelope import Envelope, fault_envelope
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.namespaces import SOAP_ENV_NS
from repro.transport.wire import CallRecord, NetworkModel, WireStats


def _transport_fault_headers(path: str) -> MessageHeaders:
    """Synthetic request headers for faults raised before the envelope
    could be parsed (there is nothing to correlate the reply to)."""
    return MessageHeaders(to=path, action=f"{SOAP_ENV_NS}/fault")


class DaisHttpServer:
    """Serves a :class:`ServiceRegistry` over HTTP on 127.0.0.1."""

    def __init__(self, registry: ServiceRegistry, port: int = 0) -> None:
        self._registry = registry
        #: Server-side wire metrics across every service on this port.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "http.server.requests", "POSTs served per status code"
        )
        self._request_bytes = self.metrics.counter(
            "http.server.request.bytes", "request body bytes received"
        )
        self._response_bytes = self.metrics.counter(
            "http.server.response.bytes", "response body bytes sent"
        )

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_POST(self) -> None:  # noqa: N802 - stdlib API
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                with get_tracer().span(
                    "http.server.request", path=self.path
                ) as span:
                    response, status = outer._handle(self.path, body)
                    payload = response.to_bytes()
                    span.set_attributes(
                        status=status,
                        request_bytes=len(body),
                        response_bytes=len(payload),
                    )
                    if status != 200:
                        span.mark_fault()
                outer._requests.inc(status=str(status))
                outer._request_bytes.inc(len(body))
                outer._response_bytes.inc(len(payload))
                self.send_response(status)
                self.send_header("Content-Type", "text/xml; charset=utf-8")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._thread: threading.Thread | None = None

    def _handle(self, path: str, body: bytes) -> tuple[Envelope, int]:
        """Turn one POST body into (response envelope, HTTP status).

        Always produces a SOAP envelope: malformed requests and unknown
        paths become client fault envelopes, and any fault response —
        including ones a service's dispatch produced — goes out as 500
        per the SOAP 1.1 HTTP binding.
        """
        try:
            request = Envelope.from_bytes(body)
        except Exception as exc:
            fault = SoapFault(
                FaultCode.CLIENT, f"malformed request envelope: {exc}"
            )
            return fault_envelope(_transport_fault_headers(path), fault), 500
        try:
            service = self._registry.service_at(self.address_for_path(path))
        except LookupError as exc:
            return (
                fault_envelope(
                    request.headers, SoapFault(FaultCode.CLIENT, str(exc))
                ),
                500,
            )
        response = service.dispatch(request)
        return response, (500 if response.is_fault() else 200)

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def address_for_path(self, path: str) -> str:
        return f"{self.base_url}{path}"

    def url_for(self, service_path: str) -> str:
        """The address a service should be constructed with, e.g.
        ``server.url_for('/relational')``."""
        if not service_path.startswith("/"):
            service_path = "/" + service_path
        return f"{self.base_url}{service_path}"

    def start(self) -> "DaisHttpServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DaisHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HttpTransport:
    """Client side: POST envelopes to service URLs."""

    def __init__(self, network: NetworkModel | None = None, timeout: float = 10.0) -> None:
        self._network = network if network is not None else NetworkModel()
        self._timeout = timeout
        self.stats = WireStats()
        #: Client-side metrics: request counts and wire bytes per action.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "rpc.client.requests", "requests sent per wsa:Action"
        )
        self._request_bytes = self.metrics.counter(
            "rpc.client.request.bytes", "request bytes per wsa:Action"
        )
        self._response_bytes = self.metrics.counter(
            "rpc.client.response.bytes", "response bytes per wsa:Action"
        )
        self._faults = self.metrics.counter(
            "rpc.client.faults", "fault responses per wsa:Action"
        )

    def send(self, address: str, request: Envelope) -> Envelope:
        action = request.headers.action
        with get_tracer().span(
            "rpc.send", transport="http", address=address, action=action
        ) as span:
            request_bytes = request.to_bytes()
            http_request = urllib.request.Request(
                address,
                data=request_bytes,
                headers={
                    "Content-Type": "text/xml; charset=utf-8",
                    "SOAPAction": action,
                },
                method="POST",
            )
            try:
                with urllib.request.urlopen(
                    http_request, timeout=self._timeout
                ) as reply:
                    response_bytes = reply.read()
            except urllib.error.HTTPError as err:
                # SOAP 1.1: fault envelopes arrive with status 500 — the
                # body is still a SOAP message, so read it and carry on.
                response_bytes = err.read()
            modeled = self._network.transfer_time(
                len(request_bytes)
            ) + self._network.transfer_time(len(response_bytes))
            response = Envelope.from_bytes(response_bytes)
            self._requests.inc(action=action)
            self._request_bytes.inc(len(request_bytes), action=action)
            self._response_bytes.inc(len(response_bytes), action=action)
            if response.is_fault():
                self._faults.inc(action=action)
                span.mark_fault()
            span.set_attributes(
                request_bytes=len(request_bytes),
                response_bytes=len(response_bytes),
                modeled_seconds=modeled,
            )
            self.stats.record(
                CallRecord(
                    address=address,
                    action=action,
                    request_bytes=len(request_bytes),
                    response_bytes=len(response_bytes),
                    modeled_seconds=modeled,
                )
            )
            return response
