"""A real SOAP-over-HTTP binding on localhost.

``DaisHttpServer`` serves every service in a registry from one port —
the request path selects the service (its address is
``http://host:port/<name>``).  ``HttpTransport`` is the matching client
side.  Used by the examples and a handful of integration tests; the
loopback transport remains the default elsewhere.

The server front end is an **event-loop core**
(:class:`~repro.transport.eventloop.EventLoopCore`): one selector
thread multiplexes every keep-alive connection, parses requests
incrementally, reaps slow-loris senders on a read deadline, and feeds
complete requests through **admission control** — a bounded dispatch
queue with depth and queued-wait limits — into a bounded worker pool.
Overload is a first-class protocol outcome: a refused request is
answered with a wire-correct 503 carrying a SOAP ``ServiceBusyFault``
envelope, which the resilience layer already classifies as retryable
(the IVOA DALI service-busy convention).  ``GET /healthz`` and
``GET /metrics`` are served on the loop thread itself, bypassing the
queue, so probes survive saturation.

Per SOAP 1.1 over HTTP, every response carrying a ``soapenv:Fault`` is
sent with status 500; transport-level problems (unparseable envelope,
unknown service path) are wrapped into proper SOAP fault envelopes
rather than ad-hoc error bodies, so consumers always get something
:meth:`~repro.soap.envelope.Envelope.raise_if_fault` understands.
Shed responses use 503 to distinguish overload from application faults
on the wire, but still carry a parseable fault envelope.

Besides the SOAP POST endpoint, the server exposes three read-only GET
endpoints for operators:

* ``GET /metrics`` — Prometheus text exposition of the server's and
  every registered service's metrics registry;
* ``GET /healthz`` — liveness plus service inventory, as JSON;
* ``GET /trace/<trace_id>`` — the named trace's spans as JSON, when an
  in-memory exporter is installed on the global tracer.
"""

from __future__ import annotations

import http.client
import itertools
import json
import time
from urllib.parse import urlsplit

from repro.core.faults import ServiceBusyFault, ServiceNotFoundFault, TransportFault
from repro.resilience import coerce_resilience
from repro.core.registry import ServiceRegistry
from repro.obs import MetricsRegistry, current_span, get_tracer
from repro.obs.exporters import span_to_dict
from repro.obs.exposition import prometheus_text
from repro.obs.journal import get_journal
from repro.soap.addressing import MessageHeaders
from repro.soap.envelope import Envelope, fault_envelope
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.namespaces import SOAP_ENV_NS
from repro.soap.tracecontext import adopt_current_span, extract_context, inject
from repro.transport.eventloop import (
    SHED_DEADLINE,
    SHED_FULL,
    Connection,
    EventLoopCore,
)
from repro.transport.compression import (
    GZIP_FLOOR_BYTES,
    accepts_gzip,
    gunzip,
    gzip_compress,
    gzip_stream,
)
from repro.transport.http11 import (
    ParsedRequest,
    TERMINAL_CHUNK,
    chunk,
    render_headers,
    render_response,
)
from repro.transport.pool import HttpConnectionPool
from repro.transport.wire import CallRecord, NetworkModel, WireStats


def _transport_fault_headers(path: str) -> MessageHeaders:
    """Synthetic request headers for faults raised before the envelope
    could be parsed (there is nothing to correlate the reply to)."""
    return MessageHeaders(to=path, action=f"{SOAP_ENV_NS}/fault")


def _looks_like_soap(body: bytes) -> bool:
    """Cheap sniff: could *body* plausibly be an XML envelope?"""
    return bool(body) and body.lstrip()[:1] == b"<"


class DaisHttpServer:
    """Serves a :class:`ServiceRegistry` over HTTP on 127.0.0.1.

    *fault_plan* (a :class:`repro.faultinject.FaultPlan`) arms the
    handler path itself: matching POSTs are delayed, answered with a
    bare 503/500, a SOAP ``ServiceBusyFault``, or dropped outright
    before the registry ever sees them — real sockets, injected chaos.

    Admission-control knobs (all keyword-only):

    *workers*
        Bounded handler pool size — the maximum number of requests in
        service at once, regardless of connection count.
    *queue_depth*
        Dispatch queue bound.  A complete request arriving while the
        queue is full is *shed*: answered immediately with a retryable
        ``ServiceBusyFault`` (HTTP 503), never buffered without bound.
    *queue_deadline*
        Maximum queued wait in seconds (None disables).  A request a
        worker dequeues later than this is shed rather than served —
        the client has likely given up; serving it wastes a worker.
    *read_deadline*
        Seconds a partially-received request may dribble in before the
        connection is reaped (the slow-loris guard).  Applies per
        request, not per byte — workers never block on request reads.
    *idle_timeout*
        Seconds an idle keep-alive connection is retained.
    *write_timeout*
        Socket timeout for worker response writes (a consumer that
        stops reading mid-response cannot pin a worker forever).
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        port: int = 0,
        fault_plan=None,
        *,
        workers: int = 8,
        queue_depth: int = 64,
        queue_deadline: float | None = 5.0,
        read_deadline: float = 10.0,
        idle_timeout: float = 30.0,
        write_timeout: float = 30.0,
    ) -> None:
        self._registry = registry
        #: Server-side fault injection plan (settable at any time).
        self.fault_plan = fault_plan
        #: Server-side wire metrics across every service on this port.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "http.server.requests", "POSTs served per status code"
        )
        self._request_bytes = self.metrics.counter(
            "http.server.request.bytes", "request body bytes received"
        )
        self._response_bytes = self.metrics.counter(
            "http.server.response.bytes", "response body bytes sent"
        )
        self._chunks = self.metrics.counter(
            "http.server.chunks", "HTTP chunks written for streamed responses"
        )
        self._errors = self.metrics.counter(
            "http.server.errors",
            "exceptions caught at server boundaries, by where they surfaced",
        )
        # Wire-truth byte counters: `out` counts bytes as actually sent
        # (post-compression), so the fig-4 bytes gate and operators see
        # what the network sees, not the logical payload size.
        self._bytes_in = self.metrics.counter(
            "http.bytes.in", "request body bytes received on the wire"
        )
        self._bytes_out = self.metrics.counter(
            "http.bytes.out", "response body bytes sent on the wire"
        )
        #: Negotiated response compression (Accept-Encoding: gzip); off
        #: reproduces the uncompressed wire for benchmarks.
        self.compression = True
        self._core = EventLoopCore(
            "127.0.0.1",
            port,
            app=self,
            metrics=self.metrics,
            workers=workers,
            queue_depth=queue_depth,
            queue_deadline=queue_deadline,
            read_deadline=read_deadline,
            idle_timeout=idle_timeout,
            write_timeout=write_timeout,
        )

    # -- event-loop app protocol (loop thread) ---------------------------------

    def fast_response(self, request: ParsedRequest) -> bytes | None:
        """Loop-thread fast path: answer GETs (and refuse unknown
        methods) without touching the dispatch queue.  POSTs return
        None — they go through admission."""
        if request.method == "POST":
            return None
        if request.method != "GET":
            return render_response(
                501,
                "text/plain; charset=utf-8",
                f"unsupported method {request.method}".encode("utf-8"),
                keep_alive=False,
            )
        # Operators always get an HTTP response: a registry mutating
        # mid-render (service unregistered between listing and lookup)
        # becomes a JSON 500, not a dropped connection.
        try:
            status, content_type, payload = self._handle_get(request.target)
        except Exception as exc:  # noqa: BLE001 - operator boundary
            # Swallowed into a JSON 500 for the caller, but never
            # silently: counted and attached to whatever span is open.
            self._errors.inc(where="get")
            current_span().record_exception(exc)
            status = 500
            content_type = "application/json; charset=utf-8"
            payload = json.dumps(
                {"error": f"internal error: {exc}"}
            ).encode("utf-8")
        return render_response(
            status, content_type, payload, keep_alive=request.keep_alive
        )

    def render_shed(
        self, request: ParsedRequest, reason: str, depth: int
    ) -> bytes:
        """A complete 503 + ``ServiceBusyFault`` response for a request
        refused at admission (loop thread — must not block)."""
        with get_tracer().span(
            "http.server.admission",
            path=request.target,
            decision="shed",
            reason=reason,
            depth=depth,
        ) as span:
            span.mark_fault()
        return self._shed_payload(request, reason)

    # -- event-loop app protocol (worker threads) ------------------------------

    def on_shed(
        self, conn: Connection, request: ParsedRequest, core, waited: float
    ) -> None:
        """A request dequeued past the admission deadline: shed it now
        rather than serve a caller that has likely timed out."""
        with get_tracer().span(
            "http.server.admission",
            path=request.target,
            decision="shed",
            reason=SHED_DEADLINE,
            waited_seconds=round(waited, 4),
        ) as span:
            span.mark_fault()
        self._write(conn, core, self._shed_payload(request, SHED_DEADLINE),
                    keep_alive=request.keep_alive)

    def on_request(
        self, conn: Connection, request: ParsedRequest, core, waited: float
    ) -> None:
        """Serve one admitted POST on a worker thread."""
        body = request.body
        self._request_bytes.inc(len(body))
        self._bytes_in.inc(len(body))
        if not self._apply_fault_plan(conn, request, core):
            return
        gzip_ok = self.compression and accepts_gzip(request.headers)
        # The admitted decision rides the request span itself (a
        # separate admission span would be a second root and fragment
        # the consumer's trace — only *shed* decisions, which never
        # open a request span, get standalone admission spans).
        with get_tracer().span(
            "http.server.request", path=request.target
        ) as span:
            response, status = self._handle(request.target, body)
            streamed = status == 200 and response.is_streaming()
            payload = None if streamed else response.to_bytes()
            span.set_attributes(
                status=status,
                request_bytes=len(body),
                streamed=streamed,
                admission="admitted",
                queue_waited_seconds=round(waited, 6),
            )
            if payload is not None:
                span.set_attribute("response_bytes", len(payload))
            if status != 200:
                span.mark_fault()
        self._requests.inc(status=str(status))
        if streamed:
            # The lazy payload renders while it is written out; the
            # span above already closed, but exporters hold the span
            # object, so the byte count (known only once the stream
            # drained) still lands on it.
            try:
                sent = self._send_chunked(conn, response, compress=gzip_ok)
            except (ConnectionError, BrokenPipeError, TimeoutError, OSError):
                core.close(conn)
                return
            except Exception as exc:
                # The 200 status line is long gone, so a mid-stream
                # producer failure cannot become a SOAP fault;
                # withholding the terminal chunk makes the consumer see
                # an incomplete transfer instead of a truncated-but-
                # parseable body.  The exception itself must not vanish
                # with the connection: count it and pin it to the
                # request span (exporters still hold the span object).
                core.close(conn)
                self._errors.inc(where="stream")
                span.record_exception(exc)
                return
            if span.recording:
                span.set_attribute("response_bytes", sent)
            core.finish(conn, keep_alive=request.keep_alive)
            return
        # Content negotiation: above the floor, a willing client gets
        # the body gzip-encoded.  Content-Length frames the *encoded*
        # bytes, so keep-alive framing is untouched.
        extra_headers = None
        if gzip_ok and len(payload) >= GZIP_FLOOR_BYTES:
            payload = gzip_compress(payload)
            extra_headers = [("Content-Encoding", "gzip")]
            if span.recording:
                span.set_attribute("response_bytes", len(payload))
        self._response_bytes.inc(len(payload))
        self._bytes_out.inc(len(payload))
        self._write(
            conn,
            core,
            render_response(
                status,
                "text/xml; charset=utf-8",
                payload,
                keep_alive=request.keep_alive,
                extra_headers=extra_headers,
            ),
            keep_alive=request.keep_alive,
        )

    # -- request handling ------------------------------------------------------

    def _handle(self, path: str, body: bytes) -> tuple[Envelope, int]:
        """Turn one POST body into (response envelope, HTTP status).

        Always produces a SOAP envelope: malformed requests and unknown
        paths become client fault envelopes, and any fault response —
        including ones a service's dispatch produced — goes out as 500
        per the SOAP 1.1 HTTP binding.
        """
        try:
            request = Envelope.from_bytes(body)
        except Exception as exc:
            self._errors.inc(where="parse")
            current_span().record_exception(exc)
            fault = SoapFault(
                FaultCode.CLIENT, f"malformed request envelope: {exc}"
            )
            return fault_envelope(_transport_fault_headers(path), fault), 500
        # Join the remote caller's trace before any further span opens:
        # the worker's span stack is empty between requests, so the open
        # http.server.request span is a root and adopts the
        # obs:TraceContext header.
        adopt_current_span(
            extract_context(request.headers.reference_parameters)
        )
        try:
            service = self._registry.service_at(self.address_for_path(path))
        except LookupError as exc:
            return (
                fault_envelope(request.headers, ServiceNotFoundFault(str(exc))),
                500,
            )
        response = service.dispatch(request)
        return response, (500 if response.is_fault() else 200)

    def _shed_payload(self, request: ParsedRequest, reason: str) -> bytes:
        """Render the wire bytes of one shed decision: HTTP 503 carrying
        a SOAP ``ServiceBusyFault`` the resilience layer retries."""
        fault = ServiceBusyFault(
            f"server overloaded: request shed at admission ({reason})"
        )
        payload = fault_envelope(
            _transport_fault_headers(request.target), fault
        ).to_bytes()
        self._requests.inc(status="503")
        self._response_bytes.inc(len(payload))
        return render_response(
            503,
            "text/xml; charset=utf-8",
            payload,
            keep_alive=request.keep_alive,
        )

    def _apply_fault_plan(
        self, conn: Connection, request: ParsedRequest, core
    ) -> bool:
        """Apply the armed fault plan to one POST (worker thread).

        Returns True when normal handling should proceed; False when the
        injection already answered (or deliberately dropped) the request.
        """
        plan = self.fault_plan
        if plan is None:
            return True
        from repro.faultinject.actions import (
            Busy,
            ConnectionRefused,
            DropResponse,
            ExpireResource,
            HttpStatus,
            Latency,
        )

        action = plan.decide(request.target, "http.server.request")
        if action is None:
            return True
        if isinstance(action, Latency):
            time.sleep(action.seconds)
            return True
        if isinstance(action, (ConnectionRefused, DropResponse)):
            # Vanish: close the socket without an HTTP response — the
            # client observes a reset/empty reply.  Still a served POST
            # as far as the operator's counters are concerned.
            self._requests.inc(status="dropped")
            core.close(conn)
            return False
        if isinstance(action, HttpStatus):
            payload = b"injected fault: service unavailable"
            self._respond_injected(
                conn, core, request, action.status,
                "text/plain; charset=utf-8", payload,
            )
            return False
        if isinstance(action, (Busy, ExpireResource)):
            if isinstance(action, Busy):
                fault = ServiceBusyFault("service is busy [injected]")
            else:
                from repro.wsrf.faults import ResourceUnknownFault

                fault = ResourceUnknownFault(
                    "resource lifetime expired [injected]"
                )
            payload = fault_envelope(
                _transport_fault_headers(request.target), fault
            ).to_bytes()
            self._respond_injected(
                conn, core, request, 500, "text/xml; charset=utf-8", payload
            )
            return False
        raise TypeError(f"unknown fault action {type(action).__name__}")

    def _respond_injected(
        self,
        conn: Connection,
        core,
        request: ParsedRequest,
        status: int,
        content_type: str,
        payload: bytes,
    ) -> None:
        """Send an injected response *through the metrics*: chaos traffic
        must show up in ``http.server.requests`` / ``response.bytes``
        exactly like organically served POSTs."""
        self._requests.inc(status=str(status))
        self._response_bytes.inc(len(payload))
        self._write(
            conn,
            core,
            render_response(
                status, content_type, payload, keep_alive=request.keep_alive
            ),
            keep_alive=request.keep_alive,
        )

    def _write(
        self, conn: Connection, core, payload: bytes, keep_alive: bool
    ) -> None:
        """Blocking worker-side response write (under the write timeout),
        then hand the connection back to the loop or close it."""
        try:
            conn.sock.sendall(payload)
        except (OSError, TimeoutError):
            core.close(conn)
            return
        core.finish(conn, keep_alive=keep_alive)

    #: Serializer fragments are coalesced to about this many bytes per
    #: HTTP chunk — per-row fragments are tiny, and framing each one
    #: separately would pay ~7 bytes and a syscall per row.
    CHUNK_COALESCE_BYTES = 8192

    def _send_chunked(
        self, conn: Connection, response: Envelope, compress: bool = False
    ) -> int:
        """Stream one response envelope as ``Transfer-Encoding: chunked``.

        Returns the total body bytes sent on the wire (sum of chunk
        payloads — post-compression, not counting chunk framing).  Rows
        are pulled from the lazy dataset as the serializer is drained,
        so peak memory stays at one coalescing buffer regardless of
        result size.

        With *compress*, the first fragments are held back until the
        size floor is reached — a stream that ends below it goes out
        uncompressed, exactly like a small eager body — and only then
        are the response headers (with ``Content-Encoding: gzip``)
        committed.  Chunk framing wraps the *compressed* byte stream,
        so the client's chunked decoder is oblivious.
        """
        sock = conn.sock
        fragments = response.iter_bytes()
        if compress:
            head: list[bytes] = []
            head_bytes = 0
            for fragment in fragments:
                head.append(fragment)
                head_bytes += len(fragment)
                if head_bytes >= GZIP_FLOOR_BYTES:
                    break
            else:
                compress = False
                fragments = iter(head)
            if compress:
                fragments = gzip_stream(itertools.chain(head, fragments))
        headers = [
            ("Content-Type", "text/xml; charset=utf-8"),
            ("Transfer-Encoding", "chunked"),
        ]
        if compress:
            headers.append(("Content-Encoding", "gzip"))
        sock.sendall(render_headers(200, headers))
        sent = 0
        buffer = bytearray()

        def flush() -> None:
            nonlocal sent
            if not buffer:
                return
            sock.sendall(chunk(bytes(buffer)))
            self._chunks.inc()
            self._response_bytes.inc(len(buffer))
            self._bytes_out.inc(len(buffer))
            sent += len(buffer)
            buffer.clear()

        for fragment in fragments:
            buffer.extend(fragment)
            if len(buffer) >= self.CHUNK_COALESCE_BYTES:
                flush()
        flush()
        sock.sendall(TERMINAL_CHUNK)
        return sent

    # -- read-only exposition endpoints ---------------------------------------

    def _handle_get(self, path: str) -> tuple[int, str, bytes]:
        """Serve one GET: /metrics, /healthz or /trace/<trace_id>."""
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4; charset=utf-8", (
                self.metrics_exposition().encode("utf-8")
            )
        if path == "/healthz":
            # services() is an atomic snapshot: a concurrent unregister
            # between listing and lookup cannot make health checks fail.
            body = json.dumps(
                {
                    "status": "ok",
                    "services": [
                        service.name for service in self._registry.services()
                    ],
                    "tracing": get_tracer().enabled,
                },
                sort_keys=True,
            )
            return 200, "application/json; charset=utf-8", body.encode("utf-8")
        if path.startswith("/trace/"):
            trace_id = path[len("/trace/") :]
            exporter = get_tracer().exporter
            spans = None
            if exporter is not None and hasattr(exporter, "trace"):
                spans = exporter.trace(trace_id)
            if not spans:
                body = json.dumps({"error": f"unknown trace {trace_id!r}"})
                return 404, "application/json; charset=utf-8", body.encode(
                    "utf-8"
                )
            body = json.dumps(
                {
                    "trace_id": trace_id,
                    "spans": [span_to_dict(span) for span in spans],
                },
                default=str,
            )
            return 200, "application/json; charset=utf-8", body.encode("utf-8")
        body = json.dumps({"error": f"no such endpoint {path!r}"})
        return 404, "application/json; charset=utf-8", body.encode("utf-8")

    def metrics_exposition(self) -> str:
        """The Prometheus text body ``GET /metrics`` serves: this
        server's registry plus every registered service's, labelled."""
        registries = [({"component": "http.server"}, self.metrics)]
        for service in self._registry.services():
            registries.append(
                ({"component": "service", "service": service.name}, service.metrics)
            )
        extra = []
        exporter = get_tracer().exporter
        if exporter is not None:
            extra.append(
                (
                    "obs.spans.dropped",
                    "spans discarded by the exporter at capacity",
                    {},
                    getattr(exporter, "dropped", 0),
                )
            )
        journal = get_journal()
        extra.append(
            (
                "obs.journal.events",
                "lifecycle journal events currently retained",
                {},
                len(journal),
            )
        )
        if journal.dropped:
            extra.append(
                (
                    "obs.journal.dropped",
                    "lifecycle journal events evicted at capacity",
                    {},
                    journal.dropped,
                )
            )
        return prometheus_text(registries, extra_gauges=extra)

    @property
    def port(self) -> int:
        return self._core.port

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def address_for_path(self, path: str) -> str:
        return f"{self.base_url}{path}"

    def url_for(self, service_path: str) -> str:
        """The address a service should be constructed with, e.g.
        ``server.url_for('/relational')``."""
        if not service_path.startswith("/"):
            service_path = "/" + service_path
        return f"{self.base_url}{service_path}"

    def start(self) -> "DaisHttpServer":
        self._core.start()
        return self

    def stop(self) -> None:
        self._core.stop()

    def __enter__(self) -> "DaisHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HttpTransport:
    """Client side: POST envelopes to service URLs.

    Requests ride a thread-safe HTTP/1.1 keep-alive connection pool
    (:class:`~repro.transport.pool.HttpConnectionPool`): sequential and
    concurrent calls to the same host reuse TCP connections instead of
    paying a connect per request.  A stale pooled connection (the server
    closed its side while it sat idle) is detected at checkout or at
    write time and replaced with exactly one transparent reconnect; a
    connection that fails after the request went out is *poisoned* —
    closed, never re-pooled, and the failure surfaces to the caller,
    because the service may already have acted on the request.  Pass
    ``pooling=False`` for the old connection-per-request behaviour.

    Every attempt runs under a socket timeout (default 10 s —
    configurable per transport, overridable per retry policy) that also
    caps the *total* time spent draining the response body, so a server
    that stalls or trickles mid-stream (a dropped connection during a
    chunked response, a byte-per-second sender) surfaces as a
    :class:`~repro.core.faults.TransportFault` instead of blocking the
    caller indefinitely.  All transport-level failures — refused
    connections, timeouts, dropped sockets, non-SOAP error bodies —
    surface as that typed fault rather than raw
    ``http.client``/``socket`` exceptions.  Install a
    :class:`~repro.resilience.Resilience` layer (or pass a bare
    ``RetryPolicy``) to retry them with backoff and breaker protection.
    """

    #: Response bodies are drained in reads of this size so the total
    #: read deadline can be enforced between reads.
    READ_CHUNK_BYTES = 65536

    def __init__(
        self,
        network: NetworkModel | None = None,
        timeout: float = 10.0,
        resilience=None,
        pooling: bool = True,
        max_idle_per_host: int = 8,
        compression: bool = True,
    ) -> None:
        self._network = network if network is not None else NetworkModel()
        self._timeout = timeout
        #: Advertise ``Accept-Encoding: gzip`` and decode encoded
        #: responses; off reproduces the uncompressed wire.
        self.compression = compression
        #: Optional retry/breaker layer; every ``send`` routes through it.
        self.resilience = coerce_resilience(resilience)
        self.stats = WireStats()
        #: Client-side metrics: request counts and wire bytes per action.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "rpc.client.requests", "requests sent per wsa:Action"
        )
        self._request_bytes = self.metrics.counter(
            "rpc.client.request.bytes", "request bytes per wsa:Action"
        )
        self._response_bytes = self.metrics.counter(
            "rpc.client.response.bytes", "response bytes per wsa:Action"
        )
        self._faults = self.metrics.counter(
            "rpc.client.faults", "fault responses per wsa:Action"
        )
        # Wire-truth byte counters (`in` is post-compression, as read
        # off the socket) — the client-side mirror of the server's
        # http.bytes.{in,out}.
        self._bytes_out = self.metrics.counter(
            "http.bytes.out", "request body bytes sent on the wire"
        )
        self._bytes_in = self.metrics.counter(
            "http.bytes.in", "response body bytes received on the wire"
        )
        #: The keep-alive pool (None = connection per request).  Its
        #: ``rpc.client.connections.*`` counters live in :attr:`metrics`,
        #: so pool behaviour shows up in ``obs:ServiceMetrics``.
        self.pool = (
            HttpConnectionPool(
                max_idle_per_host=max_idle_per_host, metrics=self.metrics
            )
            if pooling
            else None
        )

    def send(self, address: str, request: Envelope) -> Envelope:
        if self.resilience is None:
            return self._send_once(address, request)
        return self.resilience.call(address, request, self._send_once)

    def close(self) -> None:
        """Close every idle pooled connection."""
        if self.pool is not None:
            self.pool.close_all()

    def _effective_timeout(self) -> float:
        if self.resilience is not None:
            override = self.resilience.policy.request_timeout
            if override is not None:
                return override
        return self._timeout

    def _send_once(self, address: str, request: Envelope) -> Envelope:
        action = request.headers.action
        with get_tracer().span(
            "rpc.send", transport="http", address=address, action=action
        ) as span:
            request_bytes = inject(request).to_bytes()
            status, response_bytes, wire_bytes = self._exchange(
                address, action, request_bytes
            )
            if not _looks_like_soap(response_bytes):
                # SOAP 1.1: fault envelopes arrive with status 500 — when
                # the body is a SOAP message, read it and carry on; an
                # unparseable body (a proxy error page, an injected 503)
                # is a transport-level failure.
                if status != 200:
                    raise TransportFault(
                        f"HTTP {status} from {address} with non-SOAP body",
                        status=status,
                    )
            # Wire truth everywhere bytes are recorded: a gzip response
            # is accounted at its compressed size (what the network
            # carried), while the envelope parses the decoded body.
            modeled = self._network.transfer_time(
                len(request_bytes)
            ) + self._network.transfer_time(wire_bytes)
            try:
                response = Envelope.from_bytes(response_bytes)
            except Exception as err:
                span.record_exception(err)
                raise TransportFault(
                    f"unparseable response from {address}: {err}"
                ) from err
            self._requests.inc(action=action)
            self._request_bytes.inc(len(request_bytes), action=action)
            self._response_bytes.inc(wire_bytes, action=action)
            self._bytes_out.inc(len(request_bytes))
            self._bytes_in.inc(wire_bytes)
            if response.is_fault():
                self._faults.inc(action=action)
                span.mark_fault()
            span.set_attributes(
                request_bytes=len(request_bytes),
                response_bytes=wire_bytes,
                modeled_seconds=modeled,
            )
            self.stats.record(
                CallRecord(
                    address=address,
                    action=action,
                    request_bytes=len(request_bytes),
                    response_bytes=wire_bytes,
                    modeled_seconds=modeled,
                )
            )
            return response

    # -- the wire exchange ----------------------------------------------------

    def _exchange(
        self, address: str, action: str, body: bytes
    ) -> tuple[int, bytes, int]:
        """One POST over a (possibly pooled) connection →
        ``(status, decoded body, wire bytes)``.

        *wire bytes* is the response body size as read off the socket —
        for a gzip-encoded response that is the compressed size, while
        the returned body is already decoded.  Decoding happens after
        the body is fully drained, so framing (and therefore keep-alive
        reuse) is independent of the encoding.

        Raises :class:`TransportFault` for connect failures, timeouts and
        mid-exchange breakage.  A reused connection that fails while the
        request is being *written* is a stale keep-alive: it is discarded
        and the request transparently retried once on a fresh connection
        (the server never saw it).  Failures while *reading* the response
        are never retried here — the request may have had effects; that
        call is the resilience layer's, which owns resend semantics.
        """
        parts = urlsplit(address)
        host = parts.hostname or "127.0.0.1"
        port = parts.port or 80
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        timeout = self._effective_timeout()
        headers = {
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": action,
            "Host": f"{host}:{port}",
        }
        if self.compression:
            headers["Accept-Encoding"] = "gzip"
        if self.pool is None:
            # Connection-per-request mode: tell the server not to hold
            # the socket (and its handler thread) open for us.
            headers["Connection"] = "close"
        reconnected = False
        while True:
            conn, reused = self._checkout(host, port, timeout)
            try:
                conn.request("POST", path, body=body, headers=headers)
            except TimeoutError as err:  # socket.timeout is an alias
                self._checkin(conn, reusable=False)
                raise TransportFault(
                    f"request to {address} timed out after {timeout}s"
                ) from err
            except (OSError, http.client.HTTPException) as err:
                self._checkin(conn, reusable=False)
                if reused and not reconnected:
                    # Stale keep-alive died under the write; the server
                    # never received the request, so one fresh-connection
                    # retry is safe and invisible to the caller.
                    reconnected = True
                    continue
                raise TransportFault(
                    f"connection to {address} failed: {err}"
                ) from err
            try:
                reply = conn.getresponse()
                response_bytes = self._read_body(reply, conn, timeout)
            except TimeoutError as err:
                self._checkin(conn, reusable=False)
                raise TransportFault(
                    f"request to {address} timed out after {timeout}s"
                ) from err
            except (OSError, http.client.HTTPException) as err:
                # The request went out but no (complete) response came
                # back: poison the connection and surface the break — the
                # service may have acted, so no transparent resend.
                self._checkin(conn, reusable=False)
                raise TransportFault(
                    f"connection to {address} broke mid-exchange: {err}"
                ) from err
            wire_bytes = len(response_bytes)
            encoding = ""
            if reply.headers is not None:
                encoding = (
                    reply.headers.get("content-encoding") or ""
                ).lower()
            if encoding == "gzip":
                try:
                    response_bytes = gunzip(response_bytes)
                except Exception as err:
                    # A truncated/garbled member is a broken exchange:
                    # the connection framing may still be fine, but the
                    # payload is not — poison it and surface the break.
                    self._checkin(conn, reusable=False)
                    raise TransportFault(
                        f"undecodable gzip response from {address}: {err}"
                    ) from err
            self._checkin(conn, reusable=not reply.will_close)
            return reply.status, response_bytes, wire_bytes

    def _read_body(self, reply, conn, timeout: float) -> bytes:
        """Drain one response body under a *total* deadline.

        The socket timeout alone only bounds each individual ``recv`` —
        a server that trickles a chunked body (or stalls after an
        injected mid-stream drop) would keep a plain ``read()`` blocked
        forever, one byte at a time.  ``read1`` performs at most one
        underlying ``recv`` per call, so checking the remaining budget
        between calls (and shrinking the socket timeout to it) makes
        *timeout* the ceiling for the whole body.
        """
        deadline = time.monotonic() + timeout
        pieces: list[bytes] = []
        sock = getattr(conn, "sock", None)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"response body not drained within {timeout}s"
                )
            if sock is not None:
                sock.settimeout(min(timeout, remaining))
            piece = reply.read1(self.READ_CHUNK_BYTES)
            if not piece:
                # read1() does not mark a fully-drained Content-Length
                # response as closed the way read() does; close it so
                # the connection can be reused for the next exchange.
                reply.close()
                return b"".join(pieces)
            pieces.append(piece)

    def _checkout(self, host: str, port: int, timeout: float):
        if self.pool is not None:
            return self.pool.acquire(host, port, timeout)
        return http.client.HTTPConnection(host, port, timeout=timeout), False

    def _checkin(self, conn, reusable: bool) -> None:
        if self.pool is not None:
            self.pool.release(conn, reusable=reusable)
        else:
            conn.close()
