"""A real SOAP-over-HTTP binding on localhost.

``DaisHttpServer`` serves every service in a registry from one port —
the request path selects the service (its address is
``http://host:port/<name>``).  ``HttpTransport`` is the matching client
side.  Used by the examples and a handful of integration tests; the
loopback transport remains the default elsewhere.
"""

from __future__ import annotations

import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.registry import ServiceRegistry
from repro.soap.envelope import Envelope
from repro.transport.wire import CallRecord, NetworkModel, WireStats


class DaisHttpServer:
    """Serves a :class:`ServiceRegistry` over HTTP on 127.0.0.1."""

    def __init__(self, registry: ServiceRegistry, port: int = 0) -> None:
        self._registry = registry

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_POST(self) -> None:  # noqa: N802 - stdlib API
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                try:
                    request = Envelope.from_bytes(body)
                    address = outer.address_for_path(self.path)
                    service = outer._registry.service_at(address)
                    response = service.dispatch(request)
                    payload = response.to_bytes()
                    self.send_response(200)
                except Exception as exc:  # defensive: malformed requests
                    payload = f"<error>{exc}</error>".encode()
                    self.send_response(500)
                self.send_header("Content-Type", "text/xml; charset=utf-8")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def address_for_path(self, path: str) -> str:
        return f"{self.base_url}{path}"

    def url_for(self, service_path: str) -> str:
        """The address a service should be constructed with, e.g.
        ``server.url_for('/relational')``."""
        if not service_path.startswith("/"):
            service_path = "/" + service_path
        return f"{self.base_url}{service_path}"

    def start(self) -> "DaisHttpServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DaisHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HttpTransport:
    """Client side: POST envelopes to service URLs."""

    def __init__(self, network: NetworkModel | None = None, timeout: float = 10.0) -> None:
        self._network = network if network is not None else NetworkModel()
        self._timeout = timeout
        self.stats = WireStats()

    def send(self, address: str, request: Envelope) -> Envelope:
        request_bytes = request.to_bytes()
        http_request = urllib.request.Request(
            address,
            data=request_bytes,
            headers={
                "Content-Type": "text/xml; charset=utf-8",
                "SOAPAction": request.headers.action,
            },
            method="POST",
        )
        with urllib.request.urlopen(http_request, timeout=self._timeout) as reply:
            response_bytes = reply.read()
        modeled = self._network.transfer_time(
            len(request_bytes)
        ) + self._network.transfer_time(len(response_bytes))
        self.stats.record(
            CallRecord(
                address=address,
                action=request.headers.action,
                request_bytes=len(request_bytes),
                response_bytes=len(response_bytes),
                modeled_seconds=modeled,
            )
        )
        return Envelope.from_bytes(response_bytes)
