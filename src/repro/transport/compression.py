"""Negotiated gzip for the SOAP-over-HTTP wire.

Figure 4 prices property documents at 10–92 KB per fetch and the rowset
datasets are larger still — highly repetitive XML that deflates 5–20x.
The client advertises ``Accept-Encoding: gzip``; the server compresses
responses above :data:`GZIP_FLOOR_BYTES` (tiny bodies would pay the
gzip header for nothing) on both the eager (``Content-Length``) and the
streamed (``Transfer-Encoding: chunked``) paths.  Content-Encoding is a
*payload* property — framing is untouched, so keep-alive connection
reuse and the client's chunked decoder work unchanged; the transport
decompresses after the body is fully drained.

All compression goes through raw :mod:`zlib` with gzip wrapping
(``wbits=31``) rather than the :mod:`gzip` module: zlib writes a fixed
zero MTIME into the member header, so identical payloads compress to
identical wire bytes — which keeps golden wire snapshots and the
byte-identity gates deterministic.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Iterator, Mapping

__all__ = [
    "GZIP_FLOOR_BYTES",
    "accepts_gzip",
    "gzip_compress",
    "gunzip",
    "gzip_stream",
]

#: Responses smaller than this are sent uncompressed even when the
#: client accepts gzip — below it, the ~20-byte member overhead and the
#: deflate call cost more than the bytes they save.
GZIP_FLOOR_BYTES = 512

#: gzip member wrapping for zlib (16 + MAX_WBITS).
_GZIP_WBITS = 16 + zlib.MAX_WBITS
#: Auto-detecting unwrap (32 + MAX_WBITS accepts gzip or zlib framing).
_ANY_WBITS = 32 + zlib.MAX_WBITS


def accepts_gzip(headers: Mapping[str, str]) -> bool:
    """Whether a parsed request's (lowercase-keyed) headers negotiate
    gzip — i.e. ``Accept-Encoding`` lists it with a non-zero q-value."""
    accept = headers.get("accept-encoding", "")
    for part in accept.split(","):
        token, _, params = part.partition(";")
        if token.strip().lower() not in ("gzip", "*"):
            continue
        params = params.strip().lower()
        if params.startswith("q="):
            try:
                return float(params[2:]) > 0.0
            except ValueError:
                return False
        return True
    return False


def gzip_compress(payload: bytes, level: int = 6) -> bytes:
    """One-shot gzip (deterministic: no timestamp in the header)."""
    compressor = zlib.compressobj(level, zlib.DEFLATED, _GZIP_WBITS)
    return compressor.compress(payload) + compressor.flush()


def gunzip(payload: bytes) -> bytes:
    """Inverse of :func:`gzip_compress` (also accepts zlib framing)."""
    return zlib.decompress(payload, _ANY_WBITS)


def gzip_stream(
    fragments: Iterable[bytes], level: int = 6
) -> Iterator[bytes]:
    """Compress an iterable of body fragments incrementally.

    Yields compressed pieces as the deflater emits them (possibly
    skipping fragments that stay buffered inside the compressor) and
    flushes the final member on exhaustion — memory stays bounded by
    the compressor window regardless of stream length.
    """
    compressor = zlib.compressobj(level, zlib.DEFLATED, _GZIP_WBITS)
    for fragment in fragments:
        piece = compressor.compress(fragment)
        if piece:
            yield piece
    tail = compressor.flush()
    if tail:
        yield tail
