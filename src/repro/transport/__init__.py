"""Message transports.

Every transport serializes the request envelope to bytes and parses the
response from bytes — even in-process — so all tests and benchmarks
exercise the real wire format.  The loopback transport additionally
keeps per-call byte accounts and can model network latency/bandwidth
deterministically, which is what the figure benchmarks report.
"""

from repro.transport.wire import CallRecord, NetworkModel, WireStats
from repro.transport.loopback import LoopbackTransport
from repro.transport.pool import HttpConnectionPool
from repro.transport.eventloop import EventLoopCore
from repro.transport.httpserver import DaisHttpServer, HttpTransport

__all__ = [
    "CallRecord",
    "NetworkModel",
    "WireStats",
    "LoopbackTransport",
    "HttpConnectionPool",
    "EventLoopCore",
    "DaisHttpServer",
    "HttpTransport",
]
