"""The event-loop transport core: one selector thread, a bounded worker
pool, and admission control between them.

``ThreadingHTTPServer`` spent one OS thread per *connection* — at the
millions-of-users concurrency the paper's fabric aims for, ten thousand
mostly-idle keep-alive consumers would pin ten thousand stacks.  This
core inverts the model:

* an **event loop** (one thread, a ``selectors`` poll) owns every idle
  or partially-read connection: it accepts, reads incrementally through
  :class:`~repro.transport.http11.RequestParser`, reaps slow or idle
  connections on deadlines, and performs non-blocking buffered writes
  for the responses it produces itself;
* a **bounded worker pool** owns a connection only for the span of one
  admitted request: the worker handles it, writes the response
  (blocking, under a write timeout), and hands the connection back to
  the loop for the next keep-alive request;
* an **admission queue** sits between them: bounded depth, bounded
  queued wait.  Overload is not an accident here — it is converted into
  an explicit, wire-correct *shed* decision the application renders
  (for DAIS: a retryable ``ServiceBusyFault``, per the DALI
  service-busy convention).

The core is application-agnostic: it drives an *app* object (in
practice :class:`~repro.transport.httpserver.DaisHttpServer`) through a
small protocol::

    app.fast_response(request) -> bytes | None
        Loop-thread fast path (GET /healthz, /metrics, ...).  Must not
        block; returning bytes answers without touching the queue, so
        probes survive saturation.  None means "queue it".
    app.render_shed(request, reason, depth) -> bytes
        A complete response for a request refused at admission
        ("full") — rendered on the loop thread, written non-blocking.
    app.on_request(conn, request, core, waited) -> None
        Worker-thread handler for one admitted request.  Must finish by
        calling core.finish(conn, keep_alive=...) exactly once (or
        core.close(conn)).
    app.on_shed(conn, request, core, waited) -> None
        Worker-thread handler for a request whose queued wait exceeded
        the admission deadline; same completion contract.

Ownership rule: a connection is owned either by the loop (registered in
the selector, non-blocking) or by exactly one worker (unregistered,
blocking with a write timeout) — never both.  ``core.finish`` is the
only way ownership returns to the loop.
"""

from __future__ import annotations

import queue
import selectors
import socket
import threading
import time
from collections import deque

from repro.obs import MetricsRegistry

from repro.transport.http11 import (
    HttpParseError,
    ParsedRequest,
    RequestParser,
    render_response,
)

__all__ = ["Connection", "EventLoopCore", "SHED_FULL", "SHED_DEADLINE"]

#: Shed reasons, used as metric labels and span attributes.
SHED_FULL = "queue-full"
SHED_DEADLINE = "queue-deadline"

_RECV_SIZE = 65536


class Connection:
    """Per-connection state shared by the loop and (briefly) a worker."""

    __slots__ = (
        "sock",
        "fd",
        "parser",
        "outbuf",
        "close_after_flush",
        "close_event",
        "request_started",
        "last_activity",
        "want_write",
    )

    def __init__(self, sock: socket.socket, parser: RequestParser) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.parser = parser
        self.outbuf = bytearray()
        self.close_after_flush = False
        #: Overrides the ``http.server.connections`` event label for
        #: this connection's close (e.g. a reap counted as "reaped"
        #: even when the deferred flush performs the actual close).
        self.close_event: str | None = None
        #: Monotonic time the currently-partial request started arriving
        #: (None when no request is in flight on the wire).
        self.request_started: float | None = None
        self.last_activity = time.monotonic()
        self.want_write = False


class EventLoopCore:
    """Selector loop + admission queue + worker pool (see module doc)."""

    def __init__(
        self,
        host: str,
        port: int,
        app,
        metrics: MetricsRegistry,
        *,
        workers: int = 8,
        queue_depth: int = 64,
        queue_deadline: float | None = 2.0,
        read_deadline: float = 10.0,
        idle_timeout: float = 30.0,
        write_timeout: float = 30.0,
        backlog: int = 1024,
        max_body_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._app = app
        self.workers = workers
        self.queue_depth = queue_depth
        self.queue_deadline = queue_deadline
        self.read_deadline = read_deadline
        self.idle_timeout = idle_timeout
        self.write_timeout = write_timeout
        self._max_body_bytes = max_body_bytes

        self.metrics = metrics
        self._admitted = metrics.counter(
            "http.server.queue.admitted", "requests admitted to the queue"
        )
        self._shed = metrics.counter(
            "http.server.queue.shed", "requests refused at admission, per reason"
        )
        self._depth = metrics.histogram(
            "http.server.queue.depth", "dispatch queue depth at admission"
        )
        self._wait = metrics.histogram(
            "http.server.queue.wait.seconds", "queued wait before a worker"
        )
        self._connections = metrics.counter(
            "http.server.connections", "connection lifecycle events"
        )

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)

        self._selector = selectors.DefaultSelector()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._conns: dict[int, Connection] = {}
        #: Connections with a partially-received request (read-deadline
        #: candidates) — kept separately so the reap scan is O(partial),
        #: not O(all connections).
        self._partial: set[Connection] = set()
        self._resume_box: deque[Connection] = deque()
        self._resume_lock = threading.Lock()
        self._wakeup_r, self._wakeup_w = socket.socketpair()
        self._wakeup_r.setblocking(False)
        self._running = False
        self._loop_thread: threading.Thread | None = None
        self._worker_threads: list[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> None:
        self._running = True
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        self._selector.register(self._wakeup_r, selectors.EVENT_READ, "wakeup")
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"dais-worker-{index}", daemon=True
            )
            thread.start()
            self._worker_threads.append(thread)
        self._loop_thread = threading.Thread(
            target=self._loop, name="dais-eventloop", daemon=True
        )
        self._loop_thread.start()

    def stop(self) -> None:
        self._running = False
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5)
        for _ in self._worker_threads:
            self._queue.put(None)
        for thread in self._worker_threads:
            thread.join(timeout=5)
        # Drain anything still queued (requests admitted but never
        # served): their connections just close.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                self._close_sock(item[0].sock)
        for conn in list(self._conns.values()):
            self._close_sock(conn.sock)
        self._conns.clear()
        self._partial.clear()
        try:
            self._selector.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for sock in (self._listener, self._wakeup_r, self._wakeup_w):
            self._close_sock(sock)

    # -- worker-side API -------------------------------------------------------

    def finish(self, conn: Connection, keep_alive: bool) -> None:
        """A worker is done with *conn*: hand it back to the loop for
        the next keep-alive request, or close it."""
        if not keep_alive or not self._running:
            self.close(conn)
            return
        with self._resume_lock:
            self._resume_box.append(conn)
        self._wake()

    def close(self, conn: Connection) -> None:
        """Close a worker-owned connection."""
        self._connections.inc(event="closed")
        self._close_sock(conn.sock)

    # -- the loop --------------------------------------------------------------

    def _loop(self) -> None:
        next_idle_sweep = time.monotonic() + self._idle_tick()
        while self._running:
            timeout = self._select_timeout()
            try:
                events = self._selector.select(timeout)
            except OSError:  # selector closed under us at shutdown
                break
            if not self._running:
                break
            for key, mask in events:
                if key.data == "accept":
                    self._accept()
                elif key.data == "wakeup":
                    self._drain_wakeup()
                else:
                    conn = key.data
                    if mask & selectors.EVENT_WRITE:
                        self._flush(conn)
                    if mask & selectors.EVENT_READ and conn.fd in self._conns:
                        self._readable(conn)
            self._resume_pending()
            now = time.monotonic()
            self._reap_partial(now)
            if now >= next_idle_sweep:
                self._sweep_idle(now)
                next_idle_sweep = now + self._idle_tick()

    def _idle_tick(self) -> float:
        return max(min(self.idle_timeout / 4.0, 2.0), 0.05)

    def _select_timeout(self) -> float:
        # Partial requests need deadline resolution; otherwise a coarse
        # tick for the idle sweep is enough.
        if self._partial:
            return max(min(self.read_deadline / 4.0, 0.05), 0.01)
        return 0.5

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = Connection(
                sock, RequestParser(max_body_bytes=self._max_body_bytes)
            )
            self._conns[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            self._connections.inc(event="accepted")

    def _drain_wakeup(self) -> None:
        try:
            while self._wakeup_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass

    def _wake(self) -> None:
        try:
            self._wakeup_w.send(b"\x01")
        except OSError:  # pragma: no cover - shutdown race
            pass

    def _resume_pending(self) -> None:
        while True:
            with self._resume_lock:
                if not self._resume_box:
                    return
                conn = self._resume_box.popleft()
            sock = conn.sock
            try:
                sock.setblocking(False)
                conn.fd = sock.fileno()
                self._conns[conn.fd] = conn
                self._selector.register(sock, selectors.EVENT_READ, conn)
            except (OSError, ValueError):
                self._close_conn(conn, "closed")
                continue
            conn.last_activity = time.monotonic()
            conn.want_write = False
            # The worker's response may have crossed with bytes the
            # client pipelined; serve anything already buffered.
            self._drain_requests(conn)

    def _readable(self, conn: Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn, "closed")
            return
        if not data:
            self._close_conn(conn, "closed")
            return
        conn.last_activity = time.monotonic()
        try:
            conn.parser.feed(data)
        except HttpParseError as err:
            self._respond_loop(
                conn,
                render_response(
                    err.status,
                    "text/plain; charset=utf-8",
                    f"{err}".encode("utf-8"),
                    keep_alive=False,
                ),
                close=True,
            )
            return
        self._drain_requests(conn)
        if conn.fd not in self._conns:
            return
        if conn.parser.receiving:
            if conn.request_started is None:
                conn.request_started = conn.last_activity
                self._partial.add(conn)
        else:
            conn.request_started = None
            self._partial.discard(conn)

    def _drain_requests(self, conn: Connection) -> None:
        """Dispatch every complete buffered request until the connection
        leaves loop ownership (admitted to a worker) or runs dry."""
        while conn.fd in self._conns:
            request = conn.parser.next_request()
            if request is None:
                return
            conn.request_started = None
            self._partial.discard(conn)
            if not self._dispatch(conn, request):
                return  # ownership moved to a worker

    def _dispatch(self, conn: Connection, request: ParsedRequest) -> bool:
        """Route one complete request.  Returns True while the loop still
        owns the connection."""
        fast = self._app.fast_response(request)
        if fast is not None:
            self._respond_loop(conn, fast, close=not request.keep_alive)
            return True
        depth = self._queue.qsize()
        self._depth.observe(depth)
        try:
            self._queue.put_nowait((conn, request, time.monotonic()))
        except queue.Full:
            self._shed.inc(reason=SHED_FULL)
            shed = self._app.render_shed(request, SHED_FULL, depth)
            self._respond_loop(conn, shed, close=not request.keep_alive)
            return True
        self._admitted.inc()
        self._unregister(conn)
        return False

    def _respond_loop(
        self, conn: Connection, payload: bytes, close: bool
    ) -> None:
        """Queue *payload* on the connection's outbound buffer and flush
        as much as the socket accepts right now (never blocking)."""
        conn.outbuf.extend(payload)
        if close:
            conn.close_after_flush = True
        self._flush(conn)

    def _flush(self, conn: Connection) -> None:
        sock = conn.sock
        while conn.outbuf:
            try:
                sent = sock.send(bytes(conn.outbuf[:_RECV_SIZE]))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn, "closed")
                return
            if sent == 0:  # pragma: no cover - send never returns 0
                break
            del conn.outbuf[:sent]
        if conn.outbuf:
            if not conn.want_write:
                conn.want_write = True
                self._selector.modify(
                    sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
                )
            return
        if conn.want_write:
            conn.want_write = False
            try:
                self._selector.modify(sock, selectors.EVENT_READ, conn)
            except (KeyError, OSError):
                pass
        if conn.close_after_flush:
            self._close_conn(conn, "closed")

    def _reap_partial(self, now: float) -> None:
        if not self._partial:
            return
        for conn in list(self._partial):
            if (
                conn.request_started is not None
                and now - conn.request_started > self.read_deadline
            ):
                # A sender that cannot complete a request inside the
                # read deadline is a slow-loris (or dead): answer 408
                # best-effort and reap — no worker ever blocked on it.
                conn.close_event = "reaped"
                self._respond_loop(
                    conn,
                    render_response(
                        408,
                        "text/plain; charset=utf-8",
                        b"request read deadline exceeded",
                        keep_alive=False,
                    ),
                    close=True,
                )
                if conn.fd in self._conns:
                    self._close_conn(conn, "reaped")

    def _sweep_idle(self, now: float) -> None:
        for conn in list(self._conns.values()):
            if (
                conn.request_started is None
                and not conn.outbuf
                and now - conn.last_activity > self.idle_timeout
            ):
                self._close_conn(conn, "idle")

    # -- worker pool -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            conn, request, enqueued = item
            waited = time.monotonic() - enqueued
            self._wait.observe(waited)
            try:
                conn.sock.settimeout(self.write_timeout)
            except OSError:
                self._connections.inc(event="closed")
                continue
            try:
                if (
                    self.queue_deadline is not None
                    and waited > self.queue_deadline
                ):
                    self._shed.inc(reason=SHED_DEADLINE)
                    self._app.on_shed(conn, request, self, waited)
                else:
                    self._app.on_request(conn, request, self, waited)
            except Exception:  # noqa: BLE001 - worker must survive anything
                self.close(conn)

    # -- internals -------------------------------------------------------------

    def _unregister(self, conn: Connection) -> None:
        self._partial.discard(conn)
        conn.request_started = None
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, OSError):
            pass
        self._conns.pop(conn.fd, None)

    def _close_conn(self, conn: Connection, event: str) -> None:
        self._unregister(conn)
        self._connections.inc(event=conn.close_event or event)
        self._close_sock(conn.sock)

    @staticmethod
    def _close_sock(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
