"""Wire accounting and the deterministic network model.

The paper's figures make claims about *who moves how many bytes where*
(direct vs indirect access, third-party delivery).  :class:`WireStats`
records exact request/response byte counts per call;
:class:`NetworkModel` converts them into a modeled transfer time
(latency + size/bandwidth) so benchmarks can report reproducible
"transfer cost" series independent of host speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkModel:
    """A fixed-latency, fixed-bandwidth link model."""

    latency_seconds: float = 0.0
    bandwidth_bytes_per_second: float | None = None  # None = infinite

    def transfer_time(self, payload_bytes: int) -> float:
        """Modeled one-way time to move *payload_bytes* over this link."""
        time = self.latency_seconds
        if self.bandwidth_bytes_per_second:
            time += payload_bytes / self.bandwidth_bytes_per_second
        return time


#: A LAN-ish default: 0.5 ms latency, 100 MB/s.
LAN = NetworkModel(latency_seconds=0.0005, bandwidth_bytes_per_second=100e6)
#: A WAN-ish default: 40 ms latency, 10 MB/s.
WAN = NetworkModel(latency_seconds=0.040, bandwidth_bytes_per_second=10e6)


@dataclass(frozen=True)
class CallRecord:
    """One request/response exchange as observed on the wire."""

    address: str
    action: str
    request_bytes: int
    response_bytes: int
    modeled_seconds: float

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes


@dataclass
class WireStats:
    """Accumulated wire activity for one transport."""

    calls: list[CallRecord] = field(default_factory=list)

    def record(self, record: CallRecord) -> None:
        self.calls.append(record)

    def reset(self) -> None:
        self.calls.clear()

    @property
    def call_count(self) -> int:
        return len(self.calls)

    @property
    def bytes_sent(self) -> int:
        return sum(record.request_bytes for record in self.calls)

    @property
    def bytes_received(self) -> int:
        return sum(record.response_bytes for record in self.calls)

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    @property
    def modeled_seconds(self) -> float:
        return sum(record.modeled_seconds for record in self.calls)

    def by_action(self) -> dict[str, int]:
        """Total bytes per action URI (handy for per-operation tables)."""
        totals: dict[str, int] = {}
        for record in self.calls:
            totals[record.action] = totals.get(record.action, 0) + record.total_bytes
        return totals
