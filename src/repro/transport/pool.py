"""A thread-safe HTTP/1.1 keep-alive connection pool for the client side.

``urllib`` opens (and tears down) one TCP connection per request — a tax
the paper's many-consumers-one-service model cannot afford.  The pool
keeps bounded per-host stacks of idle :class:`http.client.HTTPConnection`
objects; :class:`~repro.transport.httpserver.HttpTransport` checks one
out per request and returns it when the exchange completed cleanly.

Rules the pool enforces:

* a connection is owned by exactly one thread between checkout and
  check-in (``http.client`` connections are not thread-safe);
* idle connections are liveness-checked on checkout (a non-blocking
  ``MSG_PEEK``), so a server that closed its side is detected before a
  request is written into a dead socket;
* any connection that saw a transport error is *discarded*, never
  returned — a dropped socket poisons exactly that connection;
* the per-host idle stack is bounded; overflow connections are closed.

Checkout/check-in activity feeds the ``rpc.client.connections.*``
counters of the metrics registry the pool is built with, so pool
behaviour is visible in ``obs:ServiceMetrics`` and ``GET /metrics``.
"""

from __future__ import annotations

import http.client
import socket
import threading

from repro.obs import MetricsRegistry

__all__ = ["HttpConnectionPool"]

HostKey = tuple[str, int]


class _LeanResponse(http.client.HTTPResponse):
    """A lean HTTP response reader for the SOAP exchange profile.

    The DAIS server frames bodies with ``Content-Length`` (materialized
    responses) or ``Transfer-Encoding: chunked`` (streamed datasets) and
    never sends 1xx continuations, so the general ``email.parser``
    header machinery ``http.client`` runs per response (a measurable
    share of a small SOAP round trip) buys nothing.  This reads the
    status line and scans the few headers the exchange actually uses —
    Content-Length, Transfer-Encoding and Connection — directly; chunked
    bodies are decoded by the inherited ``read()`` machinery.
    """

    def begin(self) -> None:  # overrides the stdlib parser
        if self.headers is not None:  # pragma: no cover - begin is once
            return
        line = self.fp.readline(65537)
        if len(line) > 65536:
            raise http.client.LineTooLong("status line")
        if not line:
            raise http.client.RemoteDisconnected(
                "Remote end closed connection without response"
            )
        status_line = line.decode("iso-8859-1").rstrip("\r\n")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            self._close_conn()
            raise http.client.BadStatusLine(status_line)
        version = parts[0]
        try:
            self.status = int(parts[1])
        except ValueError:
            self._close_conn()
            raise http.client.BadStatusLine(status_line) from None
        self.reason = parts[2].strip() if len(parts) > 2 else ""
        self.version = 11 if version >= "HTTP/1.1" else 10

        length: int | None = None
        connection = ""
        chunked = False
        headers: dict[str, str] = {}
        while True:
            raw = self.fp.readline(65537)
            if len(raw) > 65536:
                raise http.client.LineTooLong("header line")
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("iso-8859-1").partition(":")
            key = key.strip().lower()
            value = value.strip()
            headers[key] = value
            if key == "content-length":
                try:
                    length = int(value)
                except ValueError:
                    length = None
            elif key == "transfer-encoding":
                chunked = "chunked" in value.lower()
            elif key == "connection":
                connection = value.lower()

        # Attributes HTTPResponse.read()/close() work from.  With
        # chunked set (and length None, per RFC 9112 §6.3 Transfer-
        # Encoding wins over Content-Length), the inherited read()
        # decodes chunk framing for us.
        self.headers = self.msg = headers
        self.chunked = chunked
        self.chunk_left = None
        self.length = None if chunked else length
        self.will_close = (
            "close" in connection
            or (self.version == 10 and "keep-alive" not in connection)
            or (length is None and not chunked)
        )


class _KeepAliveConnection(http.client.HTTPConnection):
    """An ``HTTPConnection`` tuned for pooled SOAP exchanges.

    Disables Nagle on connect: without ``TCP_NODELAY`` a reused
    connection pays the Nagle × delayed-ACK stall (~40 ms) whenever a
    request or response spans two writes — which would erase the whole
    point of pooling.
    """

    response_class = _LeanResponse

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class HttpConnectionPool:
    """Bounded per-host pools of reusable keep-alive connections."""

    def __init__(
        self,
        max_idle_per_host: int = 8,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_idle_per_host < 1:
            raise ValueError("max_idle_per_host must be >= 1")
        self.max_idle_per_host = max_idle_per_host
        self._lock = threading.Lock()
        self._idle: dict[HostKey, list[http.client.HTTPConnection]] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._created = self.metrics.counter(
            "rpc.client.connections.created", "new TCP connections per host"
        )
        self._reused = self.metrics.counter(
            "rpc.client.connections.reused", "keep-alive reuses per host"
        )
        self._discarded = self.metrics.counter(
            "rpc.client.connections.discarded",
            "connections closed instead of pooled, per reason",
        )

    # -- checkout / check-in ---------------------------------------------------

    def acquire(
        self, host: str, port: int, timeout: float
    ) -> tuple[http.client.HTTPConnection, bool]:
        """Check out a connection to ``host:port``.

        Returns ``(connection, reused)`` — *reused* is True when the
        connection already carried a previous exchange (the transport
        uses this to decide whether a send-time failure is a stale
        keep-alive worth one transparent reconnect).  Fresh connections
        are returned unconnected; ``http.client`` connects lazily on the
        first request.
        """
        key = (host, port)
        while True:
            with self._lock:
                stack = self._idle.get(key)
                conn = stack.pop() if stack else None
            if conn is None:
                conn = _KeepAliveConnection(host, port, timeout=timeout)
                self._created.inc(host=f"{host}:{port}")
                return conn, False
            if not self._alive(conn):
                self._close(conn, reason="stale")
                continue
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
            self._reused.inc(host=f"{host}:{port}")
            return conn, True

    def release(self, conn: http.client.HTTPConnection, reusable: bool) -> None:
        """Check a connection back in.

        ``reusable=False`` (a transport error, a ``Connection: close``
        response) closes it — poisoned connections never re-enter the
        pool.  A full idle stack also closes it.
        """
        if not reusable:
            self._close(conn, reason="poisoned")
            return
        if conn.sock is None:
            self._close(conn, reason="closed")
            return
        key = (conn.host, conn.port)
        with self._lock:
            stack = self._idle.setdefault(key, [])
            if len(stack) < self.max_idle_per_host:
                stack.append(conn)
                return
        self._close(conn, reason="overflow")

    # -- introspection ---------------------------------------------------------

    def idle_counts(self) -> dict[str, int]:
        """Idle connections per ``host:port`` (a snapshot)."""
        with self._lock:
            return {
                f"{host}:{port}": len(stack)
                for (host, port), stack in sorted(self._idle.items())
                if stack
            }

    def idle_total(self) -> int:
        with self._lock:
            return sum(len(stack) for stack in self._idle.values())

    def close_all(self) -> None:
        """Close every idle connection (e.g. at client shutdown)."""
        with self._lock:
            stacks = list(self._idle.values())
            self._idle = {}
        for stack in stacks:
            for conn in stack:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass

    # -- internals -------------------------------------------------------------

    def _close(self, conn: http.client.HTTPConnection, reason: str) -> None:
        self._discarded.inc(reason=reason)
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    @staticmethod
    def _alive(conn: http.client.HTTPConnection) -> bool:
        """Non-destructive liveness probe of an idle connection.

        A readable socket on an idle keep-alive connection means either
        EOF (the server closed its side) or stray bytes we never asked
        for — both make the connection unusable, so only a clean
        "nothing to read yet" verdict keeps it.
        """
        sock = conn.sock
        if sock is None:
            return False
        try:
            sock.settimeout(0.0)
            try:
                sock.recv(1, socket.MSG_PEEK)
            except (BlockingIOError, InterruptedError):
                return True
            return False
        except OSError:
            return False
