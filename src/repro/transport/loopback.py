"""The in-process transport.

Performs the full serialize→bytes→parse round trip on both legs so the
message structure is exercised exactly as over a socket, while staying
deterministic and fast enough for property tests and benchmarks.
"""

from __future__ import annotations

from repro.core.registry import ServiceRegistry
from repro.soap.envelope import Envelope
from repro.transport.wire import CallRecord, NetworkModel, WireStats


class LoopbackTransport:
    """Dispatches envelopes through a :class:`ServiceRegistry` in-process."""

    def __init__(
        self,
        registry: ServiceRegistry,
        network: NetworkModel | None = None,
    ) -> None:
        self._registry = registry
        self._network = network if network is not None else NetworkModel()
        self.stats = WireStats()

    @property
    def registry(self) -> ServiceRegistry:
        return self._registry

    def send(self, address: str, request: Envelope) -> Envelope:
        """Send *request* to the service at *address*; returns the
        response envelope (which may carry a fault — callers decide
        whether to raise via :meth:`Envelope.raise_if_fault`)."""
        request_bytes = request.to_bytes()
        service = self._registry.service_at(address)
        response = service.dispatch(Envelope.from_bytes(request_bytes))
        response_bytes = response.to_bytes()
        modeled = self._network.transfer_time(
            len(request_bytes)
        ) + self._network.transfer_time(len(response_bytes))
        self.stats.record(
            CallRecord(
                address=address,
                action=request.headers.action,
                request_bytes=len(request_bytes),
                response_bytes=len(response_bytes),
                modeled_seconds=modeled,
            )
        )
        return Envelope.from_bytes(response_bytes)
