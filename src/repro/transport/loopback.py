"""The in-process transport.

Performs the full serialize→bytes→parse round trip on both legs so the
message structure is exercised exactly as over a socket, while staying
deterministic and fast enough for property tests and benchmarks.
"""

from __future__ import annotations

from repro.core.faults import ServiceNotFoundFault
from repro.core.registry import ServiceRegistry
from repro.obs import MetricsRegistry, get_tracer
from repro.resilience import coerce_resilience
from repro.soap.envelope import Envelope, fault_envelope
from repro.soap.tracecontext import inject
from repro.transport.wire import CallRecord, NetworkModel, WireStats


class LoopbackTransport:
    """Dispatches envelopes through a :class:`ServiceRegistry` in-process."""

    def __init__(
        self,
        registry: ServiceRegistry,
        network: NetworkModel | None = None,
        resilience=None,
    ) -> None:
        self._registry = registry
        self._network = network if network is not None else NetworkModel()
        #: Optional retry/breaker layer (a ``Resilience`` or bare
        #: ``RetryPolicy``); every ``send`` routes through it when set.
        self.resilience = coerce_resilience(resilience)
        self.stats = WireStats()
        #: Client-side metrics: request counts and wire bytes per action.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "rpc.client.requests", "requests sent per wsa:Action"
        )
        self._request_bytes = self.metrics.counter(
            "rpc.client.request.bytes", "request bytes per wsa:Action"
        )
        self._response_bytes = self.metrics.counter(
            "rpc.client.response.bytes", "response bytes per wsa:Action"
        )
        self._faults = self.metrics.counter(
            "rpc.client.faults", "fault responses per wsa:Action"
        )

    @property
    def registry(self) -> ServiceRegistry:
        return self._registry

    def send(self, address: str, request: Envelope) -> Envelope:
        """Send *request* to the service at *address*; returns the
        response envelope (which may carry a fault — callers decide
        whether to raise via :meth:`Envelope.raise_if_fault`).

        With a :attr:`resilience` layer installed, the call is retried
        and breaker-guarded per its policy."""
        if self.resilience is None:
            return self._send_once(address, request)
        return self.resilience.call(address, request, self._send_once)

    def _send_once(self, address: str, request: Envelope) -> Envelope:
        action = request.headers.action
        with get_tracer().span(
            "rpc.send", transport="loopback", address=address, action=action
        ) as span:
            request_bytes = inject(request).to_bytes()
            try:
                service = self._registry.service_at(address)
            except LookupError as exc:
                # Same fault shape the HTTP binding produces for an
                # unknown path, so consumers see one behaviour.
                response = fault_envelope(
                    request.headers, ServiceNotFoundFault(str(exc))
                )
                span.mark_fault()
            else:
                response = service.dispatch(Envelope.from_bytes(request_bytes))
            response_bytes = response.to_bytes()
            modeled = self._network.transfer_time(
                len(request_bytes)
            ) + self._network.transfer_time(len(response_bytes))
            self._record(
                action, len(request_bytes), len(response_bytes), response
            )
            span.set_attributes(
                request_bytes=len(request_bytes),
                response_bytes=len(response_bytes),
                modeled_seconds=modeled,
            )
            self.stats.record(
                CallRecord(
                    address=address,
                    action=action,
                    request_bytes=len(request_bytes),
                    response_bytes=len(response_bytes),
                    modeled_seconds=modeled,
                )
            )
            return Envelope.from_bytes(response_bytes)

    def _record(
        self, action: str, sent: int, received: int, response: Envelope
    ) -> None:
        self._requests.inc(action=action)
        self._request_bytes.inc(sent, action=action)
        self._response_bytes.inc(received, action=action)
        if response.is_fault():
            self._faults.inc(action=action)
