"""Shared HTTP/1.1 request/response codec for the event-loop server.

The selector front end (:mod:`repro.transport.eventloop`) reads bytes
off non-blocking sockets as they arrive; :class:`RequestParser` turns
that byte dribble into complete requests *incrementally* — it never
blocks, never over-reads, and keeps per-connection state so a request
may arrive one byte at a time (the slow-loris case) without costing
anything but its buffer.  The rendering half builds wire-correct
HTTP/1.1 responses: ``Content-Length`` framing for materialized bodies,
chunk framing for streamed ones.

The codec is deliberately narrower than a general HTTP stack — the DAIS
exchange profile needs POSTed SOAP envelopes framed by Content-Length,
a few read-only GETs, and keep-alive — but every limit violation and
malformed input becomes a typed :class:`HttpParseError` carrying the
status code the connection should die with, never a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HttpParseError",
    "ParsedRequest",
    "RequestParser",
    "REASONS",
    "render_headers",
    "render_response",
    "chunk",
    "TERMINAL_CHUNK",
]

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}

#: The zero-size chunk that terminates a chunked body.
TERMINAL_CHUNK = b"0\r\n\r\n"


class HttpParseError(ValueError):
    """A request that cannot be parsed (or violates a codec limit).

    ``status`` is the HTTP status the server should answer with before
    closing the connection — parse state is unrecoverable afterwards.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ParsedRequest:
    """One complete request as the event loop hands it to a worker."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    body: bytes
    #: HTTP/1.1 semantics: persist unless the client said close (or
    #: spoke 1.0 without asking for keep-alive).
    keep_alive: bool

    @property
    def path(self) -> str:
        return self.target


class RequestParser:
    """Incremental HTTP/1.1 request parser for one connection.

    Feed raw bytes with :meth:`feed`; pull complete requests with
    :meth:`next_request` (pipelined bytes simply stay buffered until
    asked for).  :attr:`receiving` is True while a request is partially
    buffered — the event loop uses it to arm the read deadline that
    reaps slow-loris senders.
    """

    _LINE, _HEADERS, _BODY = range(3)

    def __init__(
        self,
        max_line_bytes: int = 16384,
        max_header_bytes: int = 65536,
        max_body_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        self.max_line_bytes = max_line_bytes
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._buffer = bytearray()
        self._state = self._LINE
        self._method = ""
        self._target = ""
        self._version = ""
        self._headers: dict[str, str] = {}
        self._header_bytes = 0
        self._body_length = 0
        self._ready: list[ParsedRequest] = []

    @property
    def receiving(self) -> bool:
        """True while a request is partially buffered (line, headers or
        an incomplete body) — the slow-loris window."""
        return self._state != self._LINE or bool(self._buffer)

    def feed(self, data: bytes) -> None:
        """Buffer *data* and advance the state machine as far as the
        bytes allow.  Raises :class:`HttpParseError` on malformed input;
        the connection must be closed after answering."""
        self._buffer.extend(data)
        self._advance()

    def next_request(self) -> ParsedRequest | None:
        """The next complete request, or None when more bytes are needed."""
        if self._ready:
            return self._ready.pop(0)
        return None

    # -- state machine ---------------------------------------------------------

    def _advance(self) -> None:
        while True:
            if self._state == self._LINE:
                line = self._take_line(self.max_line_bytes, "request line")
                if line is None:
                    return
                if not line:
                    # Tolerate stray blank lines between requests
                    # (RFC 9112 §2.2 allows ignoring leading CRLF).
                    continue
                self._parse_request_line(line)
                self._state = self._HEADERS
                self._headers = {}
                self._header_bytes = 0
            elif self._state == self._HEADERS:
                line = self._take_line(self.max_line_bytes, "header line")
                if line is None:
                    return
                self._header_bytes += len(line) + 2
                if self._header_bytes > self.max_header_bytes:
                    raise HttpParseError("header section too large", 431)
                if line:
                    self._parse_header_line(line)
                    continue
                self._body_length = self._content_length()
                self._state = self._BODY
            else:  # _BODY
                if len(self._buffer) < self._body_length:
                    return
                body = bytes(self._buffer[: self._body_length])
                del self._buffer[: self._body_length]
                self._emit(body)
                self._state = self._LINE

    def _take_line(self, limit: int, what: str) -> bytes | None:
        index = self._buffer.find(b"\n")
        if index == -1:
            if len(self._buffer) > limit:
                raise HttpParseError(f"{what} too long", 431)
            return None
        if index > limit:
            raise HttpParseError(f"{what} too long", 431)
        line = bytes(self._buffer[:index])
        del self._buffer[: index + 1]
        return line.rstrip(b"\r")

    def _parse_request_line(self, line: bytes) -> None:
        try:
            text = line.decode("iso-8859-1")
        except UnicodeDecodeError as err:  # pragma: no cover - latin-1 total
            raise HttpParseError(f"undecodable request line: {err}") from err
        parts = text.split()
        if len(parts) != 3:
            raise HttpParseError(f"malformed request line {text!r}")
        method, target, version = parts
        if not version.startswith("HTTP/"):
            raise HttpParseError(f"malformed HTTP version {version!r}")
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise HttpParseError(f"unsupported version {version!r}", 505)
        self._method = method
        self._target = target
        self._version = version

    def _parse_header_line(self, line: bytes) -> None:
        key, sep, value = line.partition(b":")
        if not sep:
            raise HttpParseError(f"malformed header line {line!r}")
        self._headers[key.strip().decode("iso-8859-1").lower()] = (
            value.strip().decode("iso-8859-1")
        )

    def _content_length(self) -> int:
        raw = self._headers.get("content-length")
        if raw is None:
            if "chunked" in self._headers.get("transfer-encoding", "").lower():
                # The exchange profile never sends chunked *requests*;
                # refuse rather than silently mis-frame.
                raise HttpParseError("chunked request bodies unsupported", 411)
            return 0
        try:
            length = int(raw)
        except ValueError as err:
            raise HttpParseError(f"bad Content-Length {raw!r}") from err
        if length < 0:
            raise HttpParseError(f"bad Content-Length {raw!r}")
        if length > self.max_body_bytes:
            raise HttpParseError(f"body of {length} bytes too large", 413)
        return length

    def _emit(self, body: bytes) -> None:
        connection = self._headers.get("connection", "").lower()
        if self._version == "HTTP/1.1":
            keep_alive = "close" not in connection
        else:
            keep_alive = "keep-alive" in connection
        self._ready.append(
            ParsedRequest(
                method=self._method,
                target=self._target,
                version=self._version,
                headers=self._headers,
                body=body,
                keep_alive=keep_alive,
            )
        )


# -- response rendering --------------------------------------------------------


def render_headers(
    status: int, headers: list[tuple[str, str]]
) -> bytes:
    """The status line plus *headers*, terminated by the blank line."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}\r\n"]
    for key, value in headers:
        lines.append(f"{key}: {value}\r\n")
    lines.append("\r\n")
    return "".join(lines).encode("iso-8859-1")


def render_response(
    status: int,
    content_type: str,
    body: bytes,
    keep_alive: bool = True,
    extra_headers: list[tuple[str, str]] | None = None,
) -> bytes:
    """A complete Content-Length-framed response as one byte string.

    *extra_headers* (e.g. ``Content-Encoding: gzip``) are emitted after
    Content-Type/Content-Length; *body* must already be in its encoded
    form — Content-Length frames the bytes actually sent.
    """
    headers = [
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
    ]
    if extra_headers:
        headers.extend(extra_headers)
    if not keep_alive:
        headers.append(("Connection", "close"))
    return render_headers(status, headers) + body


def chunk(payload: bytes) -> bytes:
    """One chunk of a ``Transfer-Encoding: chunked`` body."""
    return b"%x\r\n%s\r\n" % (len(payload), payload)
