"""CIM relational metadata (paper §2.3).

The DAIS-WG worked with the DMTF Database Working Group to extend the
Common Information Model with relational metadata and an XML rendering;
WS-DAIR's ``CIMDescription`` property carries that rendering.  This
package provides a CIM-style class model of a relational schema
(database → tables → columns → keys) mapped from the live
:class:`~repro.relational.catalog.Catalog`, plus the CIM-XML
(``INSTANCE``/``PROPERTY``/``VALUE``) serialization.
"""

from repro.cim.model import (
    CimColumn,
    CimDatabase,
    CimForeignKey,
    CimKey,
    CimTable,
    describe_catalog,
)
from repro.cim.render import CIM_XML_NS, parse_cim_xml, render_cim_xml

__all__ = [
    "CimDatabase",
    "CimTable",
    "CimColumn",
    "CimKey",
    "CimForeignKey",
    "describe_catalog",
    "render_cim_xml",
    "parse_cim_xml",
    "CIM_XML_NS",
]
