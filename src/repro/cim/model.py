"""CIM-style class model of relational metadata."""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.catalog import Catalog


@dataclass(frozen=True)
class CimColumn:
    """CIM_Column-like: one column of a table."""

    name: str
    data_type: str
    length: int | None
    nullable: bool
    ordinal_position: int


@dataclass(frozen=True)
class CimKey:
    """CIM_UniqueKey-like: primary-key or unique constraint."""

    kind: str  # "PRIMARY" or "UNIQUE"
    columns: tuple[str, ...]


@dataclass(frozen=True)
class CimForeignKey:
    """CIM_ForeignKey-like: a referential constraint."""

    name: str
    columns: tuple[str, ...]
    referenced_table: str
    referenced_columns: tuple[str, ...]


@dataclass(frozen=True)
class CimTable:
    """CIM_Table-like: one table with columns and keys."""

    name: str
    columns: tuple[CimColumn, ...]
    keys: tuple[CimKey, ...] = ()
    foreign_keys: tuple[CimForeignKey, ...] = ()

    def column(self, name: str) -> CimColumn:
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise KeyError(name)


@dataclass(frozen=True)
class CimDatabase:
    """CIM_CommonDatabase-like: the schema of one database."""

    name: str
    tables: tuple[CimTable, ...] = ()

    def table(self, name: str) -> CimTable:
        for table in self.tables:
            if table.name.lower() == name.lower():
                return table
        raise KeyError(name)


def describe_catalog(catalog: Catalog) -> CimDatabase:
    """Map a live relational catalog to the CIM model."""
    tables = []
    for table_name in catalog.table_names():
        schema = catalog.table(table_name)
        columns = tuple(
            CimColumn(
                name=column.name,
                data_type=column.sql_type.value,
                length=column.length,
                nullable=not column.not_null,
                ordinal_position=column.position + 1,
            )
            for column in schema.columns
        )
        keys = []
        if schema.primary_key:
            keys.append(CimKey("PRIMARY", schema.primary_key))
        for unique in schema.unique_constraints:
            keys.append(CimKey("UNIQUE", tuple(unique)))
        foreign_keys = tuple(
            CimForeignKey(
                name=fk.name,
                columns=fk.columns,
                referenced_table=fk.ref_table,
                referenced_columns=fk.ref_columns,
            )
            for fk in schema.foreign_keys
        )
        tables.append(
            CimTable(schema.name, columns, tuple(keys), foreign_keys)
        )
    return CimDatabase(catalog.database_name, tuple(tables))
