"""CIM-XML rendering of the CIM relational model.

Follows the DMTF CIM-XML mapping style: each object is an ``INSTANCE``
with ``PROPERTY``/``PROPERTY.ARRAY`` children; containment is expressed
by nesting instance values under an enclosing property, which keeps the
document self-contained (no object paths needed for a schema snapshot).
"""

from __future__ import annotations

from functools import lru_cache

from repro.cim.model import (
    CimColumn,
    CimDatabase,
    CimForeignKey,
    CimKey,
    CimTable,
)
from repro.xmlutil import E, QName, XmlElement
from repro.xmlutil.names import DEFAULT_REGISTRY

#: Namespace for the CIM-XML rendering carried in DAIS property documents.
CIM_XML_NS = "http://schemas.dmtf.org/wbem/wscim/1/cim-schema/2"

DEFAULT_REGISTRY.register("cim", CIM_XML_NS)


@lru_cache(maxsize=None)
def _tag(local: str) -> QName:
    return QName(CIM_XML_NS, local)


def _property(name: str, value, cim_type: str = "string") -> XmlElement:
    node = E(_tag("PROPERTY"), E(_tag("VALUE"), "" if value is None else value))
    node.set("NAME", name)
    node.set("TYPE", cim_type)
    return node


def _property_array(name: str, values) -> XmlElement:
    node = E(
        _tag("PROPERTY.ARRAY"),
        [E(_tag("VALUE"), v) for v in values],
    )
    node.set("NAME", name)
    node.set("TYPE", "string")
    return node


def _instance(classname: str, *children) -> XmlElement:
    node = E(_tag("INSTANCE"), *children)
    node.set("CLASSNAME", classname)
    return node


def render_cim_xml(database: CimDatabase) -> XmlElement:
    """Render the full schema snapshot as one CIM-XML element tree."""
    return _instance(
        "CIM_CommonDatabase",
        _property("Name", database.name),
        *[_render_table(table) for table in database.tables],
    )


def _render_table(table: CimTable) -> XmlElement:
    children = [_property("Name", table.name)]
    children.extend(_render_column(column) for column in table.columns)
    children.extend(_render_key(key) for key in table.keys)
    children.extend(_render_foreign_key(fk) for fk in table.foreign_keys)
    return _instance("CIM_Table", *children)


def _render_column(column: CimColumn) -> XmlElement:
    children = [
        _property("Name", column.name),
        _property("DataType", column.data_type),
        _property("Nullable", "true" if column.nullable else "false", "boolean"),
        _property("OrdinalPosition", column.ordinal_position, "uint16"),
    ]
    if column.length is not None:
        children.append(_property("Length", column.length, "uint32"))
    return _instance("CIM_Column", *children)


def _render_key(key: CimKey) -> XmlElement:
    return _instance(
        "CIM_UniqueKey",
        _property("KeyKind", key.kind),
        _property_array("Columns", key.columns),
    )


def _render_foreign_key(fk: CimForeignKey) -> XmlElement:
    return _instance(
        "CIM_ForeignKey",
        _property("Name", fk.name),
        _property_array("Columns", fk.columns),
        _property("ReferencedTable", fk.referenced_table),
        _property_array("ReferencedColumns", fk.referenced_columns),
    )


# ---------------------------------------------------------------------------
# parsing (consumers introspect the CIMDescription they fetched)
# ---------------------------------------------------------------------------


def parse_cim_xml(root: XmlElement) -> CimDatabase:
    """Parse a rendering produced by :func:`render_cim_xml`."""
    if root.tag != _tag("INSTANCE") or root.get("CLASSNAME") != "CIM_CommonDatabase":
        raise ValueError("not a CIM_CommonDatabase instance")
    name = _prop_value(root, "Name")
    tables = tuple(
        _parse_table(instance)
        for instance in root.findall(_tag("INSTANCE"))
        if instance.get("CLASSNAME") == "CIM_Table"
    )
    return CimDatabase(name, tables)


def _parse_table(instance: XmlElement) -> CimTable:
    columns = []
    keys = []
    foreign_keys = []
    for child in instance.findall(_tag("INSTANCE")):
        classname = child.get("CLASSNAME")
        if classname == "CIM_Column":
            length_text = _prop_value(child, "Length", optional=True)
            columns.append(
                CimColumn(
                    name=_prop_value(child, "Name"),
                    data_type=_prop_value(child, "DataType"),
                    length=int(length_text) if length_text else None,
                    nullable=_prop_value(child, "Nullable") == "true",
                    ordinal_position=int(_prop_value(child, "OrdinalPosition")),
                )
            )
        elif classname == "CIM_UniqueKey":
            keys.append(
                CimKey(
                    kind=_prop_value(child, "KeyKind"),
                    columns=_array_values(child, "Columns"),
                )
            )
        elif classname == "CIM_ForeignKey":
            foreign_keys.append(
                CimForeignKey(
                    name=_prop_value(child, "Name"),
                    columns=_array_values(child, "Columns"),
                    referenced_table=_prop_value(child, "ReferencedTable"),
                    referenced_columns=_array_values(child, "ReferencedColumns"),
                )
            )
    return CimTable(
        _prop_value(instance, "Name"),
        tuple(columns),
        tuple(keys),
        tuple(foreign_keys),
    )


def _prop_value(
    instance: XmlElement, name: str, optional: bool = False
) -> str | None:
    for prop in instance.findall(_tag("PROPERTY")):
        if prop.get("NAME") == name:
            value = prop.find(_tag("VALUE"))
            return value.text if value is not None else ""
    if optional:
        return None
    raise ValueError(f"missing CIM property {name!r}")


def _array_values(instance: XmlElement, name: str) -> tuple[str, ...]:
    for prop in instance.findall(_tag("PROPERTY.ARRAY")):
        if prop.get("NAME") == name:
            return tuple(v.text for v in prop.findall(_tag("VALUE")))
    raise ValueError(f"missing CIM array property {name!r}")
