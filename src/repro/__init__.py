"""dais-py: a reference implementation of the GGF DAIS specifications.

Reproduces Antonioletti, Krause & Paton, *"An Outline of the Global Grid
Forum Data Access and Integration Service Specifications"* (VLDB DMG
2005): the WS-DAI core, the WS-DAIR relational realisation and the
WS-DAIX XML realisation, layered optionally over WSRF, together with the
substrates they wrap -- an in-memory relational engine, an XML database
with XPath/XQuery/XUpdate, a SOAP/WS-Addressing messaging stack and a
CIM metadata renderer.

Quickstart::

    from repro.workload import build_single_service

    deployment = build_single_service()
    rowset = deployment.client.sql_query_rowset(
        deployment.address,
        deployment.name,
        "SELECT region, COUNT(*) FROM customers GROUP BY region",
    )
    for row in rowset.rows:
        print(row)

See ``examples/`` for the paper's Figure 5 pipeline and more.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
