"""Consumer-side proxies.

A *consumer* (paper §3) talks to data services through these clients:
:class:`CoreClient` covers the WS-DAI operations; the realisation
clients — :class:`~repro.client.sql.SQLClient` and friends for WS-DAIR,
:class:`~repro.client.xml.XMLCollectionClient` and friends for WS-DAIX —
extend it.  All clients speak through a transport (loopback or HTTP) and
raise typed DAIS faults on error responses.
"""

from repro.client.base import DaisClient
from repro.client.core import CoreClient
from repro.client.sql import RowsetReader, SQLClient

__all__ = ["DaisClient", "CoreClient", "RowsetReader", "SQLClient"]
