"""Consumer proxies for the WS-DAIX port types."""

from __future__ import annotations

from typing import Optional

from repro.client.core import CoreClient
from repro.daix import messages as msg
from repro.soap.addressing import EndpointReference
from repro.xmlutil import QName, XmlElement


class XMLClient(CoreClient):
    """WS-DAIX consumer: collection management, queries, factories."""

    # -- XMLCollectionAccess ------------------------------------------------

    def add_documents(
        self,
        address: str,
        abstract_name: str,
        documents: list[tuple[str, XmlElement]],
        replace: bool = False,
    ) -> list[tuple[str, str]]:
        response = self.call(
            address,
            msg.AddDocumentsRequest(
                abstract_name=abstract_name,
                documents=documents,
                replace=replace,
            ),
            msg.AddDocumentsResponse,
        )
        return response.results

    def get_documents(
        self, address: str, abstract_name: str, names: list[str]
    ) -> list[tuple[str, XmlElement]]:
        response = self.call(
            address,
            msg.GetDocumentsRequest(abstract_name=abstract_name, names=names),
            msg.GetDocumentsResponse,
        )
        return response.documents

    def remove_documents(
        self, address: str, abstract_name: str, names: list[str]
    ) -> int:
        response = self.call(
            address,
            msg.RemoveDocumentsRequest(abstract_name=abstract_name, names=names),
            msg.RemoveDocumentsResponse,
        )
        return response.removed

    def list_documents(
        self, address: str, abstract_name: str
    ) -> msg.ListDocumentsResponse:
        return self.call(
            address,
            msg.ListDocumentsRequest(abstract_name=abstract_name),
            msg.ListDocumentsResponse,
        )

    def create_subcollection(
        self, address: str, abstract_name: str, collection_name: str
    ) -> msg.CreateSubcollectionResponse:
        return self.call(
            address,
            msg.CreateSubcollectionRequest(
                abstract_name=abstract_name, collection_name=collection_name
            ),
            msg.CreateSubcollectionResponse,
        )

    def remove_subcollection(
        self, address: str, abstract_name: str, collection_name: str
    ) -> str:
        response = self.call(
            address,
            msg.RemoveSubcollectionRequest(
                abstract_name=abstract_name, collection_name=collection_name
            ),
            msg.RemoveSubcollectionResponse,
        )
        return response.removed

    def get_collection_property_document(
        self, address: str, abstract_name: str
    ) -> XmlElement:
        response = self.call(
            address,
            msg.GetCollectionPropertyDocumentRequest(
                abstract_name=abstract_name
            ),
            msg.GetCollectionPropertyDocumentResponse,
        )
        if response.document is None:
            raise ValueError("empty collection property document")
        return response.document

    # -- query access --------------------------------------------------------

    def xpath_execute(
        self,
        address: str,
        abstract_name: str,
        expression: str,
        document_name: Optional[str] = None,
    ) -> list[XmlElement]:
        response = self.call(
            address,
            msg.XPathExecuteRequest(
                abstract_name=abstract_name,
                expression=expression,
                document_name=document_name,
            ),
            msg.XPathExecuteResponse,
        )
        return response.items

    def xquery_execute(
        self,
        address: str,
        abstract_name: str,
        query: str,
        document_name: Optional[str] = None,
    ) -> list[XmlElement]:
        response = self.call(
            address,
            msg.XQueryExecuteRequest(
                abstract_name=abstract_name,
                expression=query,
                document_name=document_name,
            ),
            msg.XQueryExecuteResponse,
        )
        return response.items

    def xupdate_execute(
        self,
        address: str,
        abstract_name: str,
        modifications: XmlElement,
        document_name: Optional[str] = None,
    ) -> int:
        response = self.call(
            address,
            msg.XUpdateExecuteRequest(
                abstract_name=abstract_name,
                modifications=modifications,
                document_name=document_name,
            ),
            msg.XUpdateExecuteResponse,
        )
        return response.modified

    # -- factories + SequenceAccess ---------------------------------------------

    def xpath_execute_factory(
        self,
        address: str,
        abstract_name: str,
        expression: str,
        document_name: Optional[str] = None,
        port_type_qname: Optional[QName] = None,
        configuration: Optional[XmlElement] = None,
        execution_mode: str = "",
    ) -> msg.XPathExecuteFactoryResponse:
        return self.call(
            address,
            msg.XPathExecuteFactoryRequest(
                abstract_name=abstract_name,
                expression=expression,
                document_name=document_name,
                port_type_qname=port_type_qname,
                configuration_document=configuration,
                execution_mode=execution_mode,
            ),
            msg.XPathExecuteFactoryResponse,
        )

    def xquery_execute_factory(
        self,
        address: str,
        abstract_name: str,
        query: str,
        document_name: Optional[str] = None,
        port_type_qname: Optional[QName] = None,
        configuration: Optional[XmlElement] = None,
        execution_mode: str = "",
    ) -> msg.XQueryExecuteFactoryResponse:
        return self.call(
            address,
            msg.XQueryExecuteFactoryRequest(
                abstract_name=abstract_name,
                expression=query,
                document_name=document_name,
                port_type_qname=port_type_qname,
                configuration_document=configuration,
                execution_mode=execution_mode,
            ),
            msg.XQueryExecuteFactoryResponse,
        )

    def get_items(
        self,
        epr: EndpointReference,
        abstract_name: str,
        start_position: int,
        count: int,
    ) -> tuple[list[XmlElement], int]:
        response = self.call_epr(
            epr,
            msg.GetItemsRequest(
                abstract_name=abstract_name,
                start_position=start_position,
                count=count,
            ),
            msg.GetItemsResponse,
        )
        return response.items, response.total_items
