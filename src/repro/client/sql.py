"""Consumer proxies for the WS-DAIR port types.

:class:`SQLClient` adds the relational operations to
:class:`~repro.client.core.CoreClient`; calls can target either a plain
service address + abstract name, or a data resource address (EPR) as
returned by the factories — matching the two addressing styles of the
paper (§3).
"""

from __future__ import annotations

from typing import Optional

from repro.client.core import CoreClient
from repro.dair import messages as msg
from repro.dair.datasets import Rowset, parse_rowset
from repro.relational import SqlCommunicationArea
from repro.soap.addressing import EndpointReference
from repro.xmlutil import E, QName, XmlElement
from repro.core.namespaces import WSDAI_NS


def configuration_document(**overrides) -> XmlElement:
    """Build a WS-DAI ConfigurationDocument from keyword overrides.

    Accepted keys mirror the configurable properties:
    ``description``, ``readable``, ``writeable``,
    ``transaction_initiation``, ``transaction_isolation``,
    ``sensitivity`` (enum values or their strings).
    """
    mapping = {
        "description": "DataResourceDescription",
        "readable": "Readable",
        "writeable": "Writeable",
        "transaction_initiation": "TransactionInitiation",
        "transaction_isolation": "TransactionIsolation",
        "sensitivity": "Sensitivity",
    }
    document = E(QName(WSDAI_NS, "ConfigurationDocument"))
    for key, value in overrides.items():
        try:
            local = mapping[key]
        except KeyError:
            raise ValueError(f"unknown configurable property {key!r}") from None
        if isinstance(value, bool):
            text = "true" if value else "false"
        elif hasattr(value, "value"):
            text = value.value
        else:
            text = str(value)
        document.append(E(QName(WSDAI_NS, local), text))
    return document


class SQLClient(CoreClient):
    """WS-DAIR consumer: SQLAccess / SQLFactory / ResponseAccess /
    ResponseFactory / RowsetAccess."""

    # -- SQLAccess ----------------------------------------------------------

    def sql_execute(
        self,
        address: str,
        abstract_name: str,
        expression: str,
        parameters: list[str] | None = None,
        dataset_format_uri: str | None = None,
        transaction_context: str | None = None,
    ) -> msg.SQLExecuteResponse:
        request = msg.SQLExecuteRequest(
            abstract_name=abstract_name,
            expression=expression,
            parameters=[str(p) for p in (parameters or [])],
            dataset_format_uri=dataset_format_uri,
            transaction_context=transaction_context,
        )
        return self.call(address, request, msg.SQLExecuteResponse)

    # -- consumer-controlled transactions ------------------------------------

    def begin_transaction(
        self, address: str, abstract_name: str, isolation: str | None = None
    ) -> str:
        """Open a consumer transaction context; returns its id."""
        response = self.call(
            address,
            msg.BeginTransactionRequest(
                abstract_name=abstract_name, isolation=isolation
            ),
            msg.BeginTransactionResponse,
        )
        return response.transaction_context

    def commit_transaction(
        self, address: str, abstract_name: str, transaction_context: str
    ) -> str:
        response = self.call(
            address,
            msg.CommitTransactionRequest(
                abstract_name=abstract_name,
                transaction_context=transaction_context,
            ),
            msg.TransactionOutcomeResponse,
        )
        return response.outcome

    def rollback_transaction(
        self, address: str, abstract_name: str, transaction_context: str
    ) -> str:
        response = self.call(
            address,
            msg.RollbackTransactionRequest(
                abstract_name=abstract_name,
                transaction_context=transaction_context,
            ),
            msg.TransactionOutcomeResponse,
        )
        return response.outcome

    def sql_query_rowset(
        self,
        address: str,
        abstract_name: str,
        expression: str,
        parameters: list[str] | None = None,
        dataset_format_uri: str | None = None,
    ) -> Rowset:
        """SQLExecute + decode the dataset into a :class:`Rowset`."""
        response = self.sql_execute(
            address, abstract_name, expression, parameters, dataset_format_uri
        )
        if response.dataset is None:
            return Rowset([], [], [])
        return parse_rowset(response.dataset_format_uri, response.dataset)

    def get_sql_property_document(
        self, address: str, abstract_name: str
    ) -> XmlElement:
        response = self.call(
            address,
            msg.GetSQLPropertyDocumentRequest(abstract_name=abstract_name),
            msg.GetSQLPropertyDocumentResponse,
        )
        if response.document is None:
            raise ValueError("empty SQL property document")
        return response.document

    # -- SQLFactory ----------------------------------------------------------

    def sql_execute_factory(
        self,
        address: str,
        abstract_name: str,
        expression: str,
        parameters: list[str] | None = None,
        port_type_qname: QName | None = None,
        configuration: XmlElement | None = None,
        execution_mode: str = "",
    ) -> msg.SQLExecuteFactoryResponse:
        """``execution_mode=MODE_ASYNCHRONOUS`` asks the factory to queue
        the execution: the response then carries ``job_id`` instead of
        the derived resource's address (poll with ``wait_for_job``)."""
        request = msg.SQLExecuteFactoryRequest(
            abstract_name=abstract_name,
            expression=expression,
            parameters=[str(p) for p in (parameters or [])],
            port_type_qname=port_type_qname,
            configuration_document=configuration,
            execution_mode=execution_mode,
        )
        return self.call(address, request, msg.SQLExecuteFactoryResponse)

    # -- ResponseAccess (EPR-addressed) ---------------------------------------

    def get_sql_rowset(
        self,
        epr: EndpointReference,
        abstract_name: str,
        dataset_format_uri: str | None = None,
    ) -> Rowset:
        response = self.call_epr(
            epr,
            msg.GetSQLRowsetRequest(
                abstract_name=abstract_name,
                dataset_format_uri=dataset_format_uri,
            ),
            msg.GetSQLRowsetResponse,
        )
        if response.dataset is None:
            return Rowset([], [], [])
        return parse_rowset(response.dataset_format_uri, response.dataset)

    def get_sql_update_count(
        self, epr: EndpointReference, abstract_name: str
    ) -> int:
        response = self.call_epr(
            epr,
            msg.GetSQLUpdateCountRequest(abstract_name=abstract_name),
            msg.GetSQLUpdateCountResponse,
        )
        return response.update_count

    def get_sql_communication_area(
        self, epr: EndpointReference, abstract_name: str
    ) -> SqlCommunicationArea:
        response = self.call_epr(
            epr,
            msg.GetSQLCommunicationAreaRequest(abstract_name=abstract_name),
            msg.GetSQLCommunicationAreaResponse,
        )
        return response.communication

    def get_sql_return_value(
        self, epr: EndpointReference, abstract_name: str
    ) -> Optional[str]:
        response = self.call_epr(
            epr,
            msg.GetSQLReturnValueRequest(abstract_name=abstract_name),
            msg.GetSQLReturnValueResponse,
        )
        return response.value

    def get_sql_output_parameter(
        self, epr: EndpointReference, abstract_name: str, parameter_name: str
    ) -> Optional[str]:
        response = self.call_epr(
            epr,
            msg.GetSQLOutputParameterRequest(
                abstract_name=abstract_name, parameter_name=parameter_name
            ),
            msg.GetSQLOutputParameterResponse,
        )
        return response.value

    def get_sql_response_items(
        self, epr: EndpointReference, abstract_name: str
    ) -> list[str]:
        response = self.call_epr(
            epr,
            msg.GetSQLResponseItemRequest(abstract_name=abstract_name),
            msg.GetSQLResponseItemResponse,
        )
        return response.items

    def get_sql_response_property_document(
        self, epr: EndpointReference, abstract_name: str
    ) -> XmlElement:
        response = self.call_epr(
            epr,
            msg.GetSQLResponsePropertyDocumentRequest(
                abstract_name=abstract_name
            ),
            msg.GetSQLResponsePropertyDocumentResponse,
        )
        if response.document is None:
            raise ValueError("empty SQL response property document")
        return response.document

    # -- ResponseFactory -------------------------------------------------------

    def sql_rowset_factory(
        self,
        epr: EndpointReference,
        abstract_name: str,
        dataset_format_uri: str | None = None,
        port_type_qname: QName | None = None,
        configuration: XmlElement | None = None,
    ) -> msg.SQLRowsetFactoryResponse:
        request = msg.SQLRowsetFactoryRequest(
            abstract_name=abstract_name,
            dataset_format_uri=dataset_format_uri,
            port_type_qname=port_type_qname,
            configuration_document=configuration,
        )
        return self.call_epr(epr, request, msg.SQLRowsetFactoryResponse)

    # -- RowsetAccess ------------------------------------------------------------

    def get_tuples(
        self,
        epr: EndpointReference,
        abstract_name: str,
        start_position: int,
        count: int | None = None,
    ) -> tuple[Rowset, int]:
        """Returns (window, total rows in the rowset resource).

        ``count=None`` omits the ``Count`` element on the wire, which
        per the spec means the rest of the rowset; an explicit ``0``
        requests an empty window (useful to learn ``total_rows``)."""
        response = self.call_epr(
            epr,
            msg.GetTuplesRequest(
                abstract_name=abstract_name,
                start_position=start_position,
                count=count,
            ),
            msg.GetTuplesResponse,
        )
        if response.dataset is None:
            return Rowset([], [], []), response.total_rows
        return (
            parse_rowset(response.dataset_format_uri, response.dataset),
            response.total_rows,
        )

    def get_rowset_property_document(
        self, epr: EndpointReference, abstract_name: str
    ) -> XmlElement:
        response = self.call_epr(
            epr,
            msg.GetRowsetPropertyDocumentRequest(abstract_name=abstract_name),
            msg.GetRowsetPropertyDocumentResponse,
        )
        if response.document is None:
            raise ValueError("empty rowset property document")
        return response.document

    def rowset_reader(
        self,
        epr: EndpointReference,
        abstract_name: str,
        page_size: int = 100,
    ) -> "RowsetReader":
        """A lazy iterator over a RowsetAccess resource — see
        :class:`RowsetReader`."""
        return RowsetReader(self, epr, abstract_name, page_size=page_size)


class RowsetReader:
    """Consumer-side lazy iteration over a RowsetAccess resource.

    Iterating pages ``GetTuples`` windows of ``page_size`` rows on
    demand, so an arbitrarily large rowset resource is consumed in
    O(page) client memory — the consumer half of the paper's Figure 5
    indirect-access pattern.  Column names and SQL types are populated
    from the first fetched window, and :attr:`total_rows` holds the
    service-reported rowset size once a page has been fetched.

    Each ``__iter__`` call starts an independent pass from row 0 (the
    rowset resource itself is stable), so a reader can be re-iterated.
    """

    def __init__(
        self,
        client: SQLClient,
        epr: EndpointReference,
        abstract_name: str,
        page_size: int = 100,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self._client = client
        self._epr = epr
        self._abstract_name = abstract_name
        self.page_size = page_size
        #: Column names, known after the first page.
        self.columns: list[str] = []
        #: SQL type names per column, known after the first page.
        self.types: list[str] = []
        #: Service-reported rowset size; None until a page was fetched.
        self.total_rows: int | None = None
        #: GetTuples round trips performed across all passes.
        self.pages_fetched = 0

    def __iter__(self):
        position = 0
        while True:
            window, total = self._client.get_tuples(
                self._epr, self._abstract_name, position, self.page_size
            )
            self.pages_fetched += 1
            self.total_rows = total
            if position == 0:
                self.columns = list(window.columns)
                self.types = list(window.types)
            yield from window.rows
            position += len(window.rows)
            if position >= total or not window.rows:
                return

    def read_all(self) -> Rowset:
        """Drain the resource into a materialized :class:`Rowset` —
        for consumers that need random access after all."""
        rows = list(self)
        return Rowset(list(self.columns), list(self.types), rows)
