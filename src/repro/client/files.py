"""Consumer proxy for the WS-DAIF files realisation."""

from __future__ import annotations

from typing import Optional

from repro.client.core import CoreClient
from repro.daif import messages as msg
from repro.soap.addressing import EndpointReference
from repro.xmlutil import XmlElement


class FilesClient(CoreClient):
    """FileCollectionAccess / FileSelectionFactory / FileSetAccess."""

    def list_files(
        self, address: str, abstract_name: str, path: str = ""
    ) -> msg.ListFilesResponse:
        return self.call(
            address,
            msg.ListFilesRequest(abstract_name=abstract_name, path=path),
            msg.ListFilesResponse,
        )

    def get_file(
        self,
        address: str,
        abstract_name: str,
        path: str,
        offset: int = 0,
        length: Optional[int] = None,
    ) -> msg.GetFileResponse:
        return self.call(
            address,
            msg.GetFileRequest(
                abstract_name=abstract_name,
                path=path,
                offset=offset,
                length=length,
            ),
            msg.GetFileResponse,
        )

    def put_file(
        self, address: str, abstract_name: str, path: str, content: bytes
    ) -> msg.PutFileResponse:
        return self.call(
            address,
            msg.PutFileRequest(
                abstract_name=abstract_name, path=path, content=content
            ),
            msg.PutFileResponse,
        )

    def delete_file(
        self, address: str, abstract_name: str, path: str
    ) -> msg.DeleteFileResponse:
        return self.call(
            address,
            msg.DeleteFileRequest(abstract_name=abstract_name, path=path),
            msg.DeleteFileResponse,
        )

    def file_selection_factory(
        self,
        address: str,
        abstract_name: str,
        pattern: str,
        configuration: Optional[XmlElement] = None,
        execution_mode: str = "",
    ) -> msg.FileSelectionFactoryResponse:
        return self.call(
            address,
            msg.FileSelectionFactoryRequest(
                abstract_name=abstract_name,
                expression=pattern,
                configuration_document=configuration,
                execution_mode=execution_mode,
            ),
            msg.FileSelectionFactoryResponse,
        )

    def get_fileset_members(
        self,
        epr: EndpointReference,
        abstract_name: str,
        start_position: int,
        count: int,
    ) -> tuple[list[str], int]:
        response = self.call_epr(
            epr,
            msg.GetFileSetMembersRequest(
                abstract_name=abstract_name,
                start_position=start_position,
                count=count,
            ),
            msg.GetFileSetMembersResponse,
        )
        return response.members, response.total_members
