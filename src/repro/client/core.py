"""Consumer proxy for the WS-DAI core operations."""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from repro.client.base import DaisClient
from repro.core import messages as msg
from repro.core import wsrf_messages as wmsg
from repro.core.faults import InvalidResourceNameFault, ServiceNotFoundFault
from repro.core.messages import DaisMessage
from repro.wsrf.faults import ResourceUnknownFault
from repro.jobs import messages as jmsg
from repro.jobs.model import ERROR, TERMINAL_PHASES
from repro.resilience.policy import RetryPolicy
from repro.soap.addressing import EndpointReference
from repro.xmlutil import QName, XmlElement

#: Default pacing for :meth:`CoreClient.wait_for_job`: frequent early
#: polls backing off exponentially, bounded overall — the same
#: :class:`RetryPolicy` shape the transport retry loop uses, reused as
#: a poll schedule.
DEFAULT_POLL_POLICY = RetryPolicy(
    max_attempts=60,
    base_delay=0.005,
    multiplier=2.0,
    max_delay=0.25,
    jitter="full",
    budget_seconds=30.0,
)


class JobTimeoutError(TimeoutError):
    """The poll schedule ran out before the job reached a terminal phase.

    Carries the last observed status so the caller can keep polling,
    cancel, or report the in-flight phase.
    """

    def __init__(self, status: "jmsg.GetJobStatusResponse") -> None:
        super().__init__(
            f"job {status.job_id} still {status.phase} when the poll "
            "schedule was exhausted"
        )
        self.status = status


class CoreClient(DaisClient):
    """CoreDataAccess + CoreResourceList + WSRF property/lifetime calls.

    :meth:`resolve` results are cached per ``(address, abstract_name)``
    — an EPR is stable for the life of the resource, so re-resolving on
    every interaction only burns round trips.  The cache self-corrects
    on typed faults: a :class:`ServiceNotFoundFault` from an address
    drops every EPR cached against it, and a resource-name fault
    (unknown, invalid, or WSRF-expired) drops the one entry it names.
    """

    def __init__(self, transport, resilience=None) -> None:
        super().__init__(transport, resilience)
        self._resolve_lock = threading.Lock()
        self._resolve_cache: dict[tuple[str, str], EndpointReference] = {}
        metrics = getattr(transport, "metrics", None)
        if metrics is not None:
            self._resolve_hits = metrics.counter(
                "cache.resolve.hits", "resolve() calls served from cache"
            )
            self._resolve_misses = metrics.counter(
                "cache.resolve.misses", "resolve() calls sent on the wire"
            )
            self._resolve_invalidations = metrics.counter(
                "cache.resolve.invalidations",
                "cached EPRs dropped after a typed fault",
            )
        else:  # pragma: no cover - every shipped transport has metrics
            self._resolve_hits = None
            self._resolve_misses = None
            self._resolve_invalidations = None

    # -- CoreDataAccess ------------------------------------------------------

    def generic_query(
        self,
        address: str,
        abstract_name: str,
        language_uri: str,
        expression: str,
        parameters: list[str] | None = None,
        dataset_format_uri: str | None = None,
    ) -> msg.GenericQueryResponse:
        request = msg.GenericQueryRequest(
            abstract_name=abstract_name,
            language_uri=language_uri,
            expression=expression,
            parameters=list(parameters or []),
            dataset_format_uri=dataset_format_uri,
        )
        return self.call(address, request, msg.GenericQueryResponse)

    def destroy(self, address: str, abstract_name: str) -> str:
        response = self.call(
            address,
            msg.DestroyDataResourceRequest(abstract_name=abstract_name),
            msg.DestroyDataResourceResponse,
        )
        return response.destroyed

    def get_property_document(
        self, address: str, abstract_name: str
    ) -> XmlElement:
        response = self.call(
            address,
            msg.GetDataResourcePropertyDocumentRequest(
                abstract_name=abstract_name
            ),
            msg.GetDataResourcePropertyDocumentResponse,
        )
        if response.document is None:
            raise ValueError("service returned an empty property document")
        return response.document

    # -- CoreResourceList ---------------------------------------------------

    def list_resources(self, address: str) -> list[str]:
        response = self.call(
            address, msg.GetResourceListRequest(), msg.GetResourceListResponse
        )
        return response.names

    def resolve(
        self, address: str, abstract_name: str, refresh: bool = False
    ) -> EndpointReference:
        """The EPR for *abstract_name*, cached across calls.

        ``refresh=True`` bypasses the cache (and overwrites the entry
        with the freshly resolved EPR).
        """
        key = (address, abstract_name)
        if not refresh:
            with self._resolve_lock:
                cached = self._resolve_cache.get(key)
            if cached is not None:
                if self._resolve_hits is not None:
                    self._resolve_hits.inc()
                return cached
        response = self.call(
            address,
            msg.ResolveRequest(abstract_name=abstract_name),
            msg.ResolveResponse,
        )
        if response.address is None:
            raise ValueError(f"service could not resolve {abstract_name!r}")
        with self._resolve_lock:
            self._resolve_cache[key] = response.address
        if self._resolve_misses is not None:
            self._resolve_misses.inc()
        return response.address

    def _on_call_fault(self, address: str, request: DaisMessage, exc) -> None:
        """Drop cached EPRs contradicted by a typed fault.

        The faulting call may have travelled through a cached EPR (so
        *address* is the EPR's own address) or named the resource
        directly — either way the stale entries are found by matching
        both the cache key's address and the cached EPR's address.
        """
        if isinstance(exc, ServiceNotFoundFault):
            dropped = self._drop_resolved(address, None)
        elif isinstance(exc, (InvalidResourceNameFault, ResourceUnknownFault)):
            name = getattr(request, "abstract_name", None)
            if name is None:
                return
            dropped = self._drop_resolved(address, name)
        else:
            return
        if dropped and self._resolve_invalidations is not None:
            self._resolve_invalidations.inc(dropped)

    def _drop_resolved(self, address: str, abstract_name: str | None) -> int:
        """Remove cache entries for *address* (all of them, or just the
        one naming *abstract_name*); returns how many were dropped."""
        with self._resolve_lock:
            stale = [
                key
                for key, epr in self._resolve_cache.items()
                if (abstract_name is None or key[1] == abstract_name)
                and (key[0] == address or epr.address == address)
            ]
            for key in stale:
                del self._resolve_cache[key]
        return len(stale)

    # -- asynchronous jobs ----------------------------------------------------

    def get_job_status(
        self, address: str, job_id: str
    ) -> jmsg.GetJobStatusResponse:
        """One GetJobStatus round trip (the job id rides the abstract-
        name slot, like every other DAIS request)."""
        return self.call(
            address,
            jmsg.GetJobStatusRequest(abstract_name=job_id),
            jmsg.GetJobStatusResponse,
        )

    def cancel_job(self, address: str, job_id: str) -> jmsg.CancelJobResponse:
        """Request cancellation; the response's phase says what won."""
        return self.call(
            address,
            jmsg.CancelJobRequest(abstract_name=job_id),
            jmsg.CancelJobResponse,
        )

    def wait_for_job(
        self,
        address: str,
        job_id: str,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
        raise_on_error: bool = True,
    ) -> jmsg.GetJobStatusResponse:
        """Poll until the job reaches a terminal phase.

        *policy* is a :class:`~repro.resilience.RetryPolicy` reused as
        the poll schedule: ``max_attempts`` bounds the number of status
        calls, the backoff curve spaces them, and ``budget_seconds``
        caps the total wait.  *sleep* is injectable so tests drive the
        wait from a virtual clock.  An ERROR outcome re-raises the
        job's original typed DAIS fault (``raise_on_error=False``
        returns the status instead); running out of schedule raises
        :class:`JobTimeoutError` carrying the last status.
        """
        policy = policy or DEFAULT_POLL_POLICY
        rng = rng or random.Random()
        waited = 0.0
        status = self.get_job_status(address, job_id)
        for poll in range(1, policy.max_attempts):
            if status.phase in TERMINAL_PHASES:
                break
            delay = policy.delay(poll, rng)
            if (
                policy.budget_seconds is not None
                and waited + delay > policy.budget_seconds
            ):
                break
            sleep(delay)
            waited += delay
            status = self.get_job_status(address, job_id)
        if status.phase not in TERMINAL_PHASES:
            raise JobTimeoutError(status)
        if raise_on_error and status.phase == ERROR:
            raise jmsg.fault_from_status(status)
        return status

    # -- WSRF profile ---------------------------------------------------------

    def get_resource_property(
        self, address: str, abstract_name: str, property_qname: QName
    ) -> list[XmlElement]:
        response = self.call(
            address,
            wmsg.GetResourcePropertyRequest(
                abstract_name=abstract_name, property_qname=property_qname
            ),
            wmsg.GetResourcePropertyResponse,
        )
        return response.properties

    def get_multiple_resource_properties(
        self, address: str, abstract_name: str, property_qnames: list[QName]
    ) -> list[XmlElement]:
        response = self.call(
            address,
            wmsg.GetMultipleResourcePropertiesRequest(
                abstract_name=abstract_name, property_qnames=property_qnames
            ),
            wmsg.GetMultipleResourcePropertiesResponse,
        )
        return response.properties

    def query_resource_properties(
        self,
        address: str,
        abstract_name: str,
        query: str,
        dialect: Optional[str] = None,
    ) -> list[XmlElement]:
        request = wmsg.QueryResourcePropertiesRequest(
            abstract_name=abstract_name, query=query
        )
        if dialect is not None:
            request.dialect = dialect
        response = self.call(
            address, request, wmsg.QueryResourcePropertiesResponse
        )
        return response.properties

    def set_termination_time(
        self,
        address: str,
        abstract_name: str,
        termination_time: Optional[float],
    ) -> wmsg.SetTerminationTimeResponse:
        return self.call(
            address,
            wmsg.SetTerminationTimeRequest(
                abstract_name=abstract_name,
                requested_termination_time=termination_time,
            ),
            wmsg.SetTerminationTimeResponse,
        )
