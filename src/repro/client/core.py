"""Consumer proxy for the WS-DAI core operations."""

from __future__ import annotations

from typing import Optional

from repro.client.base import DaisClient
from repro.core import messages as msg
from repro.core import wsrf_messages as wmsg
from repro.soap.addressing import EndpointReference
from repro.xmlutil import QName, XmlElement


class CoreClient(DaisClient):
    """CoreDataAccess + CoreResourceList + WSRF property/lifetime calls."""

    # -- CoreDataAccess ------------------------------------------------------

    def generic_query(
        self,
        address: str,
        abstract_name: str,
        language_uri: str,
        expression: str,
        parameters: list[str] | None = None,
        dataset_format_uri: str | None = None,
    ) -> msg.GenericQueryResponse:
        request = msg.GenericQueryRequest(
            abstract_name=abstract_name,
            language_uri=language_uri,
            expression=expression,
            parameters=list(parameters or []),
            dataset_format_uri=dataset_format_uri,
        )
        return self.call(address, request, msg.GenericQueryResponse)

    def destroy(self, address: str, abstract_name: str) -> str:
        response = self.call(
            address,
            msg.DestroyDataResourceRequest(abstract_name=abstract_name),
            msg.DestroyDataResourceResponse,
        )
        return response.destroyed

    def get_property_document(
        self, address: str, abstract_name: str
    ) -> XmlElement:
        response = self.call(
            address,
            msg.GetDataResourcePropertyDocumentRequest(
                abstract_name=abstract_name
            ),
            msg.GetDataResourcePropertyDocumentResponse,
        )
        if response.document is None:
            raise ValueError("service returned an empty property document")
        return response.document

    # -- CoreResourceList ---------------------------------------------------

    def list_resources(self, address: str) -> list[str]:
        response = self.call(
            address, msg.GetResourceListRequest(), msg.GetResourceListResponse
        )
        return response.names

    def resolve(self, address: str, abstract_name: str) -> EndpointReference:
        response = self.call(
            address,
            msg.ResolveRequest(abstract_name=abstract_name),
            msg.ResolveResponse,
        )
        if response.address is None:
            raise ValueError(f"service could not resolve {abstract_name!r}")
        return response.address

    # -- WSRF profile ---------------------------------------------------------

    def get_resource_property(
        self, address: str, abstract_name: str, property_qname: QName
    ) -> list[XmlElement]:
        response = self.call(
            address,
            wmsg.GetResourcePropertyRequest(
                abstract_name=abstract_name, property_qname=property_qname
            ),
            wmsg.GetResourcePropertyResponse,
        )
        return response.properties

    def get_multiple_resource_properties(
        self, address: str, abstract_name: str, property_qnames: list[QName]
    ) -> list[XmlElement]:
        response = self.call(
            address,
            wmsg.GetMultipleResourcePropertiesRequest(
                abstract_name=abstract_name, property_qnames=property_qnames
            ),
            wmsg.GetMultipleResourcePropertiesResponse,
        )
        return response.properties

    def query_resource_properties(
        self,
        address: str,
        abstract_name: str,
        query: str,
        dialect: Optional[str] = None,
    ) -> list[XmlElement]:
        request = wmsg.QueryResourcePropertiesRequest(
            abstract_name=abstract_name, query=query
        )
        if dialect is not None:
            request.dialect = dialect
        response = self.call(
            address, request, wmsg.QueryResourcePropertiesResponse
        )
        return response.properties

    def set_termination_time(
        self,
        address: str,
        abstract_name: str,
        termination_time: Optional[float],
    ) -> wmsg.SetTerminationTimeResponse:
        return self.call(
            address,
            wmsg.SetTerminationTimeRequest(
                abstract_name=abstract_name,
                requested_termination_time=termination_time,
            ),
            wmsg.SetTerminationTimeResponse,
        )
