"""The low-level request/response machinery shared by all clients."""

from __future__ import annotations

from typing import Type, TypeVar

from repro.core.messages import DaisMessage
from repro.resilience import coerce_resilience
from repro.soap.addressing import EndpointReference, MessageHeaders
from repro.soap.envelope import Envelope

ResponseT = TypeVar("ResponseT", bound=DaisMessage)


class DaisClient:
    """Sends DAIS messages over a transport and decodes typed responses.

    Every proxy (WS-DAI core, WS-DAIR, WS-DAIX, files) descends from
    this class, so all of them accept a *resilience* layer — either a
    :class:`repro.resilience.Resilience` instance or a bare
    :class:`~repro.resilience.RetryPolicy` — which is installed on the
    transport: retries, backoff and circuit breaking then apply to every
    call made through it.
    """

    def __init__(self, transport, resilience=None) -> None:
        self._transport = transport
        layer = coerce_resilience(resilience)
        if layer is not None:
            transport.resilience = layer

    @property
    def transport(self):
        return self._transport

    @property
    def resilience(self):
        """The resilience layer active on this client's transport."""
        return getattr(self._transport, "resilience", None)

    def call(
        self,
        address: str,
        request: DaisMessage,
        response_cls: Type[ResponseT],
        reference_parameters: tuple = (),
    ) -> ResponseT:
        """One request/response round trip; raises typed DAIS faults."""
        envelope = Envelope(
            headers=MessageHeaders(
                to=address,
                action=type(request).action(),
                reference_parameters=reference_parameters,
            ),
            payload=request.to_xml(),
        )
        response = self._transport.send(address, envelope)
        try:
            response.raise_if_fault()
        except Exception as exc:
            self._on_call_fault(address, request, exc)
            raise
        return response_cls.from_xml(response.payload)

    def _on_call_fault(self, address: str, request: DaisMessage, exc) -> None:
        """Observation hook for typed fault responses.

        Subclasses override it to react to specific faults — e.g.
        :class:`~repro.client.core.CoreClient` drops cached ``resolve``
        EPRs when the service or the named resource turns out to be
        gone.  The fault always propagates to the caller regardless.
        """

    def call_epr(
        self,
        epr: EndpointReference,
        request: DaisMessage,
        response_cls: Type[ResponseT],
    ) -> ResponseT:
        """Call through a data resource address: the EPR's reference
        parameters (carrying the abstract name) are echoed in the SOAP
        header, per WS-Addressing — while the abstract name also travels
        in the body, per DAIS."""
        return self.call(
            epr.address,
            request,
            response_cls,
            reference_parameters=epr.reference_parameters,
        )
