"""Raw-socket HTTP load generator for the event-loop server benchmarks.

``make bench-load`` needs to hold thousands of *open keep-alive
connections* against one :class:`~repro.transport.DaisHttpServer` —
far more than the pooled client transport (or ``http.client``) is
shaped for.  This generator opens ``connections`` plain sockets up
front, partitions them across ``threads`` driver threads, and drives
one full request/response exchange at a time per connection, measuring
wall latency per exchange.  A separate prober hits ``GET /healthz`` on
its own connection throughout, so the loop-thread fast path is
measured *under* the load, not beside it.

Responses are classified strictly: a 200 counts as served; a 503 must
carry a parseable SOAP ``ServiceBusyFault`` envelope to count as a
shed (anything else is an error); every other outcome — wrong status,
truncated body, connection reset — is a lost response.  The benchmark
gates on ``lost == 0``.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

__all__ = ["LoadReport", "percentile", "render_post", "run_load"]

_RECV = 65536


def percentile(values: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of *values* by nearest-rank."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - (0 if q < 1 else 1)))
    return ordered[rank]


def render_post(path: str, body: bytes) -> bytes:
    """One keep-alive SOAP POST as exact wire bytes."""
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: 127.0.0.1\r\n"
        f"Content-Type: text/xml; charset=utf-8\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + body


class _WireError(Exception):
    """The peer broke HTTP framing (or the socket died)."""


class _Conn:
    """A buffered raw connection that can read full HTTP responses."""

    __slots__ = ("sock", "buf")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buf = bytearray()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def _fill(self) -> None:
        piece = self.sock.recv(_RECV)
        if not piece:
            raise _WireError("connection closed mid-response")
        self.buf.extend(piece)

    def _read_line(self) -> bytes:
        while True:
            index = self.buf.find(b"\r\n")
            if index >= 0:
                line = bytes(self.buf[:index])
                del self.buf[: index + 2]
                return line
            self._fill()

    def _read_exact(self, count: int) -> bytes:
        while len(self.buf) < count:
            self._fill()
        data = bytes(self.buf[:count])
        del self.buf[:count]
        return data

    def read_response(self) -> tuple[int, bytes]:
        """Read one complete response → (status, body)."""
        status_line = self._read_line()
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise _WireError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: dict[bytes, bytes] = {}
        while True:
            line = self._read_line()
            if not line:
                break
            key, _, value = line.partition(b":")
            headers[key.strip().lower()] = value.strip()
        if headers.get(b"transfer-encoding", b"").lower() == b"chunked":
            body = bytearray()
            while True:
                size_token = self._read_line().split(b";", 1)[0].strip()
                try:
                    size = int(size_token, 16)
                except ValueError as err:
                    raise _WireError(f"bad chunk size {size_token!r}") from err
                if size == 0:
                    while self._read_line():  # drain trailers
                        pass
                    break
                body.extend(self._read_exact(size))
                if self._read_exact(2) != b"\r\n":
                    raise _WireError("missing chunk CRLF")
            return status, bytes(body)
        length = int(headers.get(b"content-length", b"0"))
        return status, self._read_exact(length)


@dataclass
class LoadReport:
    """The outcome of one load run."""

    connections: int
    threads: int
    requests: int
    ok: int
    sheds: int
    unparseable_sheds: int
    lost: int
    elapsed: float
    latencies: list[float] = field(repr=False)
    healthz_latencies: list[float] = field(repr=False)
    errors: list[str] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(self.latencies, q) * 1000.0

    def healthz_ms(self, q: float) -> float:
        return percentile(self.healthz_latencies, q) * 1000.0


def _shed_parses(body: bytes) -> bool:
    from repro.core.faults import ServiceBusyFault
    from repro.soap.envelope import Envelope

    try:
        Envelope.from_bytes(body).raise_if_fault()
    except ServiceBusyFault:
        return True
    except Exception:  # noqa: BLE001 - any other shape is a bad shed
        return False
    return False  # a 503 with no fault envelope is a bad shed


def run_load(
    port: int,
    path: str,
    body: bytes,
    *,
    connections: int,
    requests_per_connection: int = 1,
    threads: int = 16,
    timeout: float = 60.0,
    healthz_interval: float = 0.005,
) -> LoadReport:
    """Open ``connections`` keep-alive sockets, drive them from
    ``threads`` driver threads, and probe ``/healthz`` throughout."""
    request = render_post(path, body)
    conns: list[_Conn] = []
    for _ in range(connections):
        sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conns.append(_Conn(sock))

    lock = threading.Lock()
    latencies: list[float] = []
    errors: list[str] = []
    counts = {"ok": 0, "shed": 0, "bad_shed": 0, "lost": 0}

    def drive(partition: list[_Conn]) -> None:
        local_latencies = []
        local_counts = {"ok": 0, "shed": 0, "bad_shed": 0, "lost": 0}
        local_errors = []
        for _round in range(requests_per_connection):
            for conn in partition:
                started = time.monotonic()
                try:
                    conn.sock.sendall(request)
                    status, payload = conn.read_response()
                except (OSError, _WireError) as err:
                    local_counts["lost"] += 1
                    local_errors.append(repr(err))
                    continue
                local_latencies.append(time.monotonic() - started)
                if status == 200:
                    local_counts["ok"] += 1
                elif status == 503:
                    if _shed_parses(payload):
                        local_counts["shed"] += 1
                    else:
                        local_counts["bad_shed"] += 1
                        local_errors.append(f"unparseable 503: {payload[:120]!r}")
                else:
                    local_counts["lost"] += 1
                    local_errors.append(f"status {status}: {payload[:120]!r}")
        with lock:
            latencies.extend(local_latencies)
            errors.extend(local_errors[:20])
            for key, value in local_counts.items():
                counts[key] += value

    healthz_latencies: list[float] = []
    stop_probe = threading.Event()

    def probe() -> None:
        sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        probe_conn = _Conn(sock)
        wire = b"GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n"
        try:
            while not stop_probe.is_set():
                started = time.monotonic()
                probe_conn.sock.sendall(wire)
                status, _payload = probe_conn.read_response()
                healthz_latencies.append(time.monotonic() - started)
                if status != 200:
                    errors.append(f"healthz status {status}")
                stop_probe.wait(healthz_interval)
        except (OSError, _WireError) as err:
            errors.append(f"healthz probe died: {err!r}")
        finally:
            probe_conn.close()

    thread_count = max(1, min(threads, connections))
    partitions: list[list[_Conn]] = [[] for _ in range(thread_count)]
    for index, conn in enumerate(conns):
        partitions[index % thread_count].append(conn)

    drivers = [
        threading.Thread(target=drive, args=(partition,))
        for partition in partitions
    ]
    prober = threading.Thread(target=probe, daemon=True)
    started = time.monotonic()
    prober.start()
    for thread in drivers:
        thread.start()
    for thread in drivers:
        thread.join()
    elapsed = time.monotonic() - started
    stop_probe.set()
    prober.join(timeout=5)
    for conn in conns:
        conn.close()

    total = connections * requests_per_connection
    return LoadReport(
        connections=connections,
        threads=thread_count,
        requests=total,
        ok=counts["ok"],
        sheds=counts["shed"],
        unparseable_sheds=counts["bad_shed"],
        lost=counts["lost"],
        elapsed=elapsed,
        latencies=latencies,
        healthz_latencies=healthz_latencies,
        errors=errors,
    )
