"""Small reporting toolkit for the figure benchmarks.

Each benchmark prints one :class:`Table` (or a set of :class:`Series`)
shaped like the claim the corresponding paper figure illustrates, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the whole set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


def measure_wall(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best-of-*repeat* wall-clock seconds for one call of *fn*."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def format_bytes(count: float) -> str:
    """Human-readable byte count (fixed-point, stable width)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:8.1f} {unit}"
        value /= 1024
    return f"{value:8.1f} GiB"  # pragma: no cover - unreachable


@dataclass
class Table:
    """A fixed-width printable results table."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    note: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[str(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())


@dataclass
class Series:
    """One (x, y) series with a label, printable as aligned pairs."""

    label: str
    points: list[tuple[Any, Any]] = field(default_factory=list)

    def add(self, x: Any, y: Any) -> None:
        self.points.append((x, y))

    def xs(self) -> list[Any]:
        return [x for x, _ in self.points]

    def ys(self) -> list[Any]:
        return [y for _, y in self.points]
