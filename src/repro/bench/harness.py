"""Small reporting toolkit for the figure benchmarks.

Each benchmark prints one :class:`Table` (or a set of :class:`Series`)
shaped like the claim the corresponding paper figure illustrates, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the whole set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


def measure_wall(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best-of-*repeat* wall-clock seconds for one call of *fn*."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def format_bytes(count: float) -> str:
    """Human-readable byte count (fixed-point, stable width)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:8.1f} {unit}"
        value /= 1024
    return f"{value:8.1f} GiB"  # pragma: no cover - unreachable


@dataclass
class Table:
    """A fixed-width printable results table."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    note: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[str(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())


@dataclass
class SpanRollup:
    """Per-span-name totals across one traced run."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    #: Sums of every numeric counter attribute seen on these spans
    #: (``rows_scanned``, ``request_bytes``, …).
    totals: dict[str, float] = field(default_factory=dict)

    def total(self, key: str) -> float:
        return self.totals.get(key, 0)


def summarize_spans(spans) -> dict[str, SpanRollup]:
    """Roll a list of :class:`repro.obs.Span` up by span name.

    Numeric attributes are summed, which is exactly the shape the figure
    claims need: total bytes moved per transport leg, total rows scanned
    per operator tree — measured from the trace rather than inferred.
    """
    rollups: dict[str, SpanRollup] = {}
    for span in spans:
        rollup = rollups.get(span.name)
        if rollup is None:
            rollup = rollups[span.name] = SpanRollup(span.name)
        rollup.count += 1
        rollup.total_seconds += span.duration_seconds
        for key, value in span.attributes.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            rollup.totals[key] = rollup.totals.get(key, 0) + value
    return rollups


def span_table(title: str, spans, note: str = "") -> Table:
    """A printable per-span-name summary (count, time, counter totals)."""
    table = Table(title, ["span", "count", "total ms", "counters"], note=note)
    rollups = summarize_spans(spans)
    for name in sorted(rollups):
        rollup = rollups[name]
        counters = " ".join(
            f"{key}={int(value) if value == int(value) else round(value, 3)}"
            for key, value in sorted(rollup.totals.items())
        )
        table.add(
            name, rollup.count, f"{rollup.total_seconds * 1e3:8.2f}", counters
        )
    return table


def trace_forest(spans) -> dict[str, list]:
    """Group spans by trace id (insertion order preserved per trace)."""
    forest: dict[str, list] = {}
    for span in spans:
        forest.setdefault(span.trace_id, []).append(span)
    return forest


def assert_single_connected_trace(spans, root_name: str | None = None):
    """Assert *spans* form ONE trace whose parent links all resolve.

    Every span must share a single trace id; exactly one span may be the
    root (no parent), and every other span's ``parent_id`` must name a
    span in the same set — i.e. the trace is a connected tree, not a
    forest of fragments.  Returns the root span.

    :param root_name: when given, additionally assert the root span has
        this name (e.g. the consumer-side span, proving the consumer is
        the ancestor of every service/executor span).
    """
    spans = list(spans)
    if not spans:
        raise AssertionError("no spans recorded")
    forest = trace_forest(spans)
    if len(forest) != 1:
        fragments = {
            trace_id: sorted({span.name for span in members})
            for trace_id, members in forest.items()
        }
        raise AssertionError(
            f"expected one connected trace, got {len(forest)}: {fragments}"
        )
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    orphans = [
        span
        for span in spans
        if span.parent_id is not None and span.parent_id not in ids
    ]
    if len(roots) != 1 or orphans:
        raise AssertionError(
            f"trace is not a connected tree: roots="
            f"{[span.name for span in roots]} orphans="
            f"{[span.name for span in orphans]}"
        )
    root = roots[0]
    if root_name is not None and root.name != root_name:
        raise AssertionError(
            f"expected root span {root_name!r}, got {root.name!r}"
        )
    return root


@dataclass
class Series:
    """One (x, y) series with a label, printable as aligned pairs."""

    label: str
    points: list[tuple[Any, Any]] = field(default_factory=list)

    def add(self, x: Any, y: Any) -> None:
        self.points.append((x, y))

    def xs(self) -> list[Any]:
        return [x for x, _ in self.points]

    def ys(self) -> list[Any]:
        return [y for _, y in self.points]
