"""Measurement and reporting helpers shared by the figure benchmarks."""

from repro.bench.harness import (
    Series,
    SpanRollup,
    Table,
    format_bytes,
    measure_wall,
    span_table,
    summarize_spans,
)
from repro.bench.loadgen import LoadReport, percentile, render_post, run_load

__all__ = [
    "LoadReport",
    "percentile",
    "render_post",
    "run_load",
    "Series",
    "SpanRollup",
    "Table",
    "format_bytes",
    "measure_wall",
    "span_table",
    "summarize_spans",
]
