"""Measurement and reporting helpers shared by the figure benchmarks."""

from repro.bench.harness import (
    Series,
    Table,
    format_bytes,
    measure_wall,
)

__all__ = ["Series", "Table", "format_bytes", "measure_wall"]
