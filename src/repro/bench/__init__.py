"""Measurement and reporting helpers shared by the figure benchmarks."""

from repro.bench.harness import (
    Series,
    SpanRollup,
    Table,
    format_bytes,
    measure_wall,
    span_table,
    summarize_spans,
)

__all__ = [
    "Series",
    "SpanRollup",
    "Table",
    "format_bytes",
    "measure_wall",
    "span_table",
    "summarize_spans",
]
