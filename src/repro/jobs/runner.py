"""The job runner: a bounded worker pool over the durable queue.

Workers loop claim → execute → commit.  Execution is at-least-once: a
crash or an expired lease hands the job back, and the idempotent
terminal commit in :class:`~repro.jobs.manager.JobManager` makes the
re-run converge.  Each execution is one ``job.execute`` span carrying a
``submitted-by`` link to the submitting trace, so submit → execute →
fetch renders as one connected story in the trace tree.

``run_once()``/``drain()`` run the same claim-execute-commit path
inline on the calling thread — deterministic tests and the CLI demo use
them; production deployments call ``start()``.
"""

from __future__ import annotations

import threading
import time

from repro.jobs.manager import JobManager
from repro.jobs.model import Job
from repro.obs import get_tracer
from repro.soap.fault import SoapFault

__all__ = ["JobRunner", "execute_claimed"]


def execute_claimed(manager: JobManager, job: Job) -> bool:
    """Run one claimed job to a terminal commit; True when this call won.

    The executor materializes the result (typically: evaluate the
    factory expression and register the derived resource), then the
    completion is offered to the manager.  Losing the commit race —
    because a duplicate run already completed, the lease expired and a
    re-run won, or a cancel landed first — triggers the kind's rollback
    hook so the losing materialization is taken back out.  Faults
    commit ERROR carrying the original typed fault.
    """
    tracer = get_tracer()
    with tracer.span(
        "job.execute", job=job.job_id, kind=job.kind, attempt=job.attempts
    ) as span:
        if span.recording and job.trace and job.trace[0] != span.trace_id:
            span.add_link(job.trace[0], job.trace[1], relation="submitted-by")
        executor = manager.executor_for(job.kind)
        try:
            result = executor(job)
        except SoapFault as fault:
            span.mark_fault(str(fault))
            return manager.fail(job.job_id, type(fault).__name__, str(fault))
        except Exception as exc:  # noqa: BLE001 - job boundary
            span.mark_fault(str(exc))
            return manager.fail(job.job_id, "InternalError", str(exc))
        won = manager.complete(job.job_id, result)
        if not won:
            rollback = manager.rollback_for(job.kind)
            if rollback is not None:
                try:
                    rollback(job, result)
                except Exception as exc:  # noqa: BLE001 - rollback boundary
                    # A failed rollback leaks the losing materialization
                    # but must not take the worker down with it — make
                    # the leak visible instead of silent.
                    span.record_exception(exc)
                    manager.errors.inc(where="rollback")
            span.set_attribute("outcome", "lost-terminal-race")
        return won


class JobRunner:
    """Runs jobs from a :class:`JobManager` on a bounded thread pool."""

    def __init__(
        self,
        manager: JobManager,
        workers: int = 2,
        poll_interval: float = 0.02,
        lease_seconds: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.manager = manager
        self.workers = workers
        self.poll_interval = poll_interval
        self.lease_seconds = lease_seconds
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    # -- inline execution (tests, demos, draining) -------------------------

    def run_once(self, worker: str = "inline") -> Job | None:
        """Claim and execute one job on the calling thread."""
        job = self.manager.claim(worker, self.lease_seconds)
        if job is None:
            return None
        execute_claimed(self.manager, job)
        return self.manager.get(job.job_id)

    def drain(self, worker: str = "inline", limit: int = 10_000) -> int:
        """Run until no job is claimable; returns executions performed."""
        executed = 0
        while executed < limit and self.run_once(worker) is not None:
            executed += 1
        return executed

    # -- background pool ---------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("runner already started")
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{index}",),
                name=f"job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    def __enter__(self) -> "JobRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _worker_loop(self, worker: str) -> None:
        while not self._stop.is_set():
            job = self.manager.claim(worker, self.lease_seconds)
            if job is None:
                # Idle: nothing runnable right now.  time.sleep (not the
                # manager clock) — the pool waits in real time even when
                # job leases run on a virtual clock.
                time.sleep(self.poll_interval)
                continue
            try:
                execute_claimed(self.manager, job)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                # Anything escaping execute_claimed (journal IO, a
                # broken executor registration, …) used to vanish here;
                # count it and leave a fault span so the claim that
                # went nowhere can be traced.
                with get_tracer().span(
                    "job.worker.error", worker=worker, job=job.job_id
                ) as span:
                    span.record_exception(exc)
                    span.mark_fault(str(exc))
                self.manager.errors.inc(where="worker-loop")
