"""Wire namespace for the asynchronous-jobs extension.

The DAIS specifications leave long-running execution to the factory
pattern's "extensibility points" (paper §2.2); this namespace holds the
message vocabulary that makes the implied job explicit — status, cancel
and the job-phase property — in the same 2005 GGF namespace family as
the rest of the wire surface.
"""

from repro.xmlutil.names import DEFAULT_REGISTRY

#: The asynchronous-jobs extension namespace.
WSDAIJ_NS = "http://www.ggf.org/namespaces/2005/05/WS-DAI-Jobs"

DEFAULT_REGISTRY.register("wsdaij", WSDAIJ_NS)

#: ExecutionMode values carried in factory requests.
MODE_SYNCHRONOUS = "synchronous"
MODE_ASYNCHRONOUS = "asynchronous"
