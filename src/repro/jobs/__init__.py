"""Durable asynchronous job orchestration behind the DAIS factories.

The factory pattern's response — "here is a reference, fetch the data
later" — already *is* an asynchronous contract; this package gives it a
durable spine.  A factory invoked with ``ExecutionMode=asynchronous``
submits a :class:`Job` into a :class:`JobManager` instead of executing
inline; a bounded :class:`JobRunner` pool claims jobs under expiring
leases and executes them at-least-once; every phase transition is
journalled (fsync'd, append-only) before it becomes visible, so a crash
at any instant replays back to a legal state with no lost jobs and no
double-materialized results.

See ``docs/JOBS.md`` for the design tour and invariants.
"""

from repro.jobs.journal import (
    JobJournal,
    JournalCorruptError,
    parse_journal_text,
    read_journal,
    replay_records,
)
from repro.jobs.manager import JobManager, UnknownJobError
from repro.jobs.messages import (
    CancelJobRequest,
    CancelJobResponse,
    GetJobStatusRequest,
    GetJobStatusResponse,
    fault_from_status,
    job_set_element,
    job_status_element,
)
from repro.jobs.model import (
    CANCELLED,
    COMPLETED,
    ERROR,
    EXECUTING,
    LEGAL_TRANSITIONS,
    PENDING,
    PHASES,
    TERMINAL_PHASES,
    IllegalTransitionError,
    Job,
    check_transition,
)
from repro.jobs.namespaces import (
    MODE_ASYNCHRONOUS,
    MODE_SYNCHRONOUS,
    WSDAIJ_NS,
)
from repro.jobs.runner import JobRunner, execute_claimed

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "ERROR",
    "EXECUTING",
    "LEGAL_TRANSITIONS",
    "MODE_ASYNCHRONOUS",
    "MODE_SYNCHRONOUS",
    "PENDING",
    "PHASES",
    "TERMINAL_PHASES",
    "WSDAIJ_NS",
    "CancelJobRequest",
    "CancelJobResponse",
    "GetJobStatusRequest",
    "GetJobStatusResponse",
    "IllegalTransitionError",
    "Job",
    "JobJournal",
    "JobManager",
    "JobRunner",
    "JournalCorruptError",
    "UnknownJobError",
    "check_transition",
    "execute_claimed",
    "fault_from_status",
    "job_set_element",
    "job_status_element",
    "parse_journal_text",
    "read_journal",
    "replay_records",
]
