"""The crash-safe job journal: append-only, fsync'd JSONL.

Durability model: every phase-changing decision the
:class:`~repro.jobs.manager.JobManager` makes is appended here as one
JSON line and fsync'd *before* the decision takes effect for callers.
On restart, :func:`replay` folds the records back into the job table —
whatever the process was doing when it died, the journal holds a prefix
of the decision sequence, and replaying any prefix yields a legal state
machine (the crash-recovery suite kills the journal at every byte
offset and asserts exactly that).

A crash mid-append can leave one torn (partial) final line; replay
drops it — the decision it recorded never became visible, so dropping
it is the correct outcome.  A corrupt line *before* the final one means
real damage, not a crash, and raises :class:`JournalCorruptError`.

Record schema (one JSON object per line)::

    {"seq": 3, "event": "claimed", "job": "urn:dais:job:…",
     "at": 12.5, ...event fields}

Events: ``submitted`` (kind, payload), ``claimed`` (worker, attempts,
lease_expires), ``lease-expired`` (worker), ``completed`` (result),
``failed`` (fault_type, fault_message), ``cancelled``,
``cancel-requested``, ``recovered``, ``forgotten``.
"""

from __future__ import annotations

import io
import json
import os
from typing import Optional

__all__ = ["JobJournal", "JournalCorruptError", "replay_records"]


class JournalCorruptError(RuntimeError):
    """A non-final journal line failed to parse — the file is damaged."""


class JobJournal:
    """Appends job records to a JSONL file, fsync per record.

    ``path=None`` builds an in-memory journal (no durability — unit
    tests and the synchronous-only deployments that never read it
    back).  ``fsync=False`` keeps the write+flush but skips the
    ``os.fsync`` — the crash suite uses it because it simulates crashes
    by truncating bytes, not by killing the process.
    """

    def __init__(self, path: Optional[str] = None, fsync: bool = True) -> None:
        self.path = path
        self._fsync = fsync and path is not None
        if path is None:
            self._file = io.StringIO()
        else:
            _trim_torn_tail(path)
            self._file = open(path, "a", encoding="utf-8")
        self._seq = 0

    def append(self, event: str, job_id: str, at: float, **fields) -> dict:
        """Write one record and make it durable; returns the record."""
        self._seq += 1
        record = {"seq": self._seq, "event": event, "job": job_id, "at": at}
        for key in sorted(fields):
            if fields[key] is not None:
                record[key] = fields[key]
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        return record

    def close(self) -> None:
        if not self._file.closed and not isinstance(self._file, io.StringIO):
            self._file.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay ------------------------------------------------------------

    def records(self) -> list[dict]:
        """Parse this journal's own backing store (memory or file)."""
        if isinstance(self._file, io.StringIO):
            return parse_journal_text(self._file.getvalue())
        self._file.flush()
        return read_journal(self.path)


def _trim_torn_tail(path: str) -> None:
    """Drop a torn (unterminated) final line before appending.

    A crash mid-append leaves the file without a trailing newline; the
    torn record never became durable, so it must be removed *before*
    new appends — otherwise the next record would concatenate onto the
    partial line and turn a survivable crash into mid-file corruption.
    """
    try:
        with open(path, "rb+") as handle:
            data = handle.read()
            if data and not data.endswith(b"\n"):
                handle.truncate(data.rfind(b"\n") + 1)
    except FileNotFoundError:
        pass


def read_journal(path: str) -> list[dict]:
    """Read and parse a journal file; missing file = empty journal."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        return []
    return parse_journal_text(text)


def parse_journal_text(text: str) -> list[dict]:
    """Parse JSONL journal *text*, tolerating one torn final line."""
    records: list[dict] = []
    lines = text.split("\n")
    # A well-formed journal ends with "\n", so the final split element is
    # "".  Anything else in the last position is a torn tail to drop —
    # even when it happens to parse: a record is durable only once its
    # newline is on disk, and :func:`_trim_torn_tail` removes the same
    # bytes before the journal is appended to again.
    if lines and lines[-1]:
        lines = lines[:-1]
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # Every surviving line was newline-terminated, i.e. written
            # whole — a parse failure here is damage, not a crash.
            raise JournalCorruptError(
                f"journal line {index + 1} is corrupt: {line[:80]!r}"
            ) from None
        if not isinstance(record, dict):
            raise JournalCorruptError(
                f"journal line {index + 1} is not an object"
            )
        records.append(record)
    return records


def replay_records(records: list[dict]) -> dict[str, "Job"]:
    """Fold journal *records* into a job table.

    Pure function of the record list: replaying any prefix of a journal
    yields the job table as of that decision, with one adjustment — a
    job the journal leaves EXECUTING has no live worker in this process,
    so it is *not* touched here; the manager's
    :meth:`~repro.jobs.manager.JobManager.recover` hands such jobs back
    to PENDING (journalling the ``recovered`` edge so the decision is
    itself durable).
    """
    from repro.jobs.model import (
        CANCELLED,
        COMPLETED,
        ERROR,
        EXECUTING,
        PENDING,
        Job,
    )

    jobs: dict[str, Job] = {}
    for record in records:
        event = record.get("event", "")
        job_id = record.get("job", "")
        at = float(record.get("at", 0.0))
        if event == "submitted":
            jobs[job_id] = Job(
                job_id=job_id,
                kind=record.get("kind", ""),
                payload=dict(record.get("payload") or {}),
                phase=PENDING,
                created_at=at,
            )
            continue
        job = jobs.get(job_id)
        if job is None or job.terminal:
            # A record for an unknown job can only follow mid-file damage
            # (replay of a *prefix* always sees submissions first); a
            # record after a terminal one means the writer lost a race it
            # had already journalled — neither occurs in a valid journal.
            raise JournalCorruptError(
                f"journal event {event!r} for "
                + ("unknown" if job is None else "terminal")
                + f" job {job_id!r}"
            )
        if event == "claimed":
            job.transition(EXECUTING)
            job.worker = record.get("worker")
            job.attempts = int(record.get("attempts", job.attempts + 1))
            job.lease_expires = record.get("lease_expires")
        elif event == "lease-expired":
            job.transition(PENDING)
            job.worker = None
            job.lease_expires = None
        elif event == "completed":
            job.transition(COMPLETED)
            job.result = dict(record.get("result") or {})
            job.worker = None
            job.lease_expires = None
        elif event == "failed":
            job.transition(ERROR)
            job.fault_type = record.get("fault_type", "")
            job.fault_message = record.get("fault_message", "")
            job.worker = None
            job.lease_expires = None
        elif event == "cancelled":
            job.transition(CANCELLED)
            job.worker = None
            job.lease_expires = None
        elif event == "cancel-requested":
            job.cancel_requested = True
        elif event == "recovered":
            job.transition(PENDING)
            job.worker = None
            job.lease_expires = None
        elif event == "forgotten":
            del jobs[job_id]
        else:
            raise JournalCorruptError(f"unknown journal event {event!r}")
    return jobs
