"""The job state machine behind the asynchronous factory pattern.

WS-DAI's indirect access (paper §3, Figure 1 right) *is* an
asynchronous job-submission API in disguise: the factory request names
the work, the response hands back a reference, and the results are
fetched later through the derived resource.  This module makes the
implied job explicit — one :class:`Job` per asynchronous factory
request, moving through a small, strictly legal state machine::

    PENDING ──▶ EXECUTING ──▶ COMPLETED
       │            │    ╲──▶ ERROR
       │            │
       ╰── CANCELLED ╯          (EXECUTING ──▶ PENDING on lease expiry
                                 or crash recovery — at-least-once)

The terminal phases are absorbing: once a job is COMPLETED, ERROR or
CANCELLED no further transition is legal, which is what makes duplicate
completions, stale-lease completions and cancel-vs-complete races
converge to exactly one outcome (see :mod:`repro.jobs.manager`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Job phases, modelled on the IVOA DALI/UWS execution phases mapped
#: onto the DAIS factory pattern.
PENDING = "PENDING"
EXECUTING = "EXECUTING"
COMPLETED = "COMPLETED"
ERROR = "ERROR"
CANCELLED = "CANCELLED"

PHASES = (PENDING, EXECUTING, COMPLETED, ERROR, CANCELLED)

#: Absorbing phases: a job here never moves again.
TERMINAL_PHASES = frozenset({COMPLETED, ERROR, CANCELLED})

#: The full legal-transition relation.  ``EXECUTING → PENDING`` is the
#: at-least-once edge: a lease expired or the process crashed, so the
#: work is handed back to the queue.
LEGAL_TRANSITIONS: dict[str, frozenset[str]] = {
    PENDING: frozenset({EXECUTING, CANCELLED}),
    EXECUTING: frozenset({COMPLETED, ERROR, CANCELLED, PENDING}),
    COMPLETED: frozenset(),
    ERROR: frozenset(),
    CANCELLED: frozenset(),
}


class IllegalTransitionError(RuntimeError):
    """An attempted job-phase transition outside :data:`LEGAL_TRANSITIONS`.

    Raised by :meth:`Job.transition` — and never expected to escape the
    manager, which checks phases under its lock before transitioning.
    The crash-recovery suite asserts that *replay* never produces one.
    """


def check_transition(current: str, target: str) -> None:
    """Raise :class:`IllegalTransitionError` unless current → target is legal."""
    if target not in LEGAL_TRANSITIONS.get(current, frozenset()):
        raise IllegalTransitionError(
            f"illegal job transition {current} -> {target}"
        )


@dataclass
class Job:
    """One asynchronous factory execution and its durable state.

    ``payload`` and ``result`` are JSON-plain dicts (strings, numbers,
    lists, None) so every field survives the journal round trip
    unchanged.  ``result`` conventionally carries the derived resource's
    ``abstract_name`` and the address of the service it was registered
    with; ``fault_type``/``fault_message`` carry the original DAIS fault
    for ERROR jobs.
    """

    job_id: str
    kind: str
    payload: dict = field(default_factory=dict)
    phase: str = PENDING
    #: Submission time (manager clock), seconds.
    created_at: float = 0.0
    #: Execution attempts started so far (1 after the first claim).
    attempts: int = 0
    #: Identity of the worker holding the current lease, if EXECUTING.
    worker: Optional[str] = None
    #: Absolute lease expiry (manager clock); None unless EXECUTING.
    lease_expires: Optional[float] = None
    result: Optional[dict] = None
    fault_type: str = ""
    fault_message: str = ""
    #: Set by CancelJob while the job is EXECUTING: the executor should
    #: stop cooperatively; the cancel itself already committed.
    cancel_requested: bool = False
    #: (trace_id, span_id) of the submitting request, when traced.
    trace: Optional[tuple] = None

    @property
    def terminal(self) -> bool:
        return self.phase in TERMINAL_PHASES

    def transition(self, target: str) -> None:
        """Move to *target*, enforcing the legal-transition relation."""
        check_transition(self.phase, target)
        self.phase = target

    def lease_expired(self, now: float) -> bool:
        """True when this job is EXECUTING past its lease."""
        return (
            self.phase == EXECUTING
            and self.lease_expires is not None
            and self.lease_expires <= now
        )
