"""The durable job queue: submit, claim under lease, converge to one outcome.

Concurrency contract (the claim-then-invoke pattern from the PR-4
service fabric, applied to jobs):

* **Claim** — ``claim()`` picks the oldest runnable job and moves it to
  EXECUTING under the manager lock, stamping a lease.  Two workers
  racing one job cannot both win: the phase check and the transition
  are one critical section.
* **Lease expiry** — an EXECUTING job whose lease has passed is
  runnable again (journalled ``lease-expired`` then ``claimed``); the
  stale worker keeps running, which is fine because…
* **Idempotent completion** — ``complete()``/``fail()``/``cancel()``
  commit a terminal phase under the lock; the *first* committer wins
  and every later attempt returns ``False`` without journalling.  The
  caller that materialized a result resource and then lost the commit
  race rolls its materialization back (see the factory executors), so
  at-least-once execution still converges to exactly one result
  resource.
* **Durability** — the journal line is written and fsync'd inside the
  critical section, *before* the new phase is visible to any other
  thread.  A crash therefore never leaves an acknowledged decision
  unjournalled; replaying the journal prefix reconstructs the table.

Observability: every transition is a ``job-*`` event in the WSRF
lifecycle journal and a ``jobs.*`` counter; submit records the current
trace so the execute span can link back to it.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.core.names import mint_abstract_name
from repro.jobs.journal import JobJournal, read_journal, replay_records
from repro.jobs.model import (
    CANCELLED,
    COMPLETED,
    ERROR,
    EXECUTING,
    PENDING,
    TERMINAL_PHASES,
    Job,
)
from repro.obs import MetricsRegistry
from repro.obs.journal import record_event
from repro.obs.tracing import current_span
from repro.wsrf.clock import Clock, SystemClock

__all__ = ["JobManager", "UnknownJobError"]

#: Abstract-name hint for minted job ids (jobs are WS-Resources: the
#: job id rides in the DataResourceAbstractName slot of the status and
#: cancel messages).
JOB_NAME_HINT = "job"


class UnknownJobError(KeyError):
    """No job with that id (the service maps this to a typed DAIS fault)."""


class JobManager:
    """The durable job table one deployment's factories submit into."""

    def __init__(
        self,
        journal: JobJournal | None = None,
        clock: Clock | None = None,
        default_lease_seconds: float = 30.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.journal = journal if journal is not None else JobJournal()
        self.clock = clock if clock is not None else SystemClock()
        self.default_lease_seconds = default_lease_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        #: Submission order, for oldest-first claiming.
        self._order: list[str] = []
        self._executors: dict[str, Callable[[Job], dict]] = {}
        #: Rollback hooks per kind: invoked with (job, result) when a
        #: completion loses the terminal race after materializing.
        self._rollbacks: dict[str, Callable[[Job, dict], None]] = {}
        #: Optional WSRF lifetime integration: terminal jobs get a
        #: termination time and are swept away like any soft-state
        #: resource (set via :meth:`attach_lifetime`).
        self._lifetime = None
        self._terminal_ttl: float | None = None

        counter = self.metrics.counter
        self._submitted = counter("jobs.submitted", "jobs accepted")
        self._claimed = counter("jobs.claimed", "job claims granted")
        self._completed = counter("jobs.completed", "jobs completed")
        self._failed = counter("jobs.failed", "jobs ended in ERROR")
        self._cancelled = counter("jobs.cancelled", "jobs cancelled")
        self._expired = counter(
            "jobs.lease_expired", "leases expired and reclaimed"
        )
        self._recovered = counter(
            "jobs.recovered", "in-flight jobs recovered from the journal"
        )
        self._duplicates = counter(
            "jobs.duplicate_outcomes",
            "terminal decisions that lost the first-writer race",
        )
        #: Exceptions caught (and survived) at job-system boundaries,
        #: labelled by ``where`` — the runner's worker loop, rollback
        #: hooks.  These used to vanish silently.
        self.errors = counter(
            "jobs.errors", "exceptions swallowed at job-system boundaries"
        )

    # -- executors ---------------------------------------------------------

    def register_executor(
        self,
        kind: str,
        executor: Callable[[Job], dict],
        rollback: Callable[[Job, dict], None] | None = None,
    ) -> None:
        """Register the function that runs jobs of *kind*.

        *executor* returns the result dict for ``complete()``.
        *rollback* undoes a materialized result when the completion
        loses the terminal race (duplicate completion, cancel-vs-
        complete) — without one, a lost race would leak the registered
        derived resource (the reservation-leak fix this module exists
        to make structural).
        """
        self._executors[kind] = executor
        if rollback is not None:
            self._rollbacks[kind] = rollback

    def executor_for(self, kind: str) -> Callable[[Job], dict]:
        try:
            return self._executors[kind]
        except KeyError:
            raise UnknownJobError(f"no executor for job kind {kind!r}") from None

    def rollback_for(self, kind: str) -> Callable[[Job, dict], None] | None:
        return self._rollbacks.get(kind)

    # -- lifetime ----------------------------------------------------------

    def attach_lifetime(self, lifetime, terminal_ttl: float) -> None:
        """Tie terminal job records to a WSRF LifetimeManager: a job that
        reaches COMPLETED/ERROR/CANCELLED is registered with a
        *terminal_ttl*-second termination time and forgotten when the
        soft-state sweep destroys it."""
        self._lifetime = lifetime
        self._terminal_ttl = terminal_ttl

    def _schedule_forget(self, job_id: str) -> None:
        if self._lifetime is None:
            return
        if not self._lifetime.registered(job_id):
            self._lifetime.register(job_id, self._forget, self._terminal_ttl)

    def _forget(self, job_id: str) -> None:
        """Lifetime destructor: drop a terminal job record."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or not job.terminal:
                return
            self.journal.append("forgotten", job_id, self.clock.now())
            del self._jobs[job_id]
            self._order.remove(job_id)
        record_event("job-forgotten", job_id)

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            return job

    def jobs(self, phase: str | None = None) -> list[Job]:
        """Snapshot in submission order, optionally filtered by phase."""
        with self._lock:
            snapshot = [self._jobs[job_id] for job_id in self._order]
        if phase is None:
            return snapshot
        return [job for job in snapshot if job.phase == phase]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs():
            counts[job.phase] = counts.get(job.phase, 0) + 1
        return counts

    # -- submit ------------------------------------------------------------

    def submit(
        self, kind: str, payload: dict | None = None, job_id: str | None = None
    ) -> Job:
        """Accept a job; durable before this returns."""
        job_id = job_id or str(mint_abstract_name(JOB_NAME_HINT))
        span = current_span()
        job = Job(
            job_id=job_id,
            kind=kind,
            payload=dict(payload or {}),
            created_at=self.clock.now(),
            trace=(span.trace_id, span.span_id) if span.recording else None,
        )
        with self._lock:
            if job_id in self._jobs:
                raise ValueError(f"job {job_id!r} already submitted")
            self.journal.append(
                "submitted",
                job_id,
                job.created_at,
                kind=kind,
                payload=job.payload,
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._submitted.inc(kind=kind)
        record_event("job-submitted", job_id, kind=kind)
        return job

    # -- claim / lease -----------------------------------------------------

    def claim(
        self, worker: str = "worker", lease_seconds: float | None = None
    ) -> Job | None:
        """Claim the oldest runnable job under a lease; None when idle.

        Runnable = PENDING, or EXECUTING with an expired lease (the
        at-least-once edge: the stale worker may still finish, but the
        first terminal commit wins).
        """
        lease = (
            lease_seconds
            if lease_seconds is not None
            else self.default_lease_seconds
        )
        now = self.clock.now()
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.phase == PENDING:
                    break
                if job.lease_expired(now):
                    self.journal.append(
                        "lease-expired", job_id, now, worker=job.worker
                    )
                    job.transition(PENDING)
                    job.worker = None
                    job.lease_expires = None
                    self._expired.inc()
                    record_event("job-lease-expired", job_id)
                    break
            else:
                return None
            expires = now + lease
            self.journal.append(
                "claimed",
                job.job_id,
                now,
                worker=worker,
                attempts=job.attempts + 1,
                lease_expires=expires,
            )
            job.transition(EXECUTING)
            job.worker = worker
            job.attempts += 1
            job.lease_expires = expires
        self._claimed.inc()
        record_event(
            "job-claimed", job.job_id, worker=worker, attempt=job.attempts
        )
        return job

    def extend_lease(
        self, job_id: str, worker: str, lease_seconds: float | None = None
    ) -> bool:
        """Heartbeat: push the lease out, if *worker* still holds it."""
        lease = (
            lease_seconds
            if lease_seconds is not None
            else self.default_lease_seconds
        )
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.phase != EXECUTING or job.worker != worker:
                return False
            job.lease_expires = self.clock.now() + lease
            return True

    # -- terminal commits --------------------------------------------------

    def _commit_terminal(self, job_id: str, target: str, **fields) -> bool:
        """First-writer-wins terminal transition; False when lost."""
        event = {COMPLETED: "completed", ERROR: "failed", CANCELLED: "cancelled"}[
            target
        ]
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            if job.terminal:
                self._duplicates.inc(outcome=target)
                return False
            self.journal.append(event, job_id, self.clock.now(), **fields)
            job.transition(target)
            job.worker = None
            job.lease_expires = None
            if target == COMPLETED:
                job.result = dict(fields.get("result") or {})
            elif target == ERROR:
                job.fault_type = fields.get("fault_type", "")
                job.fault_message = fields.get("fault_message", "")
            self._schedule_forget(job_id)
        record_event(f"job-{event}", job_id, **fields)
        return True

    def complete(self, job_id: str, result: dict | None = None) -> bool:
        """Commit COMPLETED; False when another outcome already won —
        the caller must then roll back anything it materialized."""
        won = self._commit_terminal(job_id, COMPLETED, result=dict(result or {}))
        if won:
            self._completed.inc()
        return won

    def fail(self, job_id: str, fault_type: str, fault_message: str) -> bool:
        """Commit ERROR carrying the original fault; False when lost."""
        won = self._commit_terminal(
            job_id, ERROR, fault_type=fault_type, fault_message=fault_message
        )
        if won:
            self._failed.inc(fault=fault_type or "unknown")
        return won

    def cancel(self, job_id: str) -> Job:
        """CancelJob semantics.

        PENDING → CANCELLED immediately.  EXECUTING → CANCELLED too (the
        cancel commits the terminal phase; the in-flight executor loses
        the completion race and rolls back), with ``cancel_requested``
        left set so a cooperative executor can stop early.  A job already
        terminal is returned unchanged — cancel after the fact is a
        no-op, not a fault.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            if job.terminal:
                return job
            job.cancel_requested = True
        won = self._commit_terminal(job_id, CANCELLED)
        if won:
            self._cancelled.inc()
        return self.get(job_id)

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        path: str,
        clock: Clock | None = None,
        fsync: bool = True,
        **kwargs,
    ) -> "JobManager":
        """Rebuild a manager from the journal at *path* and reopen it.

        Jobs the journal leaves EXECUTING lost their worker with the old
        process; they are handed back to PENDING with a durable
        ``recovered`` record — the at-least-once guarantee across
        crashes.  Terminal jobs keep their outcome (and their recorded
        result/fault), so duplicate submissions converge instead of
        re-running.
        """
        records = read_journal(path)
        jobs = replay_records(records)
        manager = cls(
            journal=JobJournal(path, fsync=fsync), clock=clock, **kwargs
        )
        # Continue the journal's sequence where the dead process left it.
        manager.journal._seq = int(records[-1]["seq"]) if records else 0
        with manager._lock:
            for job in jobs.values():
                if job.phase == EXECUTING:
                    manager.journal.append(
                        "recovered", job.job_id, manager.clock.now()
                    )
                    job.transition(PENDING)
                    job.worker = None
                    job.lease_expires = None
                    manager._recovered.inc()
                    record_event("job-recovered", job.job_id)
                manager._jobs[job.job_id] = job
                manager._order.append(job.job_id)
                if job.terminal:
                    manager._schedule_forget(job.job_id)
        return manager
