"""Job status / cancel message payloads and the job-phase property.

Jobs are addressed like WS-Resources: the job id (a URI) travels in the
mandatory ``DataResourceAbstractName`` body slot, exactly as every
other DAIS request addresses its target — the framework stays identical
with and without WSRF (paper §3/§5), and the same holds for jobs.

``GetJobStatusResponse`` carries the phase, the attempt count, and —
once the job is COMPLETED — the derived data resource's EPR and
abstract name, i.e. exactly what the synchronous factory response would
have carried.  An ERROR job carries the *original* fault's typed name
and message, which :func:`fault_from_status` rehydrates into the typed
DAIS exception on the consumer side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.core.faults import fault_class_for
from repro.core.messages import DaisMessage, DaisRequest
from repro.jobs.model import ERROR, Job
from repro.jobs.namespaces import WSDAIJ_NS
from repro.soap.addressing import EndpointReference
from repro.soap.fault import FaultCode, SoapFault
from repro.xmlutil import E, QName, XmlElement


def _q(local: str) -> QName:
    return QName(WSDAIJ_NS, local)


#: QName of the job-status property element (GetResourceProperty target).
JOB_STATUS = _q("JobStatus")
#: QName of the per-resource job list property element.
JOB_SET = _q("JobSet")


@dataclass
class GetJobStatusRequest(DaisRequest):
    """Poll one job's phase (the async half of the DALI sync/async split)."""

    TAG: ClassVar[QName] = _q("GetJobStatusRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement) -> "GetJobStatusRequest":
        return cls(abstract_name=cls._read_name(element))


@dataclass
class GetJobStatusResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetJobStatusResponse")

    job_id: str = ""
    phase: str = ""
    attempts: int = 0
    cancel_requested: bool = False
    #: EPR of the derived data resource, once COMPLETED.
    address: Optional[EndpointReference] = None
    #: Abstract name of the derived data resource, once COMPLETED.
    result_name: str = ""
    #: Original fault, once ERROR.
    fault_type: str = ""
    fault_message: str = ""

    def to_xml(self) -> XmlElement:
        root = E(
            self.TAG,
            E(_q("JobID"), self.job_id),
            E(_q("Phase"), self.phase),
            E(_q("Attempts"), self.attempts),
        )
        if self.cancel_requested:
            root.append(E(_q("CancelRequested"), "true"))
        if self.address is not None:
            root.append(self.address.to_xml(_q("ResultAddress")))
        if self.result_name:
            root.append(E(_q("ResultAbstractName"), self.result_name))
        if self.fault_type:
            fault = E(_q("JobFault"), E(_q("FaultType"), self.fault_type))
            fault.append(E(_q("FaultMessage"), self.fault_message))
            root.append(fault)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement) -> "GetJobStatusResponse":
        address_el = element.find(_q("ResultAddress"))
        fault_el = element.find(_q("JobFault"))
        return cls(
            job_id=element.findtext(_q("JobID"), "") or "",
            phase=element.findtext(_q("Phase"), "") or "",
            attempts=int(element.findtext(_q("Attempts"), "0") or "0"),
            cancel_requested=(
                (element.findtext(_q("CancelRequested"), "") or "") == "true"
            ),
            address=EndpointReference.from_xml(address_el)
            if address_el is not None
            else None,
            result_name=element.findtext(_q("ResultAbstractName"), "") or "",
            fault_type=(
                fault_el.findtext(_q("FaultType"), "") if fault_el is not None else ""
            )
            or "",
            fault_message=(
                fault_el.findtext(_q("FaultMessage"), "")
                if fault_el is not None
                else ""
            )
            or "",
        )


@dataclass
class CancelJobRequest(DaisRequest):
    """Request cancellation; the response reports the phase that won."""

    TAG: ClassVar[QName] = _q("CancelJobRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement) -> "CancelJobRequest":
        return cls(abstract_name=cls._read_name(element))


@dataclass
class CancelJobResponse(DaisMessage):
    """The job's phase after the cancel raced every other outcome.

    ``phase=CANCELLED`` means the cancel won; a terminal phase that is
    not CANCELLED means a completion or failure committed first — the
    cancel was a no-op, per the one-terminal-state rule.
    """

    TAG: ClassVar[QName] = _q("CancelJobResponse")

    job_id: str = ""
    phase: str = ""

    def to_xml(self) -> XmlElement:
        return E(
            self.TAG, E(_q("JobID"), self.job_id), E(_q("Phase"), self.phase)
        )

    @classmethod
    def from_xml(cls, element: XmlElement) -> "CancelJobResponse":
        return cls(
            job_id=element.findtext(_q("JobID"), "") or "",
            phase=element.findtext(_q("Phase"), "") or "",
        )


# ---------------------------------------------------------------------------
# The job-phase WSRF property rendering
# ---------------------------------------------------------------------------


def job_status_element(job: Job, tag: QName = JOB_STATUS) -> XmlElement:
    """Render one job as the ``wsdaij:JobStatus`` property element."""
    node = E(
        tag,
        job=job.job_id,
        phase=job.phase,
        kind=job.kind,
        attempts=job.attempts,
        cancelRequested=True if job.cancel_requested else None,
    )
    if job.result and job.result.get("abstract_name"):
        node.append(E(_q("ResultAbstractName"), job.result["abstract_name"]))
    if job.fault_type:
        fault = E(_q("JobFault"), E(_q("FaultType"), job.fault_type))
        fault.append(E(_q("FaultMessage"), job.fault_message))
        node.append(fault)
    return node


def job_set_element(jobs: list[Job]) -> XmlElement:
    """Render *jobs* as the ``wsdaij:JobSet`` resource property — how a
    consumer reads job phases through the standard WSRF property
    operations instead of (or alongside) ``GetJobStatus``."""
    root = E(JOB_SET)
    for job in jobs:
        root.append(job_status_element(job))
    return root


def fault_from_status(status: GetJobStatusResponse) -> SoapFault:
    """Rehydrate an ERROR job's original fault as a typed exception."""
    if status.phase != ERROR:
        raise ValueError(f"job {status.job_id} is {status.phase}, not ERROR")
    message = status.fault_message or f"job {status.job_id} failed"
    cls = fault_class_for(status.fault_type)
    if cls is not None:
        return cls(message)
    return SoapFault(FaultCode.SERVER, f"{status.fault_type}: {message}")
