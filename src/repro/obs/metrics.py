"""A small thread-safe metrics registry (counters + histograms).

Every :class:`~repro.core.service.DataService` owns a registry for its
server-side series (dispatch counts, latency, faults); each transport
owns one for its client-side series (request counts, bytes on the wire).
Instruments are labelled — ``counter.inc(action=...)`` — and all state
for one registry is guarded by a single lock, so counts stay exact under
the threaded HTTP binding (see ``tests/transport/test_http_concurrency``).

The registry renders into the WS-DAI property document through
:mod:`repro.obs.properties`, which is how consumers read a service's
live metrics with the spec's own ``GetResourceProperty`` mechanism.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = [
    "Counter",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing, labelled counter."""

    def __init__(self, name: str, description: str, lock: threading.Lock) -> None:
        self.name = name
        self.description = description
        self._lock = lock
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        """The count for one exact label set (0 when never incremented)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """The sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def items(self) -> list[tuple[dict[str, str], float]]:
        """(labels, value) pairs, sorted by label key for stable output."""
        with self._lock:
            snapshot = sorted(self._values.items())
        return [(dict(key), value) for key, value in snapshot]


@dataclass(frozen=True)
class HistogramStats:
    """A snapshot of one histogram series."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram:
    """A labelled distribution summary (count / sum / min / max)."""

    def __init__(self, name: str, description: str, lock: threading.Lock) -> None:
        self.name = name
        self.description = description
        self._lock = lock
        self._series: dict[LabelKey, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                # [count, total, min, max]
                self._series[key] = [1, value, value, value]
            else:
                series[0] += 1
                series[1] += value
                series[2] = min(series[2], value)
                series[3] = max(series[3], value)

    def stats(self, **labels) -> HistogramStats:
        """Stats for one exact label set (zeros when never observed)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return HistogramStats(0, 0.0, 0.0, 0.0)
            count, total, minimum, maximum = series
        return HistogramStats(int(count), total, minimum, maximum)

    def items(self) -> list[tuple[dict[str, str], HistogramStats]]:
        with self._lock:
            snapshot = sorted(
                (key, list(series)) for key, series in self._series.items()
            )
        return [
            (dict(key), HistogramStats(int(s[0]), s[1], s[2], s[3]))
            for key, s in snapshot
        ]


class MetricsRegistry:
    """Named counters and histograms sharing one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instrument_lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter called *name*."""
        with self._instrument_lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name, description, self._lock)
                self._counters[name] = instrument
            return instrument

    def histogram(self, name: str, description: str = "") -> Histogram:
        """Get or create the histogram called *name*."""
        with self._instrument_lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, description, self._lock)
                self._histograms[name] = instrument
            return instrument

    def counters(self) -> list[Counter]:
        with self._instrument_lock:
            return [self._counters[name] for name in sorted(self._counters)]

    def histograms(self) -> list[Histogram]:
        with self._instrument_lock:
            return [self._histograms[name] for name in sorted(self._histograms)]

    def snapshot(self) -> dict:
        """A plain-dict dump of every series (for reports and tests)."""
        out: dict = {"counters": {}, "histograms": {}}
        for counter in self.counters():
            out["counters"][counter.name] = [
                {"labels": labels, "value": value}
                for labels, value in counter.items()
            ]
        for histogram in self.histograms():
            out["histograms"][histogram.name] = [
                {
                    "labels": labels,
                    "count": stats.count,
                    "total": stats.total,
                    "min": stats.minimum,
                    "max": stats.maximum,
                }
                for labels, stats in histogram.items()
            ]
        return out

    def reset(self) -> None:
        """Drop every series (instruments survive; their data does not)."""
        with self._instrument_lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        with self._lock:
            for counter in counters:
                counter._values.clear()
            for histogram in histograms:
                histogram._series.clear()
