"""The WSRF lifecycle journal: structured resource lifetime events.

The paper's §4.3/§5 story is a resource *lifecycle* — factories create
derived resources, consumers resolve and extend them, soft state sweeps
the expired ones away.  Metrics count these transitions but lose their
order and identity; spans see them only while a trace is enabled.  The
journal is the always-on, bounded record of the transitions themselves::

    seq=1 created   urn:dais:sqlresponse:12  (type=SQLResponseResource)
    seq=2 termination-set urn:dais:sqlresponse:12  (requested=30.0)
    seq=3 expired   urn:dais:sqlresponse:12
    seq=4 destroyed urn:dais:sqlresponse:12

Events are emitted from :mod:`repro.core.resource`,
:mod:`repro.core.registry` and :mod:`repro.wsrf.lifetime`, carry the
current span's trace/span ids when tracing is on (so a journal line can
be joined back to the trace that caused it), and are queryable
in-process or through the ``obs:LifecycleJournal`` resource property
(:func:`journal_element`).

Like the tracer, the journal is a process-wide singleton with a
swappable instance (:func:`use_journal`) for test isolation.  It is
bounded: at capacity the oldest event is evicted and counted in
:attr:`LifecycleJournal.dropped` — never silently.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs.tracing import current_span
from repro.xmlutil import E, QName, XmlElement

__all__ = [
    "LifecycleEvent",
    "LifecycleJournal",
    "get_journal",
    "record_event",
    "use_journal",
    "journal_element",
    "events_from_element",
    "LIFECYCLE_JOURNAL",
]

#: Namespace shared with the other observability properties.
from repro.obs.properties import OBS_NS

#: QName of the journal property element (use with GetResourceProperty).
LIFECYCLE_JOURNAL = QName(OBS_NS, "LifecycleJournal")

_EVENT = QName(OBS_NS, "Event")
_DETAIL = QName(OBS_NS, "Detail")

_sequence = itertools.count(1)


@dataclass
class LifecycleEvent:
    """One resource lifecycle transition."""

    sequence: int
    event: str
    resource: str
    trace_id: str = ""
    span_id: str = ""
    detail: dict = field(default_factory=dict)


class LifecycleJournal:
    """A bounded, thread-safe, append-only record of lifecycle events."""

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._events: deque[LifecycleEvent] = deque()
        self._capacity = capacity
        self.dropped = 0

    def record(self, event: str, resource: str, **detail) -> LifecycleEvent:
        """Append one event, stamping the current trace context if any."""
        span = current_span()
        entry = LifecycleEvent(
            sequence=next(_sequence),
            event=event,
            resource=str(resource),
            trace_id=span.trace_id if span.recording else "",
            span_id=span.span_id if span.recording else "",
            detail={k: v for k, v in detail.items() if v is not None},
        )
        with self._lock:
            if len(self._events) >= self._capacity:
                self._events.popleft()
                self.dropped += 1
            self._events.append(entry)
        return entry

    def events(
        self,
        resource: str | None = None,
        event: str | None = None,
        trace_id: str | None = None,
    ) -> list[LifecycleEvent]:
        """A filtered snapshot, in emission order."""
        with self._lock:
            snapshot = list(self._events)
        return [
            entry
            for entry in snapshot
            if (resource is None or entry.resource == resource)
            and (event is None or entry.event == event)
            and (trace_id is None or entry.trace_id == trace_id)
        ]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The process-wide journal every emitting module goes through.
_journal = LifecycleJournal()


def get_journal() -> LifecycleJournal:
    return _journal


def record_event(event: str, resource: str, **detail) -> LifecycleEvent:
    """Emit one event to the process-wide journal (the one-liner hooks
    in resource/registry/lifetime code use)."""
    return _journal.record(event, resource, **detail)


class use_journal:
    """Temporarily swap in a fresh (or given) journal::

        with use_journal() as journal:
            service.add_resource(resource)
        assert journal.events(event="created")
    """

    def __init__(self, journal: LifecycleJournal | None = None) -> None:
        self.journal = journal if journal is not None else LifecycleJournal()
        self._previous: LifecycleJournal | None = None

    def __enter__(self) -> LifecycleJournal:
        global _journal
        self._previous = _journal
        _journal = self.journal
        return self.journal

    def __exit__(self, *exc_info) -> None:
        global _journal
        _journal = self._previous


def journal_element(
    events: list[LifecycleEvent], tag: QName = LIFECYCLE_JOURNAL
) -> XmlElement:
    """Render *events* as the ``obs:LifecycleJournal`` property element."""
    root = E(tag)
    for entry in events:
        node = E(_EVENT)
        node.set(QName("", "sequence"), str(entry.sequence))
        node.set(QName("", "type"), entry.event)
        node.set(QName("", "resource"), entry.resource)
        if entry.trace_id:
            node.set(QName("", "trace"), entry.trace_id)
        if entry.span_id:
            node.set(QName("", "span"), entry.span_id)
        for key in sorted(entry.detail):
            detail = E(_DETAIL, str(entry.detail[key]))
            detail.set(QName("", "name"), key)
            node.append(detail)
        root.append(node)
    return root


def events_from_element(element: XmlElement) -> list[LifecycleEvent]:
    """Parse events back out of a ``LifecycleJournal`` element (the
    consumer-side inverse of :func:`journal_element`)."""
    out: list[LifecycleEvent] = []
    for node in element.findall(_EVENT):
        out.append(
            LifecycleEvent(
                sequence=int(node.get(QName("", "sequence")) or 0),
                event=node.get(QName("", "type")) or "",
                resource=node.get(QName("", "resource")) or "",
                trace_id=node.get(QName("", "trace")) or "",
                span_id=node.get(QName("", "span")) or "",
                detail={
                    detail.get(QName("", "name")) or "": detail.text
                    for detail in node.findall(_DETAIL)
                },
            )
        )
    return out
