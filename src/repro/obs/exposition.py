"""Read-only exposition formats: Prometheus text and span trees.

:func:`prometheus_text` renders one or more
:class:`~repro.obs.metrics.MetricsRegistry` instances in the Prometheus
text exposition format (version 0.0.4) — the format ``GET /metrics`` on
:class:`~repro.transport.DaisHttpServer` serves.  Counters gain the
conventional ``_total`` suffix; histograms surface as a ``summary``
(``_count``/``_sum``) plus ``_min``/``_max`` gauges.

:func:`parse_prometheus_text` is the strict inverse used by tests and
consumers to check the endpoint agrees with the in-process registry.

:func:`render_trace_tree` turns a flat span list into the indented tree
``python -m repro trace`` prints.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "render_trace_tree",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _metric_name(name: str) -> str:
    """``dais.dispatch.count`` -> ``dais_dispatch_count``."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not re.match(r"[a-zA-Z_:]", sanitized[:1] or "_"):
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _sample_line(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{_metric_name(key)}="{_escape_label(str(text))}"'
            for key, text in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def prometheus_text(
    registries: list[tuple[dict[str, str], MetricsRegistry]],
    extra_gauges: list[tuple[str, str, dict[str, str], float]] | None = None,
) -> str:
    """Render registries as Prometheus text exposition.

    :param registries: ``(base_labels, registry)`` pairs; the base labels
        (e.g. ``{"service": "sql-service"}``) are merged into every
        sample from that registry, which keeps one ``# TYPE`` block per
        metric name even when several services define the same series.
    :param extra_gauges: ``(name, help, labels, value)`` one-off gauges
        (e.g. the span exporter's dropped count).
    """
    # metric name -> (type, help, [(labels, value), ...])
    families: dict[str, tuple[str, str, list]] = {}

    def family(name: str, kind: str, help_text: str) -> list:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, help_text, [])
        return entry[2]

    for base_labels, registry in registries:
        for counter in registry.counters():
            name = _metric_name(counter.name) + "_total"
            samples = family(name, "counter", counter.description)
            for labels, value in counter.items():
                samples.append(({**base_labels, **labels}, value))
        for histogram in registry.histograms():
            base = _metric_name(histogram.name)
            summary = family(base, "summary", histogram.description)
            minimum = family(base + "_min", "gauge", histogram.description)
            maximum = family(base + "_max", "gauge", histogram.description)
            for labels, stats in histogram.items():
                merged = {**base_labels, **labels}
                summary.append((merged, stats, "summary"))
                minimum.append((merged, stats.minimum))
                maximum.append((merged, stats.maximum))

    for name, help_text, labels, value in extra_gauges or ():
        family(_metric_name(name), "gauge", help_text).append((labels, value))

    lines: list[str] = []
    for name in sorted(families):
        kind, help_text, samples = families[name]
        if help_text:
            lines.append(f"# HELP {name} {_escape_label(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in samples:
            if len(sample) == 3:  # summary: expand to _count/_sum
                labels, stats, _ = sample
                lines.append(_sample_line(name + "_count", labels, stats.count))
                lines.append(_sample_line(name + "_sum", labels, stats.total))
            else:
                labels, value = sample
                lines.append(_sample_line(name, labels, value))
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    Strict: any non-comment, non-blank line that does not match the
    sample grammar raises ``ValueError`` — this is what "the endpoint
    output parses as valid text format" means in the tests.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            raise ValueError(f"invalid Prometheus sample line: {raw!r}")
        labels_text = match.group("labels") or ""
        labels: list[tuple[str, str]] = []
        consumed = 0
        for pair in _LABEL_PAIR.finditer(labels_text):
            labels.append(
                (
                    pair.group(1),
                    pair.group(2)
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\"),
                )
            )
            consumed = pair.end()
        remainder = labels_text[consumed:].strip(", ")
        if remainder:
            raise ValueError(f"invalid label syntax in: {raw!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(f"invalid sample value in: {raw!r}") from None
        out[(match.group("name"), tuple(sorted(labels)))] = value
    return out


#: Span attributes worth showing inline in a rendered tree, in order.
_TREE_ATTRIBUTES = (
    "transport",
    "service",
    "action",
    "resource",
    "request_bytes",
    "response_bytes",
    "rows_out",
    "rows_scanned",
    "result_nodes",
    "status",
)


def _describe(span: Span) -> str:
    parts = [span.name]
    if span.end_time is not None:
        parts.append(f"{span.duration_seconds * 1e3:.2f}ms")
    for key in _TREE_ATTRIBUTES:
        if key in span.attributes:
            parts.append(f"{key}={span.attributes[key]}")
    if span.status != "ok":
        parts.append(f"[{span.status}]")
    for link in span.links:
        parts.append(f"link:{link.relation}->{link.trace_id}/{link.span_id}")
    return " ".join(parts)


def render_trace_tree(spans: list[Span], trace_id: str | None = None) -> str:
    """Render spans as indented trees, one per root, in start order.

    Spans whose parent is missing from the list (e.g. a remote parent
    that exported elsewhere) render as roots marked ``~``.
    """
    chosen = [s for s in spans if trace_id is None or s.trace_id == trace_id]
    chosen.sort(key=lambda s: (s.trace_id, s.start_time, s.span_id))
    by_id = {span.span_id: span for span in chosen}
    children: dict[str | None, list[Span]] = {}
    roots: list[Span] = []
    for span in chosen:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    lines: list[str] = []

    def walk(span: Span, depth: int, orphan: bool) -> None:
        indent = "  " * depth
        marker = "~ " if orphan else ""
        lines.append(f"{indent}{marker}{_describe(span)}")
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1, False)

    for root in roots:
        if lines:
            lines.append("")
        walk(root, 0, root.parent_id is not None)
    return "\n".join(lines)
