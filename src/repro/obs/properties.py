"""Metrics as a WS-DAI property: the spec's own introspection channel.

The paper (§5) presents resource properties as *the* mechanism for
consumers to learn about a service↔resource relationship.  Rather than
bolt on a side-band metrics endpoint, each service renders its live
:class:`~repro.obs.metrics.MetricsRegistry` into a ``ServiceMetrics``
element appended to every property document, so metrics are read with
the standard messages — ``GetDataResourcePropertyDocument`` under the
plain profile, fine-grained ``GetResourceProperty`` /
``QueryResourceProperties`` under WSRF::

    <obs:ServiceMetrics>
      <obs:Counter name="dais.dispatch.count" action="...">4</obs:Counter>
      <obs:Histogram name="dais.dispatch.seconds" action="...">
        <obs:Count>4</obs:Count><obs:Sum>0.0021</obs:Sum>
        <obs:Min>0.0004</obs:Min><obs:Max>0.0008</obs:Max>
      </obs:Histogram>
    </obs:ServiceMetrics>
"""

from __future__ import annotations

from repro.obs.metrics import HistogramStats, MetricsRegistry
from repro.xmlutil import E, QName, XmlElement
from repro.xmlutil.names import DEFAULT_REGISTRY

__all__ = [
    "OBS_NS",
    "SERVICE_METRICS",
    "metrics_element",
    "counters_from_element",
    "histograms_from_element",
]

#: Namespace of the observability extension properties.
OBS_NS = "http://www.ggf.org/namespaces/2005/05/WS-DAI/observability"

DEFAULT_REGISTRY.register("obs", OBS_NS)

#: QName of the live-metrics property element (use with GetResourceProperty).
SERVICE_METRICS = QName(OBS_NS, "ServiceMetrics")

_COUNTER = QName(OBS_NS, "Counter")
_HISTOGRAM = QName(OBS_NS, "Histogram")
_COUNT = QName(OBS_NS, "Count")
_SUM = QName(OBS_NS, "Sum")
_MIN = QName(OBS_NS, "Min")
_MAX = QName(OBS_NS, "Max")


def _number(value: float) -> str:
    """Stable numeric text: integers bare, floats with 9 significant digits."""
    if float(value) == int(value):
        return str(int(value))
    return format(float(value), ".9g")


def metrics_element(
    registry: MetricsRegistry,
    tag: QName = SERVICE_METRICS,
    extra_counters: list[tuple[str, dict[str, str], float]] | None = None,
) -> XmlElement:
    """Render *registry* as a property element; labels become attributes.

    *extra_counters* — ``(name, labels, value)`` triples — lets callers
    surface observability-of-observability series that live outside the
    registry, e.g. the span exporter's ``obs.spans.dropped`` count, so
    nothing is discarded silently.
    """
    root = E(tag)
    for name, labels, value in extra_counters or ():
        node = E(_COUNTER, _number(value))
        node.set(QName("", "name"), name)
        for key, text in labels.items():
            node.set(QName("", key), text)
        root.append(node)
    for counter in registry.counters():
        for labels, value in counter.items():
            node = E(_COUNTER, _number(value))
            node.set(QName("", "name"), counter.name)
            for key, text in labels.items():
                node.set(QName("", key), text)
            root.append(node)
    for histogram in registry.histograms():
        for labels, stats in histogram.items():
            node = E(
                _HISTOGRAM,
                E(_COUNT, _number(stats.count)),
                E(_SUM, _number(stats.total)),
                E(_MIN, _number(stats.minimum)),
                E(_MAX, _number(stats.maximum)),
            )
            node.set(QName("", "name"), histogram.name)
            for key, text in labels.items():
                node.set(QName("", key), text)
            root.append(node)
    return root


def _labels_of(node: XmlElement) -> dict[str, str]:
    return {
        attr.local: value
        for attr, value in node.attributes.items()
        if attr.local != "name" and not attr.namespace
    }


def counters_from_element(
    element: XmlElement,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse counter series back out of a ``ServiceMetrics`` element.

    Keyed by (counter name, sorted label items); the inverse of
    :func:`metrics_element` for consumers and tests.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for node in element.findall(_COUNTER):
        name = node.get(QName("", "name")) or ""
        key = (name, tuple(sorted(_labels_of(node).items())))
        text = node.text
        # _number renders integral values bare; give them back as ints.
        out[key] = float(text) if "." in text or "e" in text else int(text)
    return out


def histograms_from_element(
    element: XmlElement,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], HistogramStats]:
    """Parse histogram series back out of a ``ServiceMetrics`` element."""
    out: dict[tuple[str, tuple[tuple[str, str], ...]], HistogramStats] = {}
    for node in element.findall(_HISTOGRAM):
        name = node.get(QName("", "name")) or ""
        key = (name, tuple(sorted(_labels_of(node).items())))
        out[key] = HistogramStats(
            count=int(node.findtext(_COUNT, "0") or 0),
            total=float(node.findtext(_SUM, "0") or 0),
            minimum=float(node.findtext(_MIN, "0") or 0),
            maximum=float(node.findtext(_MAX, "0") or 0),
        )
    return out
