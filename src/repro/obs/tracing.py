"""Lightweight span tracing for the message patterns the paper measures.

The paper's figures are all claims about *message structure* — how many
round trips an access pattern costs, who moves the bytes, where the time
goes.  A :class:`Span` captures one timed unit of that structure (a
transport send, a service dispatch, a handler, a SQL operator tree, an
XPath evaluation); spans nest through a :mod:`contextvars` context so a
single consumer call yields a tree::

    rpc.send (loopback, bytes in/out)
      └─ dais.dispatch (action, resource, duration)
           └─ dais.handler
                └─ sql.select (rows_scanned, rows_out)

Tracing is **off by default** and the disabled path is a single shared
no-op context manager, so instrumented hot paths stay benchmark-neutral
(< 5% on the Figure 2 direct-message round trip).  Enable it by
installing an :class:`InMemoryExporter`, typically through the
:func:`use_exporter` context manager.

Span and trace identifiers are minted from a process-wide counter rather
than random UUIDs so traces stay deterministic and replayable — the same
property :func:`repro.soap.addressing.deterministic_message_id` gives
message ids.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanLink",
    "Tracer",
    "InMemoryExporter",
    "get_tracer",
    "configure",
    "disable",
    "use_exporter",
    "current_span",
    "add_to_current_span",
]

_span_ids = itertools.count(1)

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass(frozen=True)
class SpanLink:
    """A causal pointer to a span in *another* trace.

    Links carry relationships that parent/child nesting cannot: a derived
    resource created by one consumer's trace and later accessed by a
    different consumer records the creating span as a ``created-by`` link
    on the accessing trace's dispatch span.
    """

    trace_id: str
    span_id: str
    relation: str = "related"


@dataclass
class Span:
    """One finished-or-running timed operation in a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    attributes: dict = field(default_factory=dict)
    start_time: float = 0.0
    end_time: float | None = None
    status: str = "ok"
    #: Cross-trace causal pointers (see :class:`SpanLink`).
    links: list = field(default_factory=list)

    #: Real spans record; the no-op span reports False so instrumentation
    #: can skip attribute computation entirely when tracing is off.
    recording: bool = True

    @property
    def duration_seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes) -> None:
        self.attributes.update(attributes)

    def add(self, key: str, amount: float = 1) -> None:
        """Increment a numeric counter attribute on this span."""
        self.attributes[key] = self.attributes.get(key, 0) + amount

    def mark_fault(self, message: str = "") -> None:
        self.status = "fault"
        if message:
            self.attributes.setdefault("fault.message", message)

    def record_exception(self, exc: BaseException) -> None:
        """Attach a caught exception to this span and mark it faulted.

        For boundaries that swallow exceptions (turning them into HTTP
        error bodies or closed connections), this keeps the failure
        visible to trace consumers instead of vanishing silently.
        """
        self.attributes["exception.type"] = type(exc).__name__
        self.attributes["exception.message"] = str(exc)
        self.mark_fault()

    def add_link(
        self, trace_id: str, span_id: str, relation: str = "related"
    ) -> None:
        """Record a causal link to a span in another trace."""
        self.links.append(SpanLink(trace_id, span_id, relation))

    def adopt(self, trace_id: str, parent_id: str) -> bool:
        """Adopt a remote caller's trace context.

        Only a *root* span (no in-process parent) adopts — when the
        caller is in-process the contextvar chain already carries the
        trace, and the wire header is redundant.  Returns True when the
        span switched traces.
        """
        if not self.recording or self.parent_id is not None:
            return False
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attributes.setdefault("remote_parent", True)
        return True


class _NoopSpan(Span):
    """The shared do-nothing span handed out while tracing is disabled."""

    def __init__(self) -> None:
        super().__init__(name="noop", trace_id="", span_id="", recording=False)

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass

    def add(self, key: str, amount: float = 1) -> None:
        pass

    def mark_fault(self, message: str = "") -> None:
        pass

    def record_exception(self, exc: BaseException) -> None:
        pass

    def add_link(
        self, trace_id: str, span_id: str, relation: str = "related"
    ) -> None:
        pass


class _NoopHandle:
    """Context manager returned by a disabled tracer; shared singleton."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()
_NOOP_HANDLE = _NoopHandle()


class _SpanHandle:
    """Context manager that opens *span*, parents descendants to it, and
    exports it on exit (marking the fault status on exceptions)."""

    __slots__ = ("_exporter", "_span", "_token")

    def __init__(self, exporter: "InMemoryExporter", span: Span) -> None:
        self._exporter = exporter
        self._span = span
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._span.start_time = time.perf_counter()
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_time = time.perf_counter()
        if self._token is not None:
            _current_span.reset(self._token)
        if exc is not None:
            span.mark_fault(str(exc))
        self._exporter.export(span)
        return False


class InMemoryExporter:
    """Collects finished spans; thread-safe, optionally bounded."""

    def __init__(self, capacity: int | None = None) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._capacity = capacity
        self.dropped = 0

    def export(self, span: Span) -> None:
        with self._lock:
            if self._capacity is not None and len(self._spans) >= self._capacity:
                self.dropped += 1
                return
            self._spans.append(span)

    def spans(self, name: str | None = None) -> list[Span]:
        with self._lock:
            snapshot = list(self._spans)
        if name is None:
            return snapshot
        return [span for span in snapshot if span.name == name]

    def by_name(self) -> dict[str, list[Span]]:
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.name, []).append(span)
        return grouped

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def trace(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Mints spans against one exporter; disabled when it has none.

    An exporter is anything with an ``export(span)`` method — the
    in-memory collector here or the JSONL
    :class:`repro.obs.exporters.FileExporter`.
    """

    def __init__(self, exporter=None) -> None:
        self.exporter = exporter

    @property
    def enabled(self) -> bool:
        return self.exporter is not None

    def span(self, name: str, **attributes):
        """Open a child span of the current context span.

        Returns a context manager yielding the :class:`Span`; while the
        tracer is disabled this is a shared no-op handle with no
        allocation on the hot path.
        """
        exporter = self.exporter
        if exporter is None:
            return _NOOP_HANDLE
        parent = _current_span.get()
        span_id = f"{next(_span_ids):08x}"
        if parent is not None and parent.recording:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = f"trace-{span_id}"
            parent_id = None
        return _SpanHandle(
            exporter,
            Span(
                name=name,
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
                attributes=dict(attributes),
            ),
        )


#: The process-wide tracer every instrumented module goes through.
_tracer = Tracer()


def get_tracer() -> Tracer:
    return _tracer


def configure(exporter: InMemoryExporter | None = None) -> InMemoryExporter:
    """Install (or create) an exporter on the global tracer; returns it."""
    if exporter is None:
        exporter = InMemoryExporter()
    _tracer.exporter = exporter
    return exporter


def disable() -> None:
    """Turn global tracing off (the default state)."""
    _tracer.exporter = None


class use_exporter:
    """Temporarily install *exporter* on the global tracer::

        with use_exporter(InMemoryExporter()) as exporter:
            client.sql_execute(...)
        spans = exporter.spans("dais.dispatch")
    """

    def __init__(self, exporter: InMemoryExporter | None = None) -> None:
        self.exporter = exporter if exporter is not None else InMemoryExporter()
        self._previous: InMemoryExporter | None = None

    def __enter__(self) -> InMemoryExporter:
        self._previous = _tracer.exporter
        _tracer.exporter = self.exporter
        return self.exporter

    def __exit__(self, *exc_info) -> None:
        _tracer.exporter = self._previous


def current_span() -> Span:
    """The innermost open span in this context (no-op span when none)."""
    span = _current_span.get()
    return span if span is not None else NOOP_SPAN


def add_to_current_span(key: str, amount: float = 1) -> None:
    """Increment a counter attribute on the current span, if any.

    This is the one-liner engines use for per-operator counts; when
    tracing is disabled it costs a context-variable read and a branch.
    """
    span = _current_span.get()
    if span is not None:
        span.add(key, amount)
