"""Observability: span tracing and metrics for every message pattern.

``repro.obs`` gives the reproduction the two signals the paper's figures
are really about — *what messages flowed* (spans: one per transport
send, service dispatch, handler, SQL operator tree, XPath evaluation)
and *how much* (metrics: per-action dispatch counts, latency, faults,
request/response bytes).  Tracing is off by default and costs a shared
no-op handle when disabled; metrics are always on and thread-safe.

Service metrics surface through the WS-DAI property document itself
(:mod:`repro.obs.properties`), so a consumer reads them with
``GetResourceProperty`` — observability via the spec's own mechanism.
"""

from repro.obs.exporters import (
    FileExporter,
    load_spans,
    span_from_dict,
    span_to_dict,
)
from repro.obs.exposition import (
    parse_prometheus_text,
    prometheus_text,
    render_trace_tree,
)
from repro.obs.journal import (
    LIFECYCLE_JOURNAL,
    LifecycleEvent,
    LifecycleJournal,
    events_from_element,
    get_journal,
    journal_element,
    record_event,
    use_journal,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    HistogramStats,
    MetricsRegistry,
)
from repro.obs.properties import (
    OBS_NS,
    SERVICE_METRICS,
    counters_from_element,
    histograms_from_element,
    metrics_element,
)
from repro.obs.tracing import (
    InMemoryExporter,
    Span,
    SpanLink,
    Tracer,
    add_to_current_span,
    configure,
    current_span,
    disable,
    get_tracer,
    use_exporter,
)

__all__ = [
    "Counter",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "OBS_NS",
    "SERVICE_METRICS",
    "counters_from_element",
    "histograms_from_element",
    "metrics_element",
    "FileExporter",
    "load_spans",
    "span_from_dict",
    "span_to_dict",
    "parse_prometheus_text",
    "prometheus_text",
    "render_trace_tree",
    "LIFECYCLE_JOURNAL",
    "LifecycleEvent",
    "LifecycleJournal",
    "events_from_element",
    "get_journal",
    "journal_element",
    "record_event",
    "use_journal",
    "InMemoryExporter",
    "Span",
    "SpanLink",
    "Tracer",
    "add_to_current_span",
    "configure",
    "current_span",
    "disable",
    "get_tracer",
    "use_exporter",
]
