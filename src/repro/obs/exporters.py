"""Span exporters beyond the in-memory collector.

The :class:`FileExporter` appends one JSON object per finished span to a
file (JSONL), so a long-running deployment can trace without holding
every span in memory and a separate process — ``python -m repro trace
<file>`` — can render the tree later.  :func:`span_to_dict` /
:func:`span_from_dict` define the interchange shape shared by the file
format and the HTTP ``GET /trace/<trace_id>`` endpoint.
"""

from __future__ import annotations

import json
import pathlib
import threading

from repro.obs.tracing import Span, SpanLink

__all__ = [
    "FileExporter",
    "span_to_dict",
    "span_from_dict",
    "load_spans",
]


def span_to_dict(span: Span) -> dict:
    """The JSON-ready shape of one finished span."""
    out = {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_time": span.start_time,
        "end_time": span.end_time,
        "status": span.status,
        "attributes": dict(span.attributes),
    }
    if span.links:
        out["links"] = [
            {
                "trace_id": link.trace_id,
                "span_id": link.span_id,
                "relation": link.relation,
            }
            for link in span.links
        ]
    return out


def span_from_dict(data: dict) -> Span:
    """Rebuild a :class:`Span` from :func:`span_to_dict` output."""
    return Span(
        name=data["name"],
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        attributes=dict(data.get("attributes", {})),
        start_time=data.get("start_time", 0.0),
        end_time=data.get("end_time"),
        status=data.get("status", "ok"),
        links=[
            SpanLink(
                link["trace_id"], link["span_id"], link.get("relation", "related")
            )
            for link in data.get("links", ())
        ],
    )


class FileExporter:
    """Appends finished spans to *path* as JSONL; thread-safe.

    Attribute values that are not JSON-serializable are stringified
    rather than dropped, so an exporter never loses a span to a payload
    detail; spans that still fail to serialize are counted in
    :attr:`dropped` instead of faulting the traced operation.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._file = None
        self.exported = 0
        self.dropped = 0

    def export(self, span: Span) -> None:
        try:
            line = json.dumps(
                span_to_dict(span), default=str, separators=(",", ":")
            )
        except Exception:
            with self._lock:
                self.dropped += 1
            return
        with self._lock:
            if self._file is None:
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(line + "\n")
            # Line-buffered durability: a reader (or a crash) sees every
            # finished span, not whatever happened to fit the buffer.
            self._file.flush()
            self.exported += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "FileExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_spans(path) -> list[Span]:
    """Read every span back out of a :class:`FileExporter` JSONL file."""
    spans: list[Span] = []
    with pathlib.Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans
