"""Resilient consumers: retry with backoff, budgets and circuit breaking.

The paper's access model assumes an unreliable wide-area fabric — WS-DAI
defines ``ServiceBusyFault`` and ``DataResourceUnavailableFault``
precisely so consumers can react sensibly, and WSRF soft-state lifetime
exists because peers fail silently.  This package supplies the client
half of that contract:

* :class:`RetryPolicy` — attempt limits, exponential backoff with full
  jitter, a total time budget, message-id semantics on resend;
* :class:`CircuitBreaker` — per-service closed → open → half-open
  protection that fails fast with ``ServiceBusyFault``;
* :class:`Resilience` — the engine both transports route ``send``
  through; every WS-DAI/DAIR/DAIX client proxy accepts one.

Fault classification is strict: transport errors and the WS-DAI
transient faults retry; application faults (``InvalidExpressionFault``,
``InvalidResourceNameFault``, …) never do; an expired WSRF resource
(``ResourceUnknownFault``) retries only through an explicit re-resolve
hook.  All waiting goes through an injectable clock
(:class:`VirtualClock` for tests), and retries surface as ``rpc.retry``
spans plus ``resilience.*`` counters through :mod:`repro.obs`.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.resilience.clock import RealClock, VirtualClock
from repro.resilience.core import RETRYABLE_FAULTS, Resilience, coerce_resilience
from repro.resilience.policy import NO_RETRY, RetryPolicy
from repro.resilience.status import (
    RESILIENCE_STATUS,
    breaker_states_from_element,
    resilience_element,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "RealClock",
    "VirtualClock",
    "Resilience",
    "coerce_resilience",
    "RETRYABLE_FAULTS",
    "RetryPolicy",
    "NO_RETRY",
    "RESILIENCE_STATUS",
    "resilience_element",
    "breaker_states_from_element",
]
