"""Breaker state as a WS-DAI property element: ``obs:ResilienceStatus``.

Consistent with how :mod:`repro.obs.properties` publishes live metrics,
the resilience layer renders into the property-document vocabulary so a
deployment can surface its outbound-call health through the spec's own
``GetResourceProperty`` mechanism (attach the layer to a service via
``DataService.resilience``)::

    <obs:ResilienceStatus maxAttempts="4" budgetSeconds="30">
      <obs:Breaker service="dais://sql-service" state="open"
                   consecutiveFailures="5"/>
    </obs:ResilienceStatus>
"""

from __future__ import annotations

from repro.obs.properties import OBS_NS
from repro.xmlutil import E, QName, XmlElement

__all__ = [
    "RESILIENCE_STATUS",
    "resilience_element",
    "breaker_states_from_element",
]

#: QName of the resilience property element (use with GetResourceProperty).
RESILIENCE_STATUS = QName(OBS_NS, "ResilienceStatus")

_BREAKER = QName(OBS_NS, "Breaker")


def resilience_element(resilience) -> XmlElement:
    """Render a :class:`~repro.resilience.core.Resilience` layer's policy
    and per-service breaker states as one property element."""
    root = E(RESILIENCE_STATUS)
    root.set(QName("", "maxAttempts"), str(resilience.policy.max_attempts))
    if resilience.policy.budget_seconds is not None:
        root.set(
            QName("", "budgetSeconds"),
            format(resilience.policy.budget_seconds, "g"),
        )
    for address in sorted(resilience.breakers()):
        breaker = resilience.breakers()[address]
        node = E(_BREAKER)
        node.set(QName("", "service"), address)
        node.set(QName("", "state"), breaker.state)
        node.set(
            QName("", "consecutiveFailures"),
            str(breaker.consecutive_failures),
        )
        root.append(node)
    return root


def breaker_states_from_element(element: XmlElement) -> dict[str, str]:
    """Parse ``{service address: breaker state}`` back out of the
    property element — the consumer-side inverse of
    :func:`resilience_element`."""
    return {
        node.get(QName("", "service")) or "": node.get(QName("", "state")) or ""
        for node in element.findall(_BREAKER)
    }
