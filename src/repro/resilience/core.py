"""The resilient-call engine shared by every transport.

:class:`Resilience` owns a :class:`~repro.resilience.policy.RetryPolicy`,
one :class:`~repro.resilience.breaker.CircuitBreaker` per service
address, an injectable clock and a seeded jitter RNG.  Transports route
``send`` through :meth:`Resilience.call`, which

* fails fast with a ``ServiceBusyFault`` envelope while the breaker for
  the address is open,
* retries *transport* errors (:class:`~repro.core.faults.TransportFault`)
  and the WS-DAI retryable faults (``ServiceBusyFault``,
  ``DataResourceUnavailableFault``) with exponential backoff + jitter,
* treats a WSRF ``ResourceUnknownFault`` (an expired soft-state
  resource) as retryable only when an ``on_unknown_resource`` re-resolve
  hook is configured and agrees,
* never retries application faults (``InvalidExpressionFault``,
  ``InvalidResourceNameFault``, …) — those mean the service is healthy
  and the request is wrong,
* stops when the attempt count or the total time budget runs out.

Each retry attempt runs inside an ``rpc.retry`` span, so a retried call
renders as one trace with the attempts visible; retry and breaker
activity also feeds the ``resilience.*`` counters in :attr:`metrics`.
"""

from __future__ import annotations

import random
import threading
from typing import Callable

from repro.core.faults import (
    DataResourceUnavailableFault,
    ServiceBusyFault,
    TransportFault,
)
from repro.obs import MetricsRegistry, get_tracer
from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.resilience.clock import RealClock
from repro.resilience.policy import RetryPolicy
from repro.soap.envelope import Envelope, fault_envelope
from repro.soap.fault import SoapFault
from repro.wsrf.faults import ResourceUnknownFault

__all__ = ["Resilience"]

#: Faults that signal a transient condition worth retrying.
RETRYABLE_FAULTS = (
    TransportFault,
    ServiceBusyFault,
    DataResourceUnavailableFault,
)

SendOnce = Callable[[str, Envelope], Envelope]


class Resilience:
    """Retry + circuit-breaker engine for one consumer-side transport.

    :param policy: the retry policy (default :class:`RetryPolicy`).
    :param breaker: per-service breaker tuning; ``None`` uses the
        :class:`BreakerConfig` defaults.
    :param clock: anything with ``now()`` and ``sleep(seconds)``;
        inject :class:`~repro.resilience.clock.VirtualClock` in tests.
    :param seed: seeds the jitter RNG so backoff timelines replay.
    :param on_unknown_resource: re-resolve hook ``(address, request) ->
        bool``; called when a call faults ``ResourceUnknownFault``
        (expired soft-state resource).  Returning True — typically after
        re-creating or re-resolving the resource — makes the fault
        retryable; without a hook it is terminal.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        clock=None,
        seed: int = 0,
        on_unknown_resource: Callable[[str, Envelope], bool] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        self.clock = clock if clock is not None else RealClock()
        self.on_unknown_resource = on_unknown_resource
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Retry/breaker counters, exposable like any other registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._retries = self.metrics.counter(
            "resilience.retries", "retry attempts per wsa:Action"
        )
        self._giveups = self.metrics.counter(
            "resilience.giveups", "calls that exhausted their retry policy"
        )
        self._fast_fails = self.metrics.counter(
            "resilience.fastfail", "calls rejected by an open breaker"
        )
        self._breaker_state = self.metrics.counter(
            "resilience.breaker_state", "breaker transitions per service/state"
        )

    # -- breakers ------------------------------------------------------------

    def breaker_for(self, address: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding *address*."""
        with self._lock:
            breaker = self._breakers.get(address)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.breaker_config,
                    clock=self.clock,
                    on_transition=lambda old, new, address=address: (
                        self._note_transition(address, old, new)
                    ),
                )
                self._breakers[address] = breaker
            return breaker

    def breakers(self) -> dict[str, CircuitBreaker]:
        with self._lock:
            return dict(self._breakers)

    def _note_transition(self, address: str, old: str, new: str) -> None:
        self._breaker_state.inc(service=address, state=new)
        with get_tracer().span(
            "resilience.breaker",
            service=address,
            from_state=old,
            to_state=new,
        ):
            pass

    # -- the resilient call --------------------------------------------------

    def call(self, address: str, request: Envelope, send_once: SendOnce) -> Envelope:
        """Run one logical request with retries and breaker protection.

        *send_once* performs a single attempt (raising
        :class:`TransportFault` when nothing usable came back); the
        return value is the final response envelope.  Terminal transport
        errors re-raise after the policy is exhausted.
        """
        policy = self.policy
        breaker = self.breaker_for(address)
        action = request.headers.action
        tracer = get_tracer()
        started = self.clock.now()
        attempt = 0
        while True:
            attempt += 1
            if not breaker.allow():
                self._fast_fails.inc(action=action)
                return fault_envelope(
                    request.headers,
                    ServiceBusyFault(
                        f"circuit breaker open for {address} "
                        f"(after {breaker.consecutive_failures} consecutive "
                        f"failures)"
                    ),
                )
            if attempt == 1:
                response, fault = self._attempt(address, request, send_once)
            else:
                with tracer.span(
                    "rpc.retry", address=address, action=action, attempt=attempt
                ) as span:
                    response, fault = self._attempt(address, request, send_once)
                    if fault is not None:
                        span.mark_fault(str(fault))
            if fault is None:
                breaker.record_success()
                return response
            retryable = self._retryable(fault, address, request)
            if retryable:
                breaker.record_failure()
            else:
                # The service answered coherently; the request is wrong.
                breaker.record_success()
            if not retryable or attempt >= policy.max_attempts:
                if retryable:
                    self._giveups.inc(action=action)
                return self._terminal(response, fault)
            delay = policy.delay(attempt, self._rng)
            if policy.budget_seconds is not None:
                elapsed = self.clock.now() - started
                if elapsed + delay > policy.budget_seconds:
                    self._giveups.inc(action=action)
                    return self._terminal(response, fault)
            self.clock.sleep(delay)
            self._retries.inc(action=action)
            if policy.fresh_message_id:
                from repro.soap.addressing import new_message_id

                request.headers.message_id = new_message_id()

    def _attempt(
        self, address: str, request: Envelope, send_once: SendOnce
    ) -> tuple[Envelope | None, SoapFault | None]:
        """One attempt: (response, fault) — exactly one side is useful."""
        try:
            response = send_once(address, request)
        except TransportFault as exc:
            return None, exc
        if not response.is_fault():
            return response, None
        try:
            response.raise_if_fault()
        except SoapFault as fault:
            return response, fault
        return response, None  # pragma: no cover - is_fault guarantees raise

    def _retryable(
        self, fault: SoapFault, address: str, request: Envelope
    ) -> bool:
        if isinstance(fault, RETRYABLE_FAULTS):
            return True
        if isinstance(fault, ResourceUnknownFault):
            hook = self.on_unknown_resource
            return hook is not None and bool(hook(address, request))
        return False

    def _terminal(
        self, response: Envelope | None, fault: SoapFault | None
    ) -> Envelope:
        """Surface the final failure the way the transport contract wants:
        fault envelopes are returned, transport errors re-raised."""
        if response is not None:
            return response
        assert fault is not None
        raise fault

    # -- state exposition ----------------------------------------------------

    def status_element(self):
        """Render breaker/policy state as an ``obs:ResilienceStatus``
        element (see :mod:`repro.resilience.status`)."""
        from repro.resilience.status import resilience_element

        return resilience_element(self)


def coerce_resilience(value) -> Resilience | None:
    """Accept a :class:`Resilience`, a bare :class:`RetryPolicy`, or None
    — transports and clients take either for convenience."""
    if value is None or isinstance(value, Resilience):
        return value
    if isinstance(value, RetryPolicy):
        return Resilience(policy=value)
    raise TypeError(
        f"expected Resilience or RetryPolicy, got {type(value).__name__}"
    )
