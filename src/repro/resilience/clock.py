"""Clocks that can also *sleep* — real or virtual.

Backoff between retry attempts must be injectable: production code waits
on the real clock, tests run hundreds of seeded chaos iterations in
virtual time with zero wall-clock sleeping.  Both clocks extend the WSRF
lifetime clocks (:mod:`repro.wsrf.clock`) with a ``sleep`` method, so a
single instance can drive soft-state expiry *and* retry pacing in one
deterministic timeline.
"""

from __future__ import annotations

import time

from repro.wsrf.clock import ManualClock, SystemClock


class RealClock(SystemClock):
    """Wall-clock time and real :func:`time.sleep` — the default."""

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(ManualClock):
    """A manual clock whose ``sleep`` merely advances time.

    Every sleep is recorded, so tests can assert exactly which backoff
    delays a retry loop chose without ever waiting for them.
    """

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        #: Every delay passed to :meth:`sleep`, in order.
        self.sleeps: list[float] = []

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        if seconds > 0:
            self.advance(seconds)
