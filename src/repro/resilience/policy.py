"""Retry policy: attempt limits, exponential backoff with jitter, budgets.

The policy is pure configuration plus the backoff math; the retry *loop*
lives in :class:`repro.resilience.core.Resilience`.  Defaults follow the
usual wide-area guidance: a handful of attempts, exponential caps with
full jitter (each delay is drawn uniformly from ``[0, cap]``, which
de-correlates a thundering herd of consumers), and a total time budget
the whole call — attempts plus sleeps — may never exceed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "NO_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for one resilient call.

    :param max_attempts: total tries including the first (1 = no retry).
    :param base_delay: backoff cap before the first retry, seconds.
    :param multiplier: cap growth factor per further retry.
    :param max_delay: upper bound on any single backoff cap.
    :param jitter: ``"full"`` draws each delay uniformly from
        ``[0, cap]``; ``"none"`` sleeps the cap exactly (deterministic,
        used by tests that snapshot timelines).
    :param budget_seconds: total wall budget across all attempts and
        sleeps; ``None`` = unbounded.  A retry whose backoff would
        overrun the budget is not taken.
    :param fresh_message_id: when True every resend mints a new
        ``wsa:MessageID``; the default resends the same id, marking the
        retry as the *same* logical request (safe de-duplication target).
    :param request_timeout: per-attempt socket timeout override for
        transports that support one (HTTP); ``None`` keeps the
        transport's own default.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: str = "full"
    budget_seconds: float | None = 30.0
    fresh_message_id: bool = False
    request_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.jitter not in ("full", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def backoff_cap(self, retry_number: int) -> float:
        """The backoff ceiling before retry *retry_number* (1-based)."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        cap = self.base_delay * self.multiplier ** (retry_number - 1)
        return min(self.max_delay, cap)

    def delay(self, retry_number: int, rng: random.Random) -> float:
        """The actual delay to sleep before retry *retry_number*."""
        cap = self.backoff_cap(retry_number)
        if self.jitter == "full":
            return rng.uniform(0.0, cap)
        return cap


#: A policy that never retries — resilience plumbing with single-shot calls.
NO_RETRY = RetryPolicy(max_attempts=1)
