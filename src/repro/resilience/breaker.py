"""A per-service circuit breaker: closed → open → half-open.

While *closed*, calls flow and consecutive retryable failures are
counted; at the threshold the breaker *opens* and every call fails fast
(the resilience layer answers with ``ServiceBusyFault`` without touching
the wire).  After ``reset_timeout`` on the injected clock the breaker
goes *half-open* and admits exactly ``half_open_probes`` probe calls: if
they all succeed it closes, any failure re-opens it.

State transitions are reported through an optional callback so the
resilience layer can count them (``resilience.breaker_state``) and tag
the active span.  All state is guarded by one lock — the HTTP transport
is used from many threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.wsrf.clock import Clock

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: The transitions the state machine permits (property tests enforce this).
VALID_TRANSITIONS = {
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, OPEN),
    (HALF_OPEN, CLOSED),
}


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    reset_timeout: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")


class CircuitBreaker:
    """The breaker guarding one service address."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Clock | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        from repro.resilience.clock import RealClock

        self.config = config if config is not None else BreakerConfig()
        self._clock = clock if clock is not None else RealClock()
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        """Current state, moving open → half-open lazily on read."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def allow(self) -> bool:
        """May a call proceed right now?

        In half-open state each ``True`` consumes one probe slot; the
        caller must answer with :meth:`record_success` or
        :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            # Half-open: admit exactly the configured probe quota.
            if self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_probes:
                    self._transition(CLOSED)
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately.
                self._transition(OPEN)
                self._opened_at = self._clock.now()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._transition(OPEN)
                self._opened_at = self._clock.now()

    # -- internals (call with the lock held) --------------------------------

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock.now() - self._opened_at >= self.config.reset_timeout
        ):
            self._transition(HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        assert (old_state, new_state) in VALID_TRANSITIONS, (
            f"illegal breaker transition {old_state} -> {new_state}"
        )
        self._state = new_state
        if new_state == HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)
