"""The ``obs:TraceContext`` SOAP header block: trace propagation.

The W3C ``traceparent`` HTTP header carries (version, trace-id,
parent-id, flags) so a callee can join the caller's trace.  DAIS
messages already carry their metadata as SOAP header blocks next to the
WS-Addressing properties, so the same quartet travels as one header
element instead of an HTTP header — transport-agnostic, which matters
here because the loopback and HTTP bindings must stay wire-equivalent::

    <obs:TraceContext version="00">
      <obs:TraceId>trace-0000002a</obs:TraceId>
      <obs:ParentId>0000002a</obs:ParentId>
    </obs:TraceContext>

Injection is the transport's job (both call :func:`inject` on the
request envelope while the ``rpc.send`` span is open); extraction is the
service side's (:func:`extract_context` +
:func:`adopt_current_span` in ``DataService.dispatch`` and
``DaisHttpServer``).

Parsing is *tolerant by design*: a malformed, truncated, oversized or
simply absent header yields ``None`` and the request proceeds on a
fresh root trace — observability must never fault a data request.
Injection is also globally switchable (:func:`set_propagation`) so the
benchmarks can price the header itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.properties import OBS_NS
from repro.obs.tracing import current_span
from repro.soap.addressing import MessageHeaders
from repro.soap.envelope import Envelope
from repro.xmlutil import E, QName, XmlElement

__all__ = [
    "TRACE_CONTEXT",
    "TraceContext",
    "to_header_block",
    "from_header_block",
    "extract_context",
    "inject",
    "adopt_current_span",
    "set_propagation",
    "propagation_enabled",
]

#: QName of the trace-propagation header block.
TRACE_CONTEXT = QName(OBS_NS, "TraceContext")

_TRACE_ID = QName(OBS_NS, "TraceId")
_PARENT_ID = QName(OBS_NS, "ParentId")
_VERSION_ATTR = QName("", "version")

#: The wire-format version this implementation speaks.
VERSION = "00"

#: Hardening bounds: anything longer is treated as malformed and ignored.
MAX_TRACE_ID_LENGTH = 128
MAX_PARENT_ID_LENGTH = 64

_propagate = True


def set_propagation(enabled: bool) -> bool:
    """Globally enable/disable header injection; returns the old state.

    Extraction is unaffected — a service always honours an incoming
    context.  Exists so benchmarks can measure the injection cost
    (``benchmarks/test_fig2_direct_message.py``).
    """
    global _propagate
    previous = _propagate
    _propagate = bool(enabled)
    return previous


def propagation_enabled() -> bool:
    return _propagate


@dataclass(frozen=True)
class TraceContext:
    """The (trace_id, parent span id) pair a caller hands its callee."""

    trace_id: str
    parent_id: str


def to_header_block(context: TraceContext) -> XmlElement:
    """Render *context* as the ``obs:TraceContext`` header element."""
    block = E(
        TRACE_CONTEXT,
        E(_TRACE_ID, context.trace_id),
        E(_PARENT_ID, context.parent_id),
    )
    block.set(_VERSION_ATTR, VERSION)
    return block


def from_header_block(block: XmlElement) -> TraceContext | None:
    """Parse one header element; ``None`` for anything non-conforming.

    Unknown versions are ignored (a future version may change the child
    layout); so are missing/empty/oversized ids.  Never raises.
    """
    try:
        if block.tag != TRACE_CONTEXT:
            return None
        version = block.get(_VERSION_ATTR)
        if version is not None and version != VERSION:
            return None
        trace_id = (block.findtext(_TRACE_ID) or "").strip()
        parent_id = (block.findtext(_PARENT_ID) or "").strip()
        if not trace_id or not parent_id:
            return None
        if (
            len(trace_id) > MAX_TRACE_ID_LENGTH
            or len(parent_id) > MAX_PARENT_ID_LENGTH
        ):
            return None
        if any(ch.isspace() for ch in trace_id + parent_id):
            return None
        return TraceContext(trace_id=trace_id, parent_id=parent_id)
    except Exception:
        return None


def extract_context(blocks) -> TraceContext | None:
    """The first well-formed ``obs:TraceContext`` among *blocks* (the
    non-WSA header blocks a parsed envelope carries), else ``None``."""
    for block in blocks:
        try:
            tag = block.tag
        except Exception:
            continue
        if tag == TRACE_CONTEXT:
            context = from_header_block(block)
            if context is not None:
                return context
    return None


def inject(request: Envelope) -> Envelope:
    """Return *request* with the current span's context as a header.

    A no-op (returning the same envelope object) when propagation is
    off or no span is recording — the wire format is byte-identical to
    an uninstrumented build unless a trace is actually live.
    """
    if not _propagate:
        return request
    span = current_span()
    if not span.recording:
        return request
    block = to_header_block(TraceContext(span.trace_id, span.span_id))
    headers = request.headers
    return Envelope(
        headers=MessageHeaders(
            to=headers.to,
            action=headers.action,
            message_id=headers.message_id,
            relates_to=headers.relates_to,
            reply_to=headers.reply_to,
            reference_parameters=headers.reference_parameters + (block,),
        ),
        payload=request.payload,
    )


def adopt_current_span(context: TraceContext | None) -> bool:
    """Make the innermost open span join *context*'s trace.

    Only a recording root span adopts (see :meth:`Span.adopt`); passing
    ``None`` is a no-op so callers can chain
    ``adopt_current_span(extract_context(...))`` unconditionally.
    """
    if context is None:
        return False
    return current_span().adopt(context.trace_id, context.parent_id)
