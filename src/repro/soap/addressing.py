"""WS-Addressing: endpoint references and message-addressing headers.

Per the paper (§3), a *data resource address* is an End Point Reference
(EPR) whose reference parameters carry the resource's abstract name; DAIS
additionally mandates the abstract name in the message body, so the EPR in
the SOAP header is an optional optimization.  This module implements the
subset of WS-Addressing 1.0 the specifications rely on.
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field

from repro.soap.namespaces import WSA_NS
from repro.xmlutil import E, QName, XmlElement

#: The WS-Addressing anonymous address: "reply on the same channel".
ANONYMOUS_ADDRESS = f"{WSA_NS}/anonymous"

_EPR_TAG = QName(WSA_NS, "EndpointReference")
_ADDRESS = QName(WSA_NS, "Address")
_REF_PARAMS = QName(WSA_NS, "ReferenceParameters")
_METADATA = QName(WSA_NS, "Metadata")

_message_counter = itertools.count(1)


def new_message_id() -> str:
    """Mint a globally unique ``wsa:MessageID`` URI."""
    return f"urn:uuid:{uuid.uuid4()}"


def deterministic_message_id() -> str:
    """Mint a process-unique, *deterministic* message id (for replayable
    tests and benchmarks, where UUID churn would defeat comparisons)."""
    return f"urn:dais-py:msg:{next(_message_counter)}"


@dataclass(frozen=True)
class EndpointReference:
    """A WS-Addressing endpoint reference.

    :param address: the endpoint URI the messages are sent to.
    :param reference_parameters: opaque elements echoed in the header of
        every message addressed with this EPR.  DAIS data services put the
        resource abstract name here.
    """

    address: str
    reference_parameters: tuple[XmlElement, ...] = ()
    metadata: tuple[XmlElement, ...] = ()

    def to_xml(self, tag: QName | None = None) -> XmlElement:
        """Render as ``wsa:EndpointReference`` (or a caller-supplied tag,
        for specs that embed EPRs under their own element names)."""
        node = E(tag or _EPR_TAG, E(_ADDRESS, self.address))
        if self.reference_parameters:
            node.append(
                E(_REF_PARAMS, [p.copy() for p in self.reference_parameters])
            )
        if self.metadata:
            node.append(E(_METADATA, [m.copy() for m in self.metadata]))
        return node

    @classmethod
    def from_xml(cls, element: XmlElement) -> "EndpointReference":
        """Parse an EPR regardless of the wrapping element name."""
        address = element.findtext(_ADDRESS)
        if address is None:
            raise ValueError("EndpointReference without wsa:Address")
        params = element.find(_REF_PARAMS)
        meta = element.find(_METADATA)
        return cls(
            address=address.strip(),
            reference_parameters=tuple(
                p.copy() for p in (params.element_children() if params else [])
            ),
            metadata=tuple(
                m.copy() for m in (meta.element_children() if meta else [])
            ),
        )

    def reference_parameter_text(self, tag: QName) -> str | None:
        """Text of the first reference parameter with the given tag."""
        for param in self.reference_parameters:
            if param.tag == tag:
                return param.text
        return None


@dataclass
class MessageHeaders:
    """The message-addressing properties of one SOAP message."""

    to: str
    action: str
    message_id: str = field(default_factory=new_message_id)
    relates_to: str | None = None
    reply_to: EndpointReference | None = None
    #: Reference parameters copied from the target EPR (e.g. the DAIS data
    #: resource address), echoed verbatim per WS-Addressing.
    reference_parameters: tuple[XmlElement, ...] = ()

    def to_header_blocks(self) -> list[XmlElement]:
        """Render as the list of header-child elements."""
        blocks = [
            E(QName(WSA_NS, "To"), self.to),
            E(QName(WSA_NS, "Action"), self.action),
            E(QName(WSA_NS, "MessageID"), self.message_id),
        ]
        if self.relates_to:
            blocks.append(E(QName(WSA_NS, "RelatesTo"), self.relates_to))
        if self.reply_to is not None:
            blocks.append(self.reply_to.to_xml(QName(WSA_NS, "ReplyTo")))
        blocks.extend(p.copy() for p in self.reference_parameters)
        return blocks

    @classmethod
    def from_header_blocks(cls, blocks: list[XmlElement]) -> "MessageHeaders":
        """Parse addressing properties out of the header children.

        Elements that are not WS-Addressing blocks are collected as echoed
        reference parameters.
        """
        values: dict[str, str] = {}
        reply_to: EndpointReference | None = None
        extras: list[XmlElement] = []
        for block in blocks:
            if block.tag.namespace != WSA_NS:
                extras.append(block.copy())
                continue
            if block.tag.local == "ReplyTo":
                reply_to = EndpointReference.from_xml(block)
            else:
                values[block.tag.local] = block.text.strip()
        if "To" not in values or "Action" not in values:
            raise ValueError("missing mandatory wsa:To / wsa:Action headers")
        return cls(
            to=values["To"],
            action=values["Action"],
            message_id=values.get("MessageID", ""),
            relates_to=values.get("RelatesTo"),
            reply_to=reply_to,
            reference_parameters=tuple(extras),
        )

    def reply(self, action: str) -> "MessageHeaders":
        """Headers for the response correlated to this request."""
        target = self.reply_to.address if self.reply_to else ANONYMOUS_ADDRESS
        return MessageHeaders(
            to=target,
            action=action,
            relates_to=self.message_id or None,
        )
