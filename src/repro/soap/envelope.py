"""The SOAP envelope: header + single-payload body.

DAIS messages are document-literal: the body carries exactly one request or
response element (or a fault).  :class:`Envelope` couples the payload with
its :class:`~repro.soap.addressing.MessageHeaders` and handles the
XML-bytes round trip that every transport performs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro import fastpath
from repro.soap.addressing import MessageHeaders
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.namespaces import SOAP_ENV_NS, WSA_NS
from repro.xmlutil import (
    ByteTemplate,
    E,
    QName,
    StreamedElement,
    XmlElement,
    document_prefixes,
    parse_bytes,
    serialize_bytes,
    serialize_chunks,
    serialize_fragment,
)
from repro.xmlutil.serialize import _collect_namespaces

_ENVELOPE = QName(SOAP_ENV_NS, "Envelope")
_HEADER = QName(SOAP_ENV_NS, "Header")
_BODY = QName(SOAP_ENV_NS, "Body")

_WSA_TO = QName(WSA_NS, "To")
_WSA_ACTION = QName(WSA_NS, "Action")
_WSA_MESSAGE_ID = QName(WSA_NS, "MessageID")
_WSA_RELATES_TO = QName(WSA_NS, "RelatesTo")


class _EnvelopeTemplate:
    """A compiled envelope skeleton plus the prefix map it was built with."""

    __slots__ = ("template", "prefixes")

    def __init__(self, template: ByteTemplate, prefixes: dict[str, str]) -> None:
        self.template = template
        self.prefixes = prefixes


#: Compiled skeletons keyed by (payload namespace order, has RelatesTo).
_TEMPLATES: dict[tuple, _EnvelopeTemplate] = {}
_TEMPLATES_LOCK = threading.Lock()
#: Bound on distinct shapes retained (a DAIS deployment has a handful).
_TEMPLATES_CAP = 256


def _skeleton_builder(payload_ns: tuple[str, ...], has_relates_to: bool):
    def build(slots) -> XmlElement:
        blocks = [
            E(_WSA_TO, slots.text("to")),
            E(_WSA_ACTION, slots.text("action")),
            E(_WSA_MESSAGE_ID, slots.text("message_id")),
        ]
        if has_relates_to:
            blocks.append(E(_WSA_RELATES_TO, slots.text("relates_to")))
        sentinel = slots.splice("payload")
        body = StreamedElement(
            _BODY, lambda q: iter([sentinel]), namespaces=payload_ns
        )
        return E(_ENVELOPE, E(_HEADER, blocks), body)

    return build


def _envelope_template(
    payload_ns: tuple[str, ...], has_relates_to: bool
) -> _EnvelopeTemplate:
    key = (payload_ns, has_relates_to)
    entry = _TEMPLATES.get(key)
    if entry is not None:
        return entry
    build = _skeleton_builder(payload_ns, has_relates_to)
    template = ByteTemplate.compile(build, xml_declaration=True)
    from repro.xmlutil import TemplateSlots

    prefixes = document_prefixes(build(TemplateSlots()))
    entry = _EnvelopeTemplate(template, prefixes)
    with _TEMPLATES_LOCK:
        if len(_TEMPLATES) < _TEMPLATES_CAP:
            _TEMPLATES.setdefault(key, entry)
        return _TEMPLATES.get(key, entry)


@dataclass
class Envelope:
    """One SOAP message: addressing headers plus a single body payload."""

    headers: MessageHeaders
    payload: XmlElement

    def to_xml(self) -> XmlElement:
        """Render the full ``soapenv:Envelope``."""
        return E(
            _ENVELOPE,
            E(_HEADER, self.headers.to_header_blocks()),
            E(_BODY, self.payload.copy()),
        )

    def _serial_view(self) -> XmlElement:
        """The envelope tree for serialization only: shares the payload
        (no deep copy) — serializers never mutate, and the view is
        discarded right after writing."""
        return E(
            _ENVELOPE,
            E(_HEADER, self.headers.to_header_blocks()),
            E(_BODY, self.payload),
        )

    def to_bytes(self) -> bytes:
        """Serialize to UTF-8 wire bytes.

        Common-shape envelopes (the WS-Addressing trio, optionally
        RelatesTo, no reply-to/reference parameters) render through a
        precompiled byte template: the fixed scaffolding is replayed
        from bytes and only the header values and the payload fragment
        are spliced in — byte-identical to tree serialization, which
        remains the fallback for every other shape."""
        if not fastpath.enabled():
            return serialize_bytes(self.to_xml())
        fast = self._template_bytes()
        if fast is not None:
            return fast
        return serialize_bytes(self._serial_view())

    def _template_bytes(self) -> bytes | None:
        headers = self.headers
        if headers.reply_to is not None or headers.reference_parameters:
            return None
        if not (headers.to and headers.action and headers.message_id):
            # Checked before the payload fragment is rendered: a lazy
            # payload is one-shot, so nothing may drain it unless the
            # template is certain to be used.
            return None
        try:
            payload_ns = tuple(_collect_namespaces(self.payload))
            entry = _envelope_template(payload_ns, bool(headers.relates_to))
            values = {
                "to": headers.to,
                "action": headers.action,
                "message_id": headers.message_id,
                "payload": serialize_fragment(self.payload, entry.prefixes),
            }
            if headers.relates_to:
                values["relates_to"] = headers.relates_to
            return entry.template.render(values)
        except (KeyError, ValueError):
            # Unbound prefix or odd shape: the tree path handles it.
            return None

    def is_streaming(self) -> bool:
        """True when the payload contains lazily rendered content
        (a :class:`~repro.xmlutil.StreamedElement` anywhere in the
        tree) — transports can then serialize incrementally via
        :meth:`iter_bytes` instead of materializing the whole body."""
        return _has_streamed_content(self.payload)

    def iter_bytes(self):
        """Serialize incrementally: an iterator of UTF-8 fragments whose
        concatenation equals :meth:`to_bytes`.  Lazy payload content is
        rendered as it is pulled, so a streamed dataset never exists in
        memory as one string."""
        view = self._serial_view() if fastpath.enabled() else self.to_xml()
        for chunk in serialize_chunks(view):
            yield chunk.encode("utf-8")

    @classmethod
    def from_xml(cls, root: XmlElement) -> "Envelope":
        """Parse an envelope element back into headers + payload."""
        if root.tag != _ENVELOPE:
            raise SoapFault(
                FaultCode.VERSION_MISMATCH,
                f"expected soapenv:Envelope, found {root.tag.clark()}",
            )
        header = root.find(_HEADER)
        body = root.find(_BODY)
        if body is None:
            raise ValueError("envelope without soapenv:Body")
        payload_elements = body.element_children()
        if len(payload_elements) != 1:
            raise ValueError(
                f"DAIS messages carry exactly one body element, "
                f"found {len(payload_elements)}"
            )
        blocks = header.element_children() if header is not None else []
        # No defensive copy: the parse tree this payload came from is
        # freshly built per message and referenced by nobody else.
        return cls(
            headers=MessageHeaders.from_header_blocks(blocks),
            payload=payload_elements[0],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope":
        """Parse wire bytes into an envelope."""
        return cls.from_xml(parse_bytes(data))

    # -- fault plumbing ----------------------------------------------------

    def is_fault(self) -> bool:
        """True when the body carries a ``soapenv:Fault``."""
        return SoapFault.is_fault(self.payload)

    def raise_if_fault(self) -> "Envelope":
        """Raise the carried fault as an exception, else return self.

        The raised exception is re-typed to the registered DAIS fault class
        when the detail identifies one (see :mod:`repro.core.faults`).
        """
        if not self.is_fault():
            return self
        fault = SoapFault.from_xml(self.payload)
        raise _specialize(fault)


def _has_streamed_content(element: XmlElement) -> bool:
    if isinstance(element, StreamedElement):
        return True
    return any(
        _has_streamed_content(child) for child in element.element_children()
    )


def _specialize(fault: SoapFault) -> SoapFault:
    """Hook point: :mod:`repro.core.faults` installs a resolver that maps
    detail elements back to typed DAIS fault classes."""
    for resolver in _FAULT_RESOLVERS:
        typed = resolver(fault)
        if typed is not None:
            return typed
    return fault


_FAULT_RESOLVERS: list = []


def register_fault_resolver(resolver) -> None:
    """Register a callable ``SoapFault -> SoapFault | None`` used by
    :meth:`Envelope.raise_if_fault` to restore typed fault classes."""
    _FAULT_RESOLVERS.append(resolver)


def fault_envelope(request_headers: MessageHeaders, fault: SoapFault) -> Envelope:
    """Build the response envelope carrying *fault*, correlated to the
    request it answers."""
    return Envelope(
        headers=request_headers.reply(f"{SOAP_ENV_NS}/fault"),
        payload=fault.to_xml(),
    )
