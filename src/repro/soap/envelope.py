"""The SOAP envelope: header + single-payload body.

DAIS messages are document-literal: the body carries exactly one request or
response element (or a fault).  :class:`Envelope` couples the payload with
its :class:`~repro.soap.addressing.MessageHeaders` and handles the
XML-bytes round trip that every transport performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soap.addressing import MessageHeaders
from repro.soap.fault import FaultCode, SoapFault
from repro.soap.namespaces import SOAP_ENV_NS
from repro.xmlutil import (
    E,
    QName,
    StreamedElement,
    XmlElement,
    parse_bytes,
    serialize_bytes,
    serialize_chunks,
)

_ENVELOPE = QName(SOAP_ENV_NS, "Envelope")
_HEADER = QName(SOAP_ENV_NS, "Header")
_BODY = QName(SOAP_ENV_NS, "Body")


@dataclass
class Envelope:
    """One SOAP message: addressing headers plus a single body payload."""

    headers: MessageHeaders
    payload: XmlElement

    def to_xml(self) -> XmlElement:
        """Render the full ``soapenv:Envelope``."""
        return E(
            _ENVELOPE,
            E(_HEADER, self.headers.to_header_blocks()),
            E(_BODY, self.payload.copy()),
        )

    def to_bytes(self) -> bytes:
        """Serialize to UTF-8 wire bytes."""
        return serialize_bytes(self.to_xml())

    def is_streaming(self) -> bool:
        """True when the payload contains lazily rendered content
        (a :class:`~repro.xmlutil.StreamedElement` anywhere in the
        tree) — transports can then serialize incrementally via
        :meth:`iter_bytes` instead of materializing the whole body."""
        return _has_streamed_content(self.payload)

    def iter_bytes(self):
        """Serialize incrementally: an iterator of UTF-8 fragments whose
        concatenation equals :meth:`to_bytes`.  Lazy payload content is
        rendered as it is pulled, so a streamed dataset never exists in
        memory as one string."""
        for chunk in serialize_chunks(self.to_xml()):
            yield chunk.encode("utf-8")

    @classmethod
    def from_xml(cls, root: XmlElement) -> "Envelope":
        """Parse an envelope element back into headers + payload."""
        if root.tag != _ENVELOPE:
            raise SoapFault(
                FaultCode.VERSION_MISMATCH,
                f"expected soapenv:Envelope, found {root.tag.clark()}",
            )
        header = root.find(_HEADER)
        body = root.find(_BODY)
        if body is None:
            raise ValueError("envelope without soapenv:Body")
        payload_elements = body.element_children()
        if len(payload_elements) != 1:
            raise ValueError(
                f"DAIS messages carry exactly one body element, "
                f"found {len(payload_elements)}"
            )
        blocks = header.element_children() if header is not None else []
        # No defensive copy: the parse tree this payload came from is
        # freshly built per message and referenced by nobody else.
        return cls(
            headers=MessageHeaders.from_header_blocks(blocks),
            payload=payload_elements[0],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope":
        """Parse wire bytes into an envelope."""
        return cls.from_xml(parse_bytes(data))

    # -- fault plumbing ----------------------------------------------------

    def is_fault(self) -> bool:
        """True when the body carries a ``soapenv:Fault``."""
        return SoapFault.is_fault(self.payload)

    def raise_if_fault(self) -> "Envelope":
        """Raise the carried fault as an exception, else return self.

        The raised exception is re-typed to the registered DAIS fault class
        when the detail identifies one (see :mod:`repro.core.faults`).
        """
        if not self.is_fault():
            return self
        fault = SoapFault.from_xml(self.payload)
        raise _specialize(fault)


def _has_streamed_content(element: XmlElement) -> bool:
    if isinstance(element, StreamedElement):
        return True
    return any(
        _has_streamed_content(child) for child in element.element_children()
    )


def _specialize(fault: SoapFault) -> SoapFault:
    """Hook point: :mod:`repro.core.faults` installs a resolver that maps
    detail elements back to typed DAIS fault classes."""
    for resolver in _FAULT_RESOLVERS:
        typed = resolver(fault)
        if typed is not None:
            return typed
    return fault


_FAULT_RESOLVERS: list = []


def register_fault_resolver(resolver) -> None:
    """Register a callable ``SoapFault -> SoapFault | None`` used by
    :meth:`Envelope.raise_if_fault` to restore typed fault classes."""
    _FAULT_RESOLVERS.append(resolver)


def fault_envelope(request_headers: MessageHeaders, fault: SoapFault) -> Envelope:
    """Build the response envelope carrying *fault*, correlated to the
    request it answers."""
    return Envelope(
        headers=request_headers.reply(f"{SOAP_ENV_NS}/fault"),
        payload=fault.to_xml(),
    )
