"""Wire namespaces for the SOAP and WS-Addressing layers."""

from repro.xmlutil.names import DEFAULT_REGISTRY

#: SOAP 1.1 envelope namespace.
SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"
#: WS-Addressing 1.0 core namespace (W3C CR, August 2005 — as cited by the paper).
WSA_NS = "http://www.w3.org/2005/08/addressing"

DEFAULT_REGISTRY.register("soapenv", SOAP_ENV_NS)
DEFAULT_REGISTRY.register("wsa", WSA_NS)
