"""Wire namespaces for the SOAP and WS-Addressing layers."""

from repro.xmlutil.names import DEFAULT_REGISTRY
from repro.xmlutil.parser import intern_vocabulary

#: SOAP 1.1 envelope namespace.
SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"
#: WS-Addressing 1.0 core namespace (W3C CR, August 2005 — as cited by the paper).
WSA_NS = "http://www.w3.org/2005/08/addressing"

DEFAULT_REGISTRY.register("soapenv", SOAP_ENV_NS)
DEFAULT_REGISTRY.register("wsa", WSA_NS)

# Every message on a DAIS wire carries these; interning them lets the
# parser skip name resolution for the envelope scaffolding.
intern_vocabulary(SOAP_ENV_NS, ("Envelope", "Header", "Body", "Fault"))
intern_vocabulary(
    WSA_NS, ("To", "Action", "MessageID", "RelatesTo", "ReplyTo",
             "Address", "ReferenceParameters", "Metadata",
             "EndpointReference")
)
