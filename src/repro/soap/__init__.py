"""SOAP 1.1-style messaging substrate.

Every DAIS operation in dais-py is carried as a SOAP envelope: a header
carrying WS-Addressing blocks (``To``, ``Action``, ``MessageID`` and —
optionally — the data resource address as an endpoint reference) and a body
carrying exactly one request or response element.  The paper (§3) mandates
that the data resource *abstract name* always travels in the body so the
message framework is identical with and without WSRF; this package enforces
that convention at the envelope level and leaves the body payloads to
:mod:`repro.core`, :mod:`repro.dair` and :mod:`repro.daix`.
"""

from repro.soap.namespaces import SOAP_ENV_NS, WSA_NS
from repro.soap.fault import SoapFault, FaultCode
from repro.soap.envelope import Envelope
from repro.soap.addressing import (
    EndpointReference,
    MessageHeaders,
    new_message_id,
    ANONYMOUS_ADDRESS,
)
from repro.soap.tracecontext import (
    TRACE_CONTEXT,
    TraceContext,
    adopt_current_span,
    extract_context,
    inject,
    propagation_enabled,
    set_propagation,
)

__all__ = [
    "SOAP_ENV_NS",
    "WSA_NS",
    "SoapFault",
    "FaultCode",
    "Envelope",
    "EndpointReference",
    "MessageHeaders",
    "new_message_id",
    "ANONYMOUS_ADDRESS",
    "TRACE_CONTEXT",
    "TraceContext",
    "adopt_current_span",
    "extract_context",
    "inject",
    "propagation_enabled",
    "set_propagation",
]
