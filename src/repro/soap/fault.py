"""SOAP fault model.

A :class:`SoapFault` is both the wire representation (``soapenv:Fault``) and
the Python exception raised on the consumer side when a response envelope
carries a fault.  DAIS-specific faults (:mod:`repro.core.faults`) subclass it
and contribute a typed ``detail`` element.
"""

from __future__ import annotations

import enum

from repro.soap.namespaces import SOAP_ENV_NS
from repro.xmlutil import E, QName, XmlElement

_FAULT_TAG = QName(SOAP_ENV_NS, "Fault")


class FaultCode(enum.Enum):
    """The SOAP 1.1 fault code taxonomy."""

    CLIENT = "Client"
    SERVER = "Server"
    VERSION_MISMATCH = "VersionMismatch"
    MUST_UNDERSTAND = "MustUnderstand"


class SoapFault(Exception):
    """A SOAP fault, usable as an exception and serializable to XML.

    :param code: coarse SOAP fault code (who is to blame).
    :param message: human-readable fault string.
    :param detail: optional list of application-defined detail elements;
        DAIS faults put their typed fault element here.
    """

    def __init__(
        self,
        code: FaultCode,
        message: str,
        detail: list[XmlElement] | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = [item.copy() for item in (detail or [])]

    def to_xml(self) -> XmlElement:
        """Render as a ``soapenv:Fault`` element."""
        fault = E(
            _FAULT_TAG,
            E(QName("", "faultcode"), f"soapenv:{self.code.value}"),
            E(QName("", "faultstring"), self.message),
        )
        if self.detail:
            detail = E(QName("", "detail"))
            for item in self.detail:
                detail.append(item.copy())
            fault.append(detail)
        return fault

    @classmethod
    def from_xml(cls, element: XmlElement) -> "SoapFault":
        """Parse a ``soapenv:Fault`` element (inverse of :meth:`to_xml`)."""
        if element.tag != _FAULT_TAG:
            raise ValueError(f"not a SOAP fault: {element.tag.clark()}")
        raw_code = element.findtext("faultcode", "Server") or "Server"
        local = raw_code.rpartition(":")[2]
        try:
            code = FaultCode(local)
        except ValueError:
            code = FaultCode.SERVER
        message = element.findtext("faultstring", "") or ""
        detail_el = element.find("detail")
        detail = detail_el.element_children() if detail_el is not None else []
        return cls(code, message, [d.copy() for d in detail])

    @staticmethod
    def is_fault(element: XmlElement) -> bool:
        """True when *element* is a ``soapenv:Fault``."""
        return element.tag == _FAULT_TAG
