"""Kill switch for the compiled hot path.

The serialization/plan-cache optimizations (prepared-statement plan
cache, byte-template envelopes, shared — not copied — dataset subtrees,
batched row emission) are pure performance work: with the switch off,
every call site falls back to the straightforward tree-walking path the
optimizations replaced.  Two audiences use this:

* the ``bench-fig2`` gate runs the same workload both ways in one
  process to prove (and hard-assert) the message-layer speedup;
* operators can set ``REPRO_FASTPATH=0`` to rule the compiled path out
  when chasing a wire-format discrepancy, since both paths must be
  byte-identical.

The flag is read per call, not captured at import, so tests and
benchmarks can flip it at runtime.  It is process-global and not meant
to be toggled while requests are in flight.
"""

from __future__ import annotations

import os

_enabled: bool = os.environ.get("REPRO_FASTPATH", "1") != "0"


def enabled() -> bool:
    """True when hot-path shortcuts (templates, caches, batching) run."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip the switch; returns the previous value for restore."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous
