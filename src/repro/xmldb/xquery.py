"""An XQuery FLWOR-lite evaluator.

Supports the profile WS-DAIX's ``XQueryExecute`` exercises:

* clauses: ``for $v in <xpath>``, ``let $v := <xpath>``, ``where <xpath>``,
  ``order by <xpath> [ascending|descending]``, ``return <expr>``;
* return expressions: an XPath expression, or a direct element
  constructor with ``{...}`` enclosed expressions in content and
  attribute values;
* expressions are XPath 1.0 (via :mod:`repro.xpath`) with variable
  references bound by the enclosing clauses.

This is not the full XQuery 1.0 language (no modules, types, user
functions, or nested FLWOR) — DESIGN.md records the subset.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.xmldb.errors import XQueryError
from repro.xmlutil import E, QName, XmlElement
from repro.xmlutil.tree import Text
from repro.xpath import XPathEngine, XPathError
from repro.xpath.context import string_value
from repro.xpath.functions import to_string

_CLAUSE_RE = re.compile(
    r"\b(for|let|where|order\s+by|return)\b", re.IGNORECASE
)
_VAR_RE = re.compile(r"\$([A-Za-z_][\w\-]*)")


@dataclass
class _Clause:
    kind: str  # for / let / where / order / return
    text: str


def _split_clauses(query: str) -> list[_Clause]:
    """Split the query at top-level clause keywords (depth-0, unquoted)."""
    clauses: list[_Clause] = []
    boundaries: list[tuple[int, int, str]] = []
    depth = 0
    quote: str | None = None
    index = 0
    while index < len(query):
        ch = query[index]
        if quote:
            if ch == quote:
                quote = None
            index += 1
            continue
        if ch in "'\"":
            quote = ch
            index += 1
            continue
        if ch in "([{":
            depth += 1
            index += 1
            continue
        if ch == "<" and index + 1 < len(query) and (
            query[index + 1].isalpha() or query[index + 1] in "_/"
        ):
            # A constructor tag (not a comparison operator).
            depth += 1
            index += 1
            continue
        if ch in ")]}":
            depth = max(0, depth - 1)
            index += 1
            continue
        if ch == ">":
            depth = max(0, depth - 1)
            index += 1
            continue
        if depth == 0:
            match = _CLAUSE_RE.match(query, index)
            if match and _word_boundary(query, index, match.end()):
                keyword = re.sub(r"\s+", " ", match.group(1).lower())
                boundaries.append((index, match.end(), keyword))
                index = match.end()
                continue
        index += 1
    if not boundaries:
        raise XQueryError("not a FLWOR expression (no clauses found)")
    for i, (start, body_start, keyword) in enumerate(boundaries):
        end = boundaries[i + 1][0] if i + 1 < len(boundaries) else len(query)
        kind = "order" if keyword.startswith("order") else keyword
        clauses.append(_Clause(kind, query[body_start:end].strip()))
    head = query[: boundaries[0][0]].strip()
    if head:
        raise XQueryError(f"unexpected text before first clause: {head!r}")
    return clauses


def _word_boundary(query: str, start: int, end: int) -> bool:
    before_ok = start == 0 or not (query[start - 1].isalnum() or query[start - 1] in "_$-")
    after_ok = end >= len(query) or not (query[end].isalnum() or query[end] == "_")
    return before_ok and after_ok


class XQueryEngine:
    """Evaluates FLWOR-lite queries against one document root."""

    def __init__(self, namespaces: dict[str, str] | None = None) -> None:
        self._xpath = XPathEngine(namespaces=namespaces)

    def execute(
        self,
        query: str,
        root: XmlElement | list[XmlElement],
        variables: dict | None = None,
    ) -> list:
        """Run *query* against one document or a collection of documents.

        With a list of roots, the outermost ``for`` clause ranges over
        every document (collection semantics: ``where``/``order by``
        apply globally across documents).  A query without FLWOR clauses
        is evaluated as a bare XPath expression per document.
        """
        roots = root if isinstance(root, list) else [root]
        if not roots:
            return []
        query = query.strip()
        if not re.match(r"(for|let)\b", query, re.IGNORECASE):
            results: list = []
            for document_root in roots:
                results.extend(
                    self._bare_expression(query, document_root, variables)
                )
            return results

        clauses = _split_clauses(query)
        if clauses[-1].kind != "return":
            raise XQueryError("FLWOR must end with a return clause")
        return_text = clauses[-1].text
        # Each tuple is (document root this binding is anchored to, vars).
        bindings: list[tuple[XmlElement, dict]] = [
            (roots[0], dict(variables or {}))
        ]
        first_for_pending = len(roots) > 1
        order_specs: list[tuple[str, bool]] = []

        for clause in clauses[:-1]:
            if clause.kind == "for":
                bindings = self._apply_for(
                    clause.text,
                    bindings,
                    roots if first_for_pending else None,
                )
                first_for_pending = False
            elif clause.kind == "let":
                bindings = self._apply_let(clause.text, bindings)
            elif clause.kind == "where":
                bindings = [
                    (anchor, b)
                    for anchor, b in bindings
                    if self._boolean(clause.text, anchor, b)
                ]
            elif clause.kind == "order":
                order_specs.append(_parse_order_spec(clause.text))
            else:
                raise XQueryError(f"misplaced {clause.kind} clause")

        if order_specs:
            bindings = self._order(bindings, order_specs)

        results = []
        for anchor, binding in bindings:
            results.extend(self._evaluate_return(return_text, anchor, binding))
        return results

    # -- clause evaluation -------------------------------------------------

    def _apply_for(
        self,
        text: str,
        bindings: list[tuple[XmlElement, dict]],
        fan_out_roots: list[XmlElement] | None,
    ) -> list[tuple[XmlElement, dict]]:
        variable, expression = _parse_binding(text, "in")
        out: list[tuple[XmlElement, dict]] = []
        for anchor, binding in bindings:
            anchors = fan_out_roots if fan_out_roots is not None else [anchor]
            for document_root in anchors:
                value = self._eval(expression, document_root, binding)
                items = value if isinstance(value, list) else [value]
                for item in items:
                    extended = dict(binding)
                    extended[variable] = (
                        [item] if not isinstance(item, list) else item
                    )
                    out.append((document_root, extended))
        return out

    def _apply_let(
        self, text: str, bindings: list[tuple[XmlElement, dict]]
    ) -> list[tuple[XmlElement, dict]]:
        variable, expression = _parse_binding(text, ":=")
        out = []
        for anchor, binding in bindings:
            extended = dict(binding)
            extended[variable] = self._eval(expression, anchor, binding)
            out.append((anchor, extended))
        return out

    def _order(
        self,
        bindings: list[tuple[XmlElement, dict]],
        specs: list[tuple[str, bool]],
    ) -> list[tuple[XmlElement, dict]]:
        # Sort per spec, last key first, honouring direction (stable sort).
        ordered = list(bindings)
        for position in range(len(specs) - 1, -1, -1):
            expression, ascending = specs[position]
            ordered.sort(
                key=lambda pair: _order_key(
                    self._eval(expression, pair[0], pair[1])
                ),
                reverse=not ascending,
            )
        return ordered

    # -- return evaluation -------------------------------------------------

    def _evaluate_return(
        self, text: str, root: XmlElement, binding: dict
    ) -> list:
        text = text.strip()
        if text.startswith("<"):
            constructor, rest = _parse_constructor(text)
            if rest.strip():
                raise XQueryError(f"trailing content after constructor: {rest!r}")
            return [self._build(constructor, root, binding)]
        if text.startswith("{") and text.endswith("}"):
            text = text[1:-1]
        value = self._eval(text, root, binding)
        return value if isinstance(value, list) else [value]

    def _build(self, node: "_Constructor", root: XmlElement, binding: dict):
        element = XmlElement(QName.parse(node.name))
        for attr_name, attr_parts in node.attributes:
            rendered = "".join(
                part
                if isinstance(part, str)
                else _atomize(self._eval(part.code, root, binding))
                for part in attr_parts
            )
            element.set(QName.parse(attr_name), rendered)
        for part in node.content:
            if isinstance(part, str):
                if part:
                    element.append(Text(part))
            elif isinstance(part, _Enclosed):
                value = self._eval(part.code, root, binding)
                _append_value(element, value)
            else:
                element.append(self._build(part, root, binding))
        return element

    # -- expression plumbing -----------------------------------------------

    def _bare_expression(self, query: str, root: XmlElement, variables) -> list:
        value = self._eval(query, root, dict(variables or {}))
        return value if isinstance(value, list) else [value]

    def _eval(self, expression: str, root: XmlElement, binding: dict):
        try:
            return self._xpath.evaluate(expression, root, variables=binding)
        except XPathError as exc:
            raise XQueryError(f"error in expression {expression!r}: {exc}") from exc

    def _boolean(self, expression: str, root: XmlElement, binding: dict) -> bool:
        from repro.xpath.functions import to_boolean

        return to_boolean(self._eval(expression, root, binding))


# ---------------------------------------------------------------------------
# binding / constructor parsing
# ---------------------------------------------------------------------------


def _parse_binding(text: str, separator: str) -> tuple[str, str]:
    match = _VAR_RE.match(text.strip())
    if match is None:
        raise XQueryError(f"expected a $variable in {text!r}")
    rest = text.strip()[match.end() :].lstrip()
    if separator == "in":
        if not rest.lower().startswith("in") or not rest[2:3].isspace():
            raise XQueryError(f"expected 'in' after variable in {text!r}")
        expression = rest[2:].strip()
    else:
        if not rest.startswith(":="):
            raise XQueryError(f"expected ':=' after variable in {text!r}")
        expression = rest[2:].strip()
    if not expression:
        raise XQueryError(f"missing expression in {text!r}")
    return match.group(1), expression


def _parse_order_spec(text: str) -> tuple[str, bool]:
    lowered = text.lower()
    if lowered.endswith("descending"):
        return text[: -len("descending")].strip(), False
    if lowered.endswith("ascending"):
        return text[: -len("ascending")].strip(), True
    return text.strip(), True


@dataclass
class _Enclosed:
    code: str


@dataclass
class _Constructor:
    name: str
    attributes: list[tuple[str, list]]
    content: list


_NAME_RE = re.compile(r"[A-Za-z_][\w.\-:]*")


def _parse_constructor(text: str) -> tuple[_Constructor, str]:
    """Parse one direct element constructor; returns (node, remainder)."""
    if not text.startswith("<"):
        raise XQueryError(f"expected a constructor, got {text[:20]!r}")
    match = _NAME_RE.match(text, 1)
    if match is None:
        raise XQueryError(f"bad constructor tag in {text[:20]!r}")
    name = match.group()
    index = match.end()
    attributes: list[tuple[str, list]] = []

    while True:
        while index < len(text) and text[index].isspace():
            index += 1
        if index >= len(text):
            raise XQueryError("unterminated constructor start tag")
        if text.startswith("/>", index):
            return _Constructor(name, attributes, []), text[index + 2 :]
        if text[index] == ">":
            index += 1
            break
        attr_match = _NAME_RE.match(text, index)
        if attr_match is None:
            raise XQueryError(f"bad attribute in constructor {name!r}")
        attr_name = attr_match.group()
        index = attr_match.end()
        if not text.startswith("=", index):
            raise XQueryError(f"attribute {attr_name!r} missing value")
        index += 1
        quote = text[index : index + 1]
        if quote not in ("'", '"'):
            raise XQueryError(f"attribute {attr_name!r} value must be quoted")
        end = text.find(quote, index + 1)
        if end < 0:
            raise XQueryError(f"unterminated attribute {attr_name!r}")
        attributes.append(
            (attr_name, _split_enclosed(text[index + 1 : end]))
        )
        index = end + 1

    content: list = []
    buffer: list[str] = []
    while True:
        if index >= len(text):
            raise XQueryError(f"missing </{name}>")
        if text.startswith(f"</{name}>", index):
            if buffer:
                content.extend(_split_enclosed("".join(buffer)))
            return (
                _Constructor(name, attributes, content),
                text[index + len(name) + 3 :],
            )
        if text.startswith("<", index) and not text.startswith("<!", index):
            if buffer:
                content.extend(_split_enclosed("".join(buffer)))
                buffer = []
            child, rest = _parse_constructor(text[index:])
            content.append(child)
            text = rest
            index = 0
            continue
        buffer.append(text[index])
        index += 1


def _split_enclosed(text: str) -> list:
    """Split text into literal strings and ``_Enclosed`` expressions."""
    parts: list = []
    index = 0
    while index < len(text):
        open_brace = text.find("{", index)
        if open_brace < 0:
            parts.append(text[index:])
            break
        if open_brace > index:
            parts.append(text[index:open_brace])
        close_brace = _matching_brace(text, open_brace)
        parts.append(_Enclosed(text[open_brace + 1 : close_brace].strip()))
        index = close_brace + 1
    return [p for p in parts if not (isinstance(p, str) and p == "")]


def _matching_brace(text: str, open_index: int) -> int:
    depth = 0
    quote: str | None = None
    for index in range(open_index, len(text)):
        ch = text[index]
        if quote:
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return index
    raise XQueryError(f"unbalanced braces in {text!r}")


# ---------------------------------------------------------------------------
# value rendering
# ---------------------------------------------------------------------------


def _atomize(value) -> str:
    if isinstance(value, list):
        return " ".join(string_value(item) for item in value)
    return to_string(value)


def _append_value(element: XmlElement, value) -> None:
    if isinstance(value, list):
        for item in value:
            if isinstance(item, XmlElement):
                element.append(item.copy())
            else:
                element.append(Text(string_value(item)))
    elif isinstance(value, XmlElement):
        element.append(value.copy())
    else:
        element.append(Text(to_string(value)))


def _order_key(value):
    if isinstance(value, list):
        text = string_value(value[0]) if value else ""
    else:
        text = to_string(value)
    try:
        return (0, float(text), "")
    except ValueError:
        return (1, 0.0, text)
