"""An in-memory XML database.

The substrate behind the WS-DAIX realisation: a tree of named
*collections*, each holding *documents* (XML trees) and subcollections —
the model of the Xindice/eXist generation of XML databases the DAIS-WG
targeted.  Query facilities:

* **XPath 1.0 subset** (via :mod:`repro.xpath`) over single documents or
  whole collections;
* **XUpdate** (the XML:DB update language): ``insert-before``,
  ``insert-after``, ``append``, ``update``, ``remove``, ``rename``;
* **XQuery FLWOR-lite**: ``for``/``let``/``where``/``order by``/``return``
  with XPath expressions and element constructors — the subset WS-DAIX's
  ``XQueryExecute`` exercises (documented in DESIGN.md).
"""

from repro.xmldb.errors import (
    CollectionNotFoundError,
    DocumentExistsError,
    DocumentNotFoundError,
    XmlDbError,
    XQueryError,
    XUpdateError,
)
from repro.xmldb.collection import Collection, CollectionManager, Document
from repro.xmldb.xupdate import XUpdateProcessor, XUPDATE_NS
from repro.xmldb.xquery import XQueryEngine

__all__ = [
    "XmlDbError",
    "CollectionNotFoundError",
    "DocumentNotFoundError",
    "DocumentExistsError",
    "XUpdateError",
    "XQueryError",
    "Collection",
    "CollectionManager",
    "Document",
    "XUpdateProcessor",
    "XUPDATE_NS",
    "XQueryEngine",
]
