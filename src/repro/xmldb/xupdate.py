"""An XUpdate (XML:DB update language) processor.

Supports the operations WS-DAIX's ``XUpdateExecute`` needs:
``insert-before``, ``insert-after``, ``append``, ``update``, ``remove``
and ``rename``, with ``xupdate:element`` / ``xupdate:attribute`` /
``xupdate:text`` content constructors and literal content.  Target nodes
are selected with XPath over the live document tree and mutated in place.
"""

from __future__ import annotations

from repro.xmldb.errors import XUpdateError
from repro.xmlutil import QName, XmlElement, parse
from repro.xmlutil.tree import Comment, Text
from repro.xpath import AttributeNode, XPathEngine, XPathError
from repro.xpath.context import DocumentContext, DocumentNode

#: The XUpdate namespace.
XUPDATE_NS = "http://www.xmldb.org/xupdate"

_MODIFICATIONS = QName(XUPDATE_NS, "modifications")


class XUpdateProcessor:
    """Applies one ``xupdate:modifications`` document to a target tree."""

    def __init__(self, namespaces: dict[str, str] | None = None) -> None:
        self._engine = XPathEngine(namespaces=namespaces)

    def apply_text(self, modifications_xml: str, target: XmlElement) -> int:
        """Parse *modifications_xml* and apply it; returns nodes modified."""
        return self.apply(parse(modifications_xml), target)

    def apply(self, modifications: XmlElement, target: XmlElement) -> int:
        """Apply a parsed modifications document to *target* in place.

        Returns the number of selected nodes that were modified.  Raises
        :class:`XUpdateError` on malformed input; the target may be
        partially modified when a later operation fails (callers wanting
        atomicity should work on a copy).
        """
        if modifications.tag != _MODIFICATIONS:
            raise XUpdateError(
                f"expected xupdate:modifications, got {modifications.tag.clark()}"
            )
        modified = 0
        for operation in modifications.element_children():
            if operation.tag.namespace != XUPDATE_NS:
                raise XUpdateError(
                    f"unexpected element {operation.tag.clark()}"
                )
            handler = self._HANDLERS.get(operation.tag.local)
            if handler is None:
                raise XUpdateError(
                    f"unsupported operation xupdate:{operation.tag.local}"
                )
            modified += handler(self, operation, target)
        return modified

    # -- selection -----------------------------------------------------------

    def _select(self, operation: XmlElement, target: XmlElement):
        expression = operation.get("select")
        if not expression:
            raise XUpdateError(
                f"xupdate:{operation.tag.local} requires a select attribute"
            )
        try:
            nodes = self._engine.select(expression, target)
        except XPathError as exc:
            raise XUpdateError(f"bad select expression: {exc}") from exc
        return nodes, DocumentContext(target)

    @staticmethod
    def _parent_element(
        node, document: DocumentContext, operation: str
    ) -> XmlElement:
        parent = document.parent_of(node)
        if parent is None or isinstance(parent, DocumentNode):
            raise XUpdateError(f"cannot {operation} the document root")
        return parent

    # -- content construction ----------------------------------------------

    def _construct(self, content_parent: XmlElement) -> tuple[list, list]:
        """Build (nodes, attributes) from an operation's content children."""
        nodes: list = []
        attributes: list[tuple[QName, str]] = []
        for child in content_parent.children:
            if isinstance(child, Text):
                if child.value:
                    nodes.append(Text(child.value))
                continue
            if isinstance(child, Comment):
                nodes.append(Comment(child.value))
                continue
            if child.tag.namespace == XUPDATE_NS:
                if child.tag.local == "element":
                    name = child.get("name")
                    if not name:
                        raise XUpdateError("xupdate:element requires a name")
                    element = XmlElement(QName.parse(name))
                    sub_nodes, sub_attrs = self._construct(child)
                    for attr_name, attr_value in sub_attrs:
                        element.set(attr_name, attr_value)
                    element.extend(sub_nodes)
                    nodes.append(element)
                elif child.tag.local == "attribute":
                    name = child.get("name")
                    if not name:
                        raise XUpdateError("xupdate:attribute requires a name")
                    attributes.append((QName.parse(name), child.full_text()))
                elif child.tag.local == "text":
                    nodes.append(Text(child.full_text()))
                elif child.tag.local == "comment":
                    nodes.append(Comment(child.full_text()))
                else:
                    raise XUpdateError(
                        f"unsupported constructor xupdate:{child.tag.local}"
                    )
            else:
                nodes.append(child.copy())
        return nodes, attributes

    # -- operations ---------------------------------------------------------

    def _op_insert(self, operation: XmlElement, target: XmlElement, after: bool) -> int:
        nodes_to_add, attributes = self._construct(operation)
        if attributes:
            raise XUpdateError("attributes cannot be inserted as siblings")
        selected, document = self._select(operation, target)
        count = 0
        for node in selected:
            if isinstance(node, AttributeNode):
                raise XUpdateError("cannot insert siblings of an attribute")
            parent = self._parent_element(node, document, "insert beside")
            # Identity search: dataclass equality would match a twin sibling.
            index = next(
                i for i, child in enumerate(parent.children) if child is node
            )
            if after:
                index += 1
            for offset, new_node in enumerate(nodes_to_add):
                parent.children.insert(index + offset, _clone_node(new_node))
            count += 1
        return count

    def _op_insert_before(self, operation, target) -> int:
        return self._op_insert(operation, target, after=False)

    def _op_insert_after(self, operation, target) -> int:
        return self._op_insert(operation, target, after=True)

    def _op_append(self, operation: XmlElement, target: XmlElement) -> int:
        nodes_to_add, attributes = self._construct(operation)
        selected, _ = self._select(operation, target)
        count = 0
        for node in selected:
            if not isinstance(node, XmlElement):
                raise XUpdateError("append target must be an element")
            for attr_name, attr_value in attributes:
                node.set(attr_name, attr_value)
            for new_node in nodes_to_add:
                node.append(_clone_node(new_node))
            count += 1
        return count

    def _op_update(self, operation: XmlElement, target: XmlElement) -> int:
        selected, _ = self._select(operation, target)
        new_text = operation.full_text()
        count = 0
        for node in selected:
            if isinstance(node, AttributeNode):
                node.owner.set(node.name, new_text)
            elif isinstance(node, XmlElement):
                node.children = []
                if new_text:
                    node.append(Text(new_text))
            else:
                raise XUpdateError("update target must be an element or attribute")
            count += 1
        return count

    def _op_remove(self, operation: XmlElement, target: XmlElement) -> int:
        selected, document = self._select(operation, target)
        count = 0
        for node in selected:
            if isinstance(node, AttributeNode):
                node.owner.attributes.pop(node.name, None)
            else:
                parent = self._parent_element(node, document, "remove")
                parent.children = [c for c in parent.children if c is not node]
            count += 1
        return count

    def _op_rename(self, operation: XmlElement, target: XmlElement) -> int:
        new_name = operation.full_text().strip()
        if not new_name:
            raise XUpdateError("xupdate:rename requires the new name as content")
        selected, _ = self._select(operation, target)
        count = 0
        for node in selected:
            if isinstance(node, XmlElement):
                node.tag = QName(node.tag.namespace, new_name)
            elif isinstance(node, AttributeNode):
                value = node.value
                node.owner.attributes.pop(node.name, None)
                node.owner.set(QName(node.name.namespace, new_name), value)
            else:
                raise XUpdateError("rename target must be an element or attribute")
            count += 1
        return count

    _HANDLERS = {
        "insert-before": _op_insert_before,
        "insert-after": _op_insert_after,
        "append": _op_append,
        "update": _op_update,
        "remove": _op_remove,
        "rename": _op_rename,
    }


def _clone_node(node):
    if isinstance(node, XmlElement):
        return node.copy()
    if isinstance(node, Text):
        return Text(node.value)
    return Comment(node.value)
