"""Collections and documents.

A :class:`CollectionManager` owns a root collection; collections nest and
hold named documents.  Paths are slash-separated (``inventory/books``).
All WS-DAIX collection operations (AddDocuments, GetDocuments,
CreateSubcollection, ...) are thin wrappers over this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmldb.errors import (
    CollectionNotFoundError,
    DocumentExistsError,
    DocumentNotFoundError,
    XmlDbError,
)
from repro.xmlutil import XmlElement, parse, serialize


@dataclass
class Document:
    """A named XML document inside a collection."""

    name: str
    root: XmlElement

    def copy(self) -> "Document":
        return Document(self.name, self.root.copy())

    def to_text(self) -> str:
        return serialize(self.root)


def _validate_segment(name: str) -> str:
    if not name or "/" in name:
        raise XmlDbError(f"invalid name {name!r}")
    return name


class Collection:
    """A node in the collection tree."""

    def __init__(self, name: str, parent: "Collection | None" = None) -> None:
        self.name = _validate_segment(name) if parent is not None else name
        self.parent = parent
        self._documents: dict[str, Document] = {}
        self._children: dict[str, Collection] = {}

    # -- identity ------------------------------------------------------------

    @property
    def path(self) -> str:
        """Slash-separated path from the root ('' for the root itself)."""
        if self.parent is None:
            return ""
        parent_path = self.parent.path
        return f"{parent_path}/{self.name}" if parent_path else self.name

    # -- subcollections --------------------------------------------------------

    def child_names(self) -> list[str]:
        return sorted(self._children)

    def child(self, name: str) -> "Collection":
        try:
            return self._children[name]
        except KeyError:
            raise CollectionNotFoundError(
                f"no subcollection {name!r} in {self.path or '/'}"
            ) from None

    def create_child(self, name: str) -> "Collection":
        _validate_segment(name)
        if name in self._children:
            raise XmlDbError(f"subcollection {name!r} already exists")
        child = Collection(name, parent=self)
        self._children[name] = child
        return child

    def remove_child(self, name: str) -> "Collection":
        removed = self.child(name)
        del self._children[name]
        removed.parent = None
        return removed

    # -- documents ---------------------------------------------------------

    def document_names(self) -> list[str]:
        return sorted(self._documents)

    def document_count(self) -> int:
        return len(self._documents)

    def has_document(self, name: str) -> bool:
        return name in self._documents

    def get(self, name: str) -> Document:
        try:
            return self._documents[name]
        except KeyError:
            raise DocumentNotFoundError(
                f"no document {name!r} in collection {self.path or '/'}"
            ) from None

    def add(self, name: str, root: XmlElement, replace: bool = False) -> Document:
        _validate_segment(name)
        if not replace and name in self._documents:
            raise DocumentExistsError(
                f"document {name!r} already exists in {self.path or '/'}"
            )
        document = Document(name, root)
        self._documents[name] = document
        return document

    def add_text(self, name: str, text: str, replace: bool = False) -> Document:
        return self.add(name, parse(text), replace)

    def remove(self, name: str) -> Document:
        document = self.get(name)
        del self._documents[name]
        return document

    def documents(self) -> list[Document]:
        """All documents, sorted by name (deterministic iteration)."""
        return [self._documents[name] for name in sorted(self._documents)]

    def walk(self):
        """Yield this collection and all descendants, depth-first."""
        yield self
        for name in sorted(self._children):
            yield from self._children[name].walk()


class CollectionManager:
    """The root of a collection tree plus path resolution."""

    def __init__(self, root_name: str = "db") -> None:
        self.root = Collection(root_name)

    def resolve(self, path: str) -> Collection:
        """Resolve ``a/b/c`` (or ``''``/``'/'`` for the root)."""
        current = self.root
        for segment in [s for s in path.split("/") if s]:
            current = current.child(segment)
        return current

    def create_path(self, path: str) -> Collection:
        """Create any missing collections along *path*; returns the leaf."""
        current = self.root
        for segment in [s for s in path.split("/") if s]:
            if segment in current._children:
                current = current.child(segment)
            else:
                current = current.create_child(segment)
        return current

    def total_documents(self) -> int:
        return sum(c.document_count() for c in self.root.walk())
