"""XML database error taxonomy."""


class XmlDbError(Exception):
    """Base class for XML database failures."""


class CollectionNotFoundError(XmlDbError):
    """The collection path does not resolve."""


class DocumentNotFoundError(XmlDbError):
    """No document with the requested name."""


class DocumentExistsError(XmlDbError):
    """A document with the requested name already exists."""


class XUpdateError(XmlDbError):
    """The XUpdate modifications document is invalid."""


class XQueryError(XmlDbError):
    """The XQuery expression failed to parse or evaluate."""
