"""WS-ResourceLifetime: immediate destruction and scheduled termination.

Without WSRF, a DAIS consumer must send ``DestroyDataResource`` explicitly
or the resource lives as long as the service (paper §5).  With WSRF, a
resource carries a *termination time*; the :class:`LifetimeManager` sweeps
expired resources and invokes their destroy callbacks — the soft-state
model.

The manager is safe under the threaded HTTP binding: every record
mutation happens under one lock, and destruction is an atomic
*claim-then-invoke* — whichever of an explicit ``Destroy``, a concurrent
sweep, or a racing second destroyer claims the record first runs the
destructor, exactly once.  Destructors are always invoked *outside* the
manager's lock, so a destructor may call back into the owning service
(which holds its own lock) without deadlocking against a sweeper.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.obs.journal import record_event
from repro.wsrf.clock import Clock, SystemClock
from repro.wsrf.faults import ResourceUnknownFault, UnableToSetTerminationTimeFault


@dataclass
class TerminationRecord:
    """The lifetime state of one registered resource."""

    resource_id: str
    current_time: float
    termination_time: float | None  # None = indefinite ("nil" on the wire)

    @property
    def scheduled(self) -> bool:
        return self.termination_time is not None


class LifetimeManager:
    """Tracks termination times and destroys expired resources."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.RLock()
        self._termination: dict[str, float | None] = {}
        self._destructors: dict[str, Callable[[str], None]] = {}

    @property
    def clock(self) -> Clock:
        return self._clock

    def register(
        self,
        resource_id: str,
        destructor: Callable[[str], None],
        lifetime_seconds: float | None = None,
    ) -> TerminationRecord:
        """Start tracking *resource_id*.

        :param destructor: invoked (once) when the resource is destroyed,
            whether explicitly or by the sweeper.
        :param lifetime_seconds: initial soft-state lifetime; ``None``
            means no scheduled termination.
        """
        when = (
            self._clock.now() + lifetime_seconds
            if lifetime_seconds is not None
            else None
        )
        with self._lock:
            if resource_id in self._termination:
                raise ValueError(f"resource {resource_id!r} already registered")
            self._termination[resource_id] = when
            self._destructors[resource_id] = destructor
        record_event(
            "lifetime-registered", resource_id, termination_time=when
        )
        return self.current(resource_id)

    def registered(self, resource_id: str) -> bool:
        with self._lock:
            return resource_id in self._termination

    def current(self, resource_id: str) -> TerminationRecord:
        """The CurrentTime/TerminationTime pair WSRF exposes as properties."""
        with self._lock:
            self._require(resource_id)
            return TerminationRecord(
                resource_id=resource_id,
                current_time=self._clock.now(),
                termination_time=self._termination[resource_id],
            )

    def set_termination_time(
        self, resource_id: str, requested: float | None
    ) -> TerminationRecord:
        """SetTerminationTime: absolute time, or None for indefinite."""
        with self._lock:
            self._require(resource_id)
            past = requested is not None and requested < self._clock.now()
            if not past:
                self._termination[resource_id] = requested
        if past:
            # A request in the past is honoured as "destroy now" per the
            # spec's permission to schedule immediate termination — but a
            # manager may also refuse; we destroy, which is the useful
            # behaviour for DAIS derived resources.
            record_event(
                "termination-set",
                resource_id,
                requested=requested,
                outcome="destroyed-immediately",
            )
            self.destroy(resource_id, missing_ok=True)
            raise UnableToSetTerminationTimeFault(
                f"termination time {requested} is in the past; "
                f"resource {resource_id!r} destroyed"
            )
        record_event("termination-set", resource_id, requested=requested)
        return self.current(resource_id)

    def extend(self, resource_id: str, seconds: float) -> TerminationRecord:
        """Keep-alive: push the termination time *seconds* from now."""
        with self._lock:
            self._require(resource_id)
            when = self._clock.now() + seconds
            self._termination[resource_id] = when
        record_event(
            "extended", resource_id, seconds=seconds, termination_time=when
        )
        return self.current(resource_id)

    def _claim(self, resource_id: str) -> Callable[[str], None] | None:
        """Atomically take ownership of the record; None when already gone.

        The claim is the destroy-once guarantee: the lock makes pop
        atomic, so exactly one of any number of racing destroyers gets
        the destructor back.
        """
        with self._lock:
            destructor = self._destructors.pop(resource_id, None)
            if destructor is not None:
                self._termination.pop(resource_id, None)
            return destructor

    def destroy(self, resource_id: str, missing_ok: bool = False) -> bool:
        """Immediate destruction (the WSRF ``Destroy`` operation).

        With ``missing_ok=True`` the call is idempotent: destroying a
        resource that is already gone — because an explicit destroy, the
        sweeper, or a WSRF ``Destroy`` got there first — is a no-op
        returning False.  The destructor runs outside the manager lock
        and exactly once, whichever caller wins the claim.
        """
        destructor = self._claim(resource_id)
        if destructor is None:
            if missing_ok:
                return False
            raise ResourceUnknownFault(f"unknown resource {resource_id!r}")
        destructor(resource_id)
        return True

    def sweep(self) -> list[str]:
        """Destroy every resource whose termination time has passed.

        Returns the ids destroyed, in expiry order.  Resources destroyed
        concurrently (an explicit ``Destroy`` racing the sweeper) are
        skipped, never double-destroyed — the sweep works from a snapshot
        and re-claims each id atomically before invoking its destructor.
        """
        now = self._clock.now()
        with self._lock:
            expired = sorted(
                (when, rid)
                for rid, when in self._termination.items()
                if when is not None and when <= now
            )
        destroyed: list[str] = []
        for when, resource_id in expired:
            destructor = self._claim(resource_id)
            if destructor is None:
                continue  # destroyed out from under the sweep: skip
            record_event("expired", resource_id, termination_time=when)
            destructor(resource_id)
            destroyed.append(resource_id)
        return destroyed

    def _require(self, resource_id: str) -> None:
        if resource_id not in self._termination:
            raise ResourceUnknownFault(f"unknown resource {resource_id!r}")
