"""WS-ResourceLifetime: immediate destruction and scheduled termination.

Without WSRF, a DAIS consumer must send ``DestroyDataResource`` explicitly
or the resource lives as long as the service (paper §5).  With WSRF, a
resource carries a *termination time*; the :class:`LifetimeManager` sweeps
expired resources and invokes their destroy callbacks — the soft-state
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.journal import record_event
from repro.wsrf.clock import Clock, SystemClock
from repro.wsrf.faults import ResourceUnknownFault, UnableToSetTerminationTimeFault


@dataclass
class TerminationRecord:
    """The lifetime state of one registered resource."""

    resource_id: str
    current_time: float
    termination_time: float | None  # None = indefinite ("nil" on the wire)

    @property
    def scheduled(self) -> bool:
        return self.termination_time is not None


class LifetimeManager:
    """Tracks termination times and destroys expired resources."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._termination: dict[str, float | None] = {}
        self._destructors: dict[str, Callable[[str], None]] = {}

    @property
    def clock(self) -> Clock:
        return self._clock

    def register(
        self,
        resource_id: str,
        destructor: Callable[[str], None],
        lifetime_seconds: float | None = None,
    ) -> TerminationRecord:
        """Start tracking *resource_id*.

        :param destructor: invoked (once) when the resource is destroyed,
            whether explicitly or by the sweeper.
        :param lifetime_seconds: initial soft-state lifetime; ``None``
            means no scheduled termination.
        """
        if resource_id in self._termination:
            raise ValueError(f"resource {resource_id!r} already registered")
        when = (
            self._clock.now() + lifetime_seconds
            if lifetime_seconds is not None
            else None
        )
        self._termination[resource_id] = when
        self._destructors[resource_id] = destructor
        record_event(
            "lifetime-registered", resource_id, termination_time=when
        )
        return self.current(resource_id)

    def registered(self, resource_id: str) -> bool:
        return resource_id in self._termination

    def current(self, resource_id: str) -> TerminationRecord:
        """The CurrentTime/TerminationTime pair WSRF exposes as properties."""
        self._require(resource_id)
        return TerminationRecord(
            resource_id=resource_id,
            current_time=self._clock.now(),
            termination_time=self._termination[resource_id],
        )

    def set_termination_time(
        self, resource_id: str, requested: float | None
    ) -> TerminationRecord:
        """SetTerminationTime: absolute time, or None for indefinite."""
        self._require(resource_id)
        if requested is not None and requested < self._clock.now():
            # A request in the past is honoured as "destroy now" per the
            # spec's permission to schedule immediate termination — but a
            # manager may also refuse; we destroy, which is the useful
            # behaviour for DAIS derived resources.
            record_event(
                "termination-set",
                resource_id,
                requested=requested,
                outcome="destroyed-immediately",
            )
            self.destroy(resource_id)
            raise UnableToSetTerminationTimeFault(
                f"termination time {requested} is in the past; "
                f"resource {resource_id!r} destroyed"
            )
        self._termination[resource_id] = requested
        record_event("termination-set", resource_id, requested=requested)
        return self.current(resource_id)

    def extend(self, resource_id: str, seconds: float) -> TerminationRecord:
        """Keep-alive: push the termination time *seconds* from now."""
        self._require(resource_id)
        self._termination[resource_id] = self._clock.now() + seconds
        record_event(
            "extended",
            resource_id,
            seconds=seconds,
            termination_time=self._termination[resource_id],
        )
        return self.current(resource_id)

    def destroy(self, resource_id: str) -> None:
        """Immediate destruction (the WSRF ``Destroy`` operation)."""
        self._require(resource_id)
        destructor = self._destructors.pop(resource_id)
        del self._termination[resource_id]
        destructor(resource_id)

    def sweep(self) -> list[str]:
        """Destroy every resource whose termination time has passed.

        Returns the ids destroyed, in expiry order.
        """
        now = self._clock.now()
        expired = sorted(
            (when, rid)
            for rid, when in self._termination.items()
            if when is not None and when <= now
        )
        destroyed: list[str] = []
        for when, resource_id in expired:
            record_event("expired", resource_id, termination_time=when)
            self.destroy(resource_id)
            destroyed.append(resource_id)
        return destroyed

    def _require(self, resource_id: str) -> None:
        if resource_id not in self._termination:
            raise ResourceUnknownFault(f"unknown resource {resource_id!r}")
