"""WS-ResourceProperties operations over a property-document provider.

The provider is anything with a ``property_document() -> XmlElement``
method (DAIS data-service/resource pairs implement it); this module adds
the three WSRF read operations on top:

* ``GetResourcePropertyDocument`` — the whole document (this is also all
  the non-WSRF profile offers, per paper §5);
* ``GetResourceProperty`` — the child elements with one QName;
* ``GetMultipleResourceProperties`` — several QNames in one round trip;
* ``QueryResourceProperties`` — an XPath 1.0 query over the document.

The query dialect URI follows WS-ResourceProperties 1.2.
"""

from __future__ import annotations

from typing import Protocol

from repro.wsrf.faults import InvalidQueryExpressionFault
from repro.xmlutil import QName, XmlElement
from repro.xpath import XPathEngine, XPathError

#: The only query dialect WS-ResourceProperties 1.2 mandates.
XPATH_DIALECT = "http://www.w3.org/TR/1999/REC-xpath-19991116"


class PropertyDocumentProvider(Protocol):
    """Anything that can render its current resource property document."""

    def property_document(self) -> XmlElement: ...


class PropertyAccess:
    """Fine-grained read access to one provider's property document."""

    def __init__(
        self,
        provider: PropertyDocumentProvider,
        namespaces: dict[str, str] | None = None,
    ) -> None:
        self._provider = provider
        self._engine = XPathEngine(namespaces=namespaces)

    def document(self) -> XmlElement:
        """GetResourcePropertyDocument: the whole property document."""
        return self._provider.property_document()

    def get(self, name: QName) -> list[XmlElement]:
        """GetResourceProperty: all top-level property elements named *name*."""
        return [child.copy() for child in self.document().findall(name)]

    def get_multiple(self, names: list[QName]) -> list[XmlElement]:
        """GetMultipleResourceProperties: one document render, many reads."""
        document = self.document()
        out: list[XmlElement] = []
        for name in names:
            out.extend(child.copy() for child in document.findall(name))
        return out

    def query(
        self, expression: str, dialect: str = XPATH_DIALECT
    ) -> list[XmlElement]:
        """QueryResourceProperties: evaluate *expression* over the document.

        Only element results are returned (the WSRF response carries
        elements); attribute/text results raise
        :class:`InvalidQueryExpressionFault`, as does any syntax error or a
        dialect other than XPath 1.0.
        """
        if dialect != XPATH_DIALECT:
            raise InvalidQueryExpressionFault(f"unsupported dialect {dialect!r}")
        document = self.document()
        try:
            result = self._engine.evaluate(expression, document)
        except XPathError as exc:
            raise InvalidQueryExpressionFault(str(exc)) from exc
        if not isinstance(result, list):
            raise InvalidQueryExpressionFault(
                "query must select nodes, got a "
                f"{type(result).__name__} ({result!r})"
            )
        elements: list[XmlElement] = []
        for node in result:
            if not isinstance(node, XmlElement):
                raise InvalidQueryExpressionFault(
                    "query selected non-element nodes; only elements can be "
                    "returned in a QueryResourceProperties response"
                )
            elements.append(node.copy())
        return elements
