"""Clock abstraction for soft-state lifetime management.

Scheduled termination is time-driven; tests and benchmarks need to move
time by hand, so the lifetime manager consumes this small protocol instead
of calling ``time.time`` directly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of the current time, in seconds since the epoch."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds."""


class SystemClock(Clock):
    """The real wall clock."""

    def now(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A clock that only moves when told to — deterministic tests/benches."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump directly to *timestamp* (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(timestamp)
