"""Wire namespaces for the WSRF family (1.2 committee drafts, as cited)."""

from repro.xmlutil.names import DEFAULT_REGISTRY

#: WS-ResourceProperties 1.2.
WSRF_RP_NS = "http://docs.oasis-open.org/wsrf/rp-2"
#: WS-ResourceLifetime 1.2.
WSRF_RL_NS = "http://docs.oasis-open.org/wsrf/rl-2"
#: Base faults namespace.
WSRF_BF_NS = "http://docs.oasis-open.org/wsrf/bf-2"

DEFAULT_REGISTRY.register("wsrf-rp", WSRF_RP_NS)
DEFAULT_REGISTRY.register("wsrf-rl", WSRF_RL_NS)
DEFAULT_REGISTRY.register("wsrf-bf", WSRF_BF_NS)
