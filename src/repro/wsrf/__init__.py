"""WSRF substrate: WS-ResourceProperties and WS-ResourceLifetime.

The paper (§5) layers DAIS over WSRF for two capabilities the non-WSRF
profile lacks:

* *fine-grained property access* — ``GetResourceProperty`` /
  ``GetMultipleResourceProperties`` / ``QueryResourceProperties`` instead of
  fetching the whole property document;
* *soft-state lifetime management* — scheduled termination instead of an
  explicit ``DestroyDataResource`` message.

Both are implemented here against abstract providers so the same machinery
serves relational, XML and derived data resources.
"""

from repro.wsrf.clock import Clock, ManualClock, SystemClock
from repro.wsrf.namespaces import WSRF_RP_NS, WSRF_RL_NS
from repro.wsrf.faults import (
    InvalidQueryExpressionFault,
    ResourceUnknownFault,
    UnableToSetTerminationTimeFault,
    WsrfFault,
)
from repro.wsrf.properties import PropertyAccess
from repro.wsrf.lifetime import LifetimeManager, TerminationRecord

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "WSRF_RP_NS",
    "WSRF_RL_NS",
    "WsrfFault",
    "ResourceUnknownFault",
    "InvalidQueryExpressionFault",
    "UnableToSetTerminationTimeFault",
    "PropertyAccess",
    "LifetimeManager",
    "TerminationRecord",
]
