"""WSRF fault types, expressed as SOAP faults with typed detail."""

from __future__ import annotations

from repro.soap.fault import FaultCode, SoapFault
from repro.wsrf.namespaces import WSRF_BF_NS
from repro.xmlutil import E, QName


class WsrfFault(SoapFault):
    """Base class: carries a typed detail element in the WSRF-BF style."""

    DETAIL_LOCAL = "BaseFault"

    def __init__(self, message: str, code: FaultCode = FaultCode.CLIENT) -> None:
        detail = E(
            QName(WSRF_BF_NS, self.DETAIL_LOCAL),
            E(QName(WSRF_BF_NS, "Description"), message),
        )
        super().__init__(code, message, [detail])


class ResourceUnknownFault(WsrfFault):
    """The EPR/abstract name does not identify a live resource."""

    DETAIL_LOCAL = "ResourceUnknownFault"


class InvalidQueryExpressionFault(WsrfFault):
    """QueryResourceProperties received an unusable query."""

    DETAIL_LOCAL = "InvalidQueryExpressionFault"


class UnableToSetTerminationTimeFault(WsrfFault):
    """SetTerminationTime could not be honoured."""

    DETAIL_LOCAL = "UnableToSetTerminationTimeFault"
