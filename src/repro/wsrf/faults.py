"""WSRF fault types, expressed as SOAP faults with typed detail.

Like the DAIS family (:mod:`repro.core.faults`), a resolver registered
with the envelope layer restores the typed class from the wire detail,
so ``except ResourceUnknownFault:`` works on the consumer side — which
is what lets retry policies recognise an expired soft-state resource as
a retryable condition (see :mod:`repro.resilience`).
"""

from __future__ import annotations

from repro.soap.envelope import register_fault_resolver
from repro.soap.fault import FaultCode, SoapFault
from repro.wsrf.namespaces import WSRF_BF_NS
from repro.xmlutil import E, QName


class WsrfFault(SoapFault):
    """Base class: carries a typed detail element in the WSRF-BF style."""

    DETAIL_LOCAL = "BaseFault"

    def __init__(self, message: str, code: FaultCode = FaultCode.CLIENT) -> None:
        detail = E(
            QName(WSRF_BF_NS, self.DETAIL_LOCAL),
            E(QName(WSRF_BF_NS, "Description"), message),
        )
        super().__init__(code, message, [detail])


class ResourceUnknownFault(WsrfFault):
    """The EPR/abstract name does not identify a live resource."""

    DETAIL_LOCAL = "ResourceUnknownFault"


class InvalidQueryExpressionFault(WsrfFault):
    """QueryResourceProperties received an unusable query."""

    DETAIL_LOCAL = "InvalidQueryExpressionFault"


class UnableToSetTerminationTimeFault(WsrfFault):
    """SetTerminationTime could not be honoured."""

    DETAIL_LOCAL = "UnableToSetTerminationTimeFault"


_FAULTS_BY_DETAIL = {
    fault.DETAIL_LOCAL: fault
    for fault in (
        WsrfFault,
        ResourceUnknownFault,
        InvalidQueryExpressionFault,
        UnableToSetTerminationTimeFault,
    )
}


def _resolve_wsrf_fault(fault: SoapFault) -> SoapFault | None:
    """Map a generic fault back to its typed WSRF class via the detail."""
    for detail in fault.detail:
        if detail.tag.namespace != WSRF_BF_NS:
            continue
        cls = _FAULTS_BY_DETAIL.get(detail.tag.local)
        if cls is not None:
            message = detail.findtext(
                QName(WSRF_BF_NS, "Description"), fault.message
            )
            return cls(message or fault.message, code=fault.code)
    return None


register_fault_resolver(_resolve_wsrf_fault)
