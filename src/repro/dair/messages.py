"""WS-DAIR message payloads (Figures 2, 3, 5 and 6 — SQL column).

These extend the core templates exactly as the specification extends the
core document: ``SQLExecuteRequest`` is the core direct-access template
plus the SQL expression; ``SQLExecuteResponse`` adds the SQL
communication area; ``SQLExecuteFactoryRequest`` is the core factory
template under the WS-DAIR tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Optional

from repro import fastpath
from repro.core.messages import (
    DaisMessage,
    DaisRequest,
    FactoryRequest,
    FactoryResponse,
)
from repro.core.namespaces import WSDAI_NS
from repro.dair.namespaces import WSDAIR_NS
from repro.relational import SqlCommunicationArea
from repro.xmlutil import E, LazyText, QName, XmlElement


def _q(local: str) -> QName:
    return QName(WSDAIR_NS, local)


def communication_area_to_xml(area: SqlCommunicationArea) -> XmlElement:
    return E(
        _q("SQLCommunicationArea"),
        E(_q("SQLCode"), area.sqlcode),
        E(_q("SQLState"), area.sqlstate),
        E(_q("SQLMessage"), area.message),
        E(_q("RowsProcessed"), area.rows_processed),
    )


def lazy_communication_area(
    factory: Callable[[], SqlCommunicationArea],
) -> XmlElement:
    """A communication area whose values resolve at serialization time.

    Document order puts the communication area *after* the dataset, so
    when the dataset is streamed the serializer reaches these values
    only once every row has been emitted — which is how RowsProcessed
    can report the true count of a result that was never materialized.
    *factory* is invoked once, at first access.
    """
    cache: list[SqlCommunicationArea] = []

    def area() -> SqlCommunicationArea:
        if not cache:
            cache.append(factory())
        return cache[0]

    root = E(_q("SQLCommunicationArea"))
    for tag, getter in (
        ("SQLCode", lambda: area().sqlcode),
        ("SQLState", lambda: area().sqlstate),
        ("SQLMessage", lambda: area().message),
        ("RowsProcessed", lambda: area().rows_processed),
    ):
        child = E(_q(tag))
        child.children.append(LazyText(lambda getter=getter: str(getter())))
        root.append(child)
    return root


def communication_area_from_xml(element: XmlElement) -> SqlCommunicationArea:
    return SqlCommunicationArea(
        sqlcode=int(element.findtext(_q("SQLCode"), "0") or "0"),
        sqlstate=element.findtext(_q("SQLState"), "") or "",
        message=element.findtext(_q("SQLMessage"), "") or "",
        rows_processed=int(element.findtext(_q("RowsProcessed"), "0") or "0"),
    )


# ---------------------------------------------------------------------------
# SQLAccess (direct pattern, Figure 2 right-hand column)
# ---------------------------------------------------------------------------


@dataclass
class SQLExecuteRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("SQLExecuteRequest")

    expression: str = ""
    parameters: list[str] = field(default_factory=list)
    dataset_format_uri: Optional[str] = None
    #: Consumer-controlled transaction context id (TransactionInitiation =
    #: Consumer): the statement joins an open transaction instead of
    #: autocommitting (paper Figure 4's third initiation mode).
    transaction_context: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.dataset_format_uri:
            root.append(
                E(QName(WSDAI_NS, "DatasetFormatURI"), self.dataset_format_uri)
            )
        if self.transaction_context:
            root.append(E(_q("TransactionContext"), self.transaction_context))
        expression = E(_q("SQLExpression"), E(_q("Expression"), self.expression))
        for parameter in self.parameters:
            expression.append(E(_q("Parameter"), parameter))
        root.append(expression)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement) -> "SQLExecuteRequest":
        expression_el = element.find(_q("SQLExpression"))
        expression = ""
        parameters: list[str] = []
        if expression_el is not None:
            expression = expression_el.findtext(_q("Expression"), "") or ""
            parameters = [
                p.text for p in expression_el.findall(_q("Parameter"))
            ]
        return cls(
            abstract_name=cls._read_name(element),
            expression=expression,
            parameters=parameters,
            dataset_format_uri=element.findtext(
                QName(WSDAI_NS, "DatasetFormatURI")
            ),
            transaction_context=element.findtext(_q("TransactionContext")),
        )


@dataclass
class SQLExecuteResponse(DaisMessage):
    """Direct-access response: dataset + SQL communication area."""

    TAG: ClassVar[QName] = _q("SQLExecuteResponse")

    dataset_format_uri: str = ""
    dataset: Optional[XmlElement] = None
    update_count: int = -1
    communication: SqlCommunicationArea = field(
        default_factory=lambda: SqlCommunicationArea.success(0)
    )
    #: When set, the serialized communication area resolves from this
    #: factory instead of ``communication`` — used with a streamed
    #: dataset so RowsProcessed reflects what actually went out.
    communication_factory: Optional[Callable[[], SqlCommunicationArea]] = None

    def to_xml(self) -> XmlElement:
        root = E(
            self.TAG,
            E(QName(WSDAI_NS, "DatasetFormatURI"), self.dataset_format_uri),
        )
        if self.dataset is not None:
            # The dataset subtree is shared, not copied: serializers never
            # mutate and a 1000-row rowset deep copy would dominate the
            # response render (fig-2 message-layer share).
            wrapper = E(_q("SQLDataset"))
            wrapper.append(
                self.dataset if fastpath.enabled() else self.dataset.copy()
            )
            root.append(wrapper)
        root.append(E(_q("SQLUpdateCount"), self.update_count))
        if self.communication_factory is not None:
            root.append(lazy_communication_area(self.communication_factory))
        else:
            root.append(communication_area_to_xml(self.communication))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement) -> "SQLExecuteResponse":
        wrapper = element.find(_q("SQLDataset"))
        dataset = None
        if wrapper is not None:
            children = wrapper.element_children()
            if children:
                # Shared with the (single-use) request tree, not copied —
                # deep-copying a 1000-row rowset dominates client parse time.
                dataset = children[0] if fastpath.enabled() else children[0].copy()
        area_el = element.find(_q("SQLCommunicationArea"))
        return cls(
            dataset_format_uri=element.findtext(
                QName(WSDAI_NS, "DatasetFormatURI"), ""
            )
            or "",
            dataset=dataset,
            update_count=int(element.findtext(_q("SQLUpdateCount"), "-1") or "-1"),
            communication=communication_area_from_xml(area_el)
            if area_el is not None
            else SqlCommunicationArea.success(0),
        )


@dataclass
class GetSQLPropertyDocumentRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetSQLPropertyDocumentRequest")

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(abstract_name=cls._read_name(element))


@dataclass
class GetSQLPropertyDocumentResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetSQLPropertyDocumentResponse")

    document: Optional[XmlElement] = None

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        if self.document is not None:
            root.append(self.document.copy())
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        children = element.element_children()
        return cls(document=children[0].copy() if children else None)


# ---------------------------------------------------------------------------
# Consumer-controlled transactions (TransactionInitiation = Consumer)
# ---------------------------------------------------------------------------


@dataclass
class BeginTransactionRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("BeginTransactionRequest")

    isolation: Optional[str] = None  # SQL isolation-level phrase

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.isolation:
            root.append(E(_q("IsolationLevel"), self.isolation))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            isolation=element.findtext(_q("IsolationLevel")),
        )


@dataclass
class BeginTransactionResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("BeginTransactionResponse")

    transaction_context: str = ""

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_q("TransactionContext"), self.transaction_context))

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            transaction_context=element.findtext(_q("TransactionContext"), "")
            or ""
        )


@dataclass
class _TransactionContextRequest(DaisRequest):
    transaction_context: str = ""

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("TransactionContext"), self.transaction_context))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            transaction_context=element.findtext(_q("TransactionContext"), "")
            or "",
        )


@dataclass
class CommitTransactionRequest(_TransactionContextRequest):
    TAG: ClassVar[QName] = _q("CommitTransactionRequest")


@dataclass
class RollbackTransactionRequest(_TransactionContextRequest):
    TAG: ClassVar[QName] = _q("RollbackTransactionRequest")


@dataclass
class TransactionOutcomeResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("TransactionOutcomeResponse")

    transaction_context: str = ""
    outcome: str = ""  # "Committed" | "RolledBack"

    def to_xml(self) -> XmlElement:
        return E(
            self.TAG,
            E(_q("TransactionContext"), self.transaction_context),
            E(_q("Outcome"), self.outcome),
        )

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            transaction_context=element.findtext(_q("TransactionContext"), "")
            or "",
            outcome=element.findtext(_q("Outcome"), "") or "",
        )


# ---------------------------------------------------------------------------
# SQLFactory (indirect pattern, Figure 3 right-hand column)
# ---------------------------------------------------------------------------


@dataclass
class SQLExecuteFactoryRequest(FactoryRequest):
    TAG: ClassVar[QName] = _q("SQLExecuteFactoryRequest")


@dataclass
class SQLExecuteFactoryResponse(FactoryResponse):
    TAG: ClassVar[QName] = _q("SQLExecuteFactoryResponse")


# ---------------------------------------------------------------------------
# ResponseAccess (Figure 6)
# ---------------------------------------------------------------------------


@dataclass
class _ResponseAccessRequest(DaisRequest):
    """Shared shape: abstract name only."""

    def to_xml(self) -> XmlElement:
        return self._root()

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(abstract_name=cls._read_name(element))


@dataclass
class GetSQLResponsePropertyDocumentRequest(_ResponseAccessRequest):
    TAG: ClassVar[QName] = _q("GetSQLResponsePropertyDocumentRequest")


@dataclass
class GetSQLResponsePropertyDocumentResponse(GetSQLPropertyDocumentResponse):
    TAG: ClassVar[QName] = _q("GetSQLResponsePropertyDocumentResponse")


@dataclass
class GetSQLRowsetRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetSQLRowsetRequest")

    dataset_format_uri: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        if self.dataset_format_uri:
            root.append(
                E(QName(WSDAI_NS, "DatasetFormatURI"), self.dataset_format_uri)
            )
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            dataset_format_uri=element.findtext(
                QName(WSDAI_NS, "DatasetFormatURI")
            ),
        )


@dataclass
class GetSQLRowsetResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetSQLRowsetResponse")

    dataset_format_uri: str = ""
    dataset: Optional[XmlElement] = None

    def to_xml(self) -> XmlElement:
        root = E(
            self.TAG,
            E(QName(WSDAI_NS, "DatasetFormatURI"), self.dataset_format_uri),
        )
        if self.dataset is not None:
            # Shared, not copied — see SQLExecuteResponse.to_xml.
            root.append(
                self.dataset if fastpath.enabled() else self.dataset.copy()
            )
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        children = [
            c
            for c in element.element_children()
            if c.tag != QName(WSDAI_NS, "DatasetFormatURI")
        ]
        return cls(
            dataset_format_uri=element.findtext(
                QName(WSDAI_NS, "DatasetFormatURI"), ""
            )
            or "",
            dataset=(children[0] if fastpath.enabled() else children[0].copy())
            if children
            else None,
        )


@dataclass
class GetSQLUpdateCountRequest(_ResponseAccessRequest):
    TAG: ClassVar[QName] = _q("GetSQLUpdateCountRequest")


@dataclass
class GetSQLUpdateCountResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetSQLUpdateCountResponse")

    update_count: int = -1

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_q("SQLUpdateCount"), self.update_count))

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            update_count=int(element.findtext(_q("SQLUpdateCount"), "-1") or "-1")
        )


@dataclass
class GetSQLCommunicationAreaRequest(_ResponseAccessRequest):
    TAG: ClassVar[QName] = _q("GetSQLCommunicationAreaRequest")


@dataclass
class GetSQLCommunicationAreaResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetSQLCommunicationAreaResponse")

    communication: SqlCommunicationArea = field(
        default_factory=lambda: SqlCommunicationArea.success(0)
    )

    def to_xml(self) -> XmlElement:
        return E(self.TAG, communication_area_to_xml(self.communication))

    @classmethod
    def from_xml(cls, element: XmlElement):
        area_el = element.find(_q("SQLCommunicationArea"))
        return cls(
            communication=communication_area_from_xml(area_el)
            if area_el is not None
            else SqlCommunicationArea.success(0)
        )


@dataclass
class GetSQLReturnValueRequest(_ResponseAccessRequest):
    TAG: ClassVar[QName] = _q("GetSQLReturnValueRequest")


@dataclass
class GetSQLReturnValueResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetSQLReturnValueResponse")

    value: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        node = E(_q("SQLReturnValue"))
        if self.value is None:
            node.set("nil", "true")
        else:
            node.text = self.value
        root.append(node)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        node = element.find(_q("SQLReturnValue"))
        if node is None or node.get("nil") == "true":
            return cls(value=None)
        return cls(value=node.text)


@dataclass
class GetSQLOutputParameterRequest(_ResponseAccessRequest):
    TAG: ClassVar[QName] = _q("GetSQLOutputParameterRequest")

    parameter_name: str = ""

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("ParameterName"), self.parameter_name))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            parameter_name=element.findtext(_q("ParameterName"), "") or "",
        )


@dataclass
class GetSQLOutputParameterResponse(GetSQLReturnValueResponse):
    TAG: ClassVar[QName] = _q("GetSQLOutputParameterResponse")


@dataclass
class GetSQLResponseItemRequest(_ResponseAccessRequest):
    """Introspection: which response items (rowset/update count/...) exist."""

    TAG: ClassVar[QName] = _q("GetSQLResponseItemRequest")


@dataclass
class GetSQLResponseItemResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetSQLResponseItemResponse")

    items: list[str] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        return E(self.TAG, [E(_q("ResponseItem"), item) for item in self.items])

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(items=[c.text for c in element.findall(_q("ResponseItem"))])


# ---------------------------------------------------------------------------
# ResponseFactory + RowsetAccess (Figures 5 and 6)
# ---------------------------------------------------------------------------


@dataclass
class SQLRowsetFactoryRequest(FactoryRequest):
    """Create a rowset resource from a response (Figure 5, step 2).

    ``expression`` is unused here; the requested dataset format URI rides
    in its place as a dedicated element.
    """

    TAG: ClassVar[QName] = _q("SQLRowsetFactoryRequest")

    dataset_format_uri: Optional[str] = None

    def to_xml(self) -> XmlElement:
        root = super().to_xml()
        if self.dataset_format_uri:
            root.append(
                E(QName(WSDAI_NS, "DatasetFormatURI"), self.dataset_format_uri)
            )
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        base = FactoryRequest.from_xml(element)
        return cls(
            abstract_name=base.abstract_name,
            port_type_qname=base.port_type_qname,
            configuration_document=base.configuration_document,
            expression=base.expression,
            language_uri=base.language_uri,
            parameters=base.parameters,
            dataset_format_uri=element.findtext(
                QName(WSDAI_NS, "DatasetFormatURI")
            ),
        )


@dataclass
class SQLRowsetFactoryResponse(FactoryResponse):
    TAG: ClassVar[QName] = _q("SQLRowsetFactoryResponse")


@dataclass
class GetRowsetPropertyDocumentRequest(_ResponseAccessRequest):
    TAG: ClassVar[QName] = _q("GetRowsetPropertyDocumentRequest")


@dataclass
class GetRowsetPropertyDocumentResponse(GetSQLPropertyDocumentResponse):
    TAG: ClassVar[QName] = _q("GetRowsetPropertyDocumentResponse")


@dataclass
class GetTuplesRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetTuplesRequest")

    start_position: int = 0
    #: ``None`` (Count omitted on the wire) means the rest of the rowset;
    #: an explicit 0 is an empty window.  A bare default of 0 silently
    #: turned every count-less request into an empty page.
    count: Optional[int] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("StartPosition"), self.start_position))
        if self.count is not None:
            root.append(E(_q("Count"), self.count))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        count_text = element.findtext(_q("Count"))
        return cls(
            abstract_name=cls._read_name(element),
            start_position=int(element.findtext(_q("StartPosition"), "0") or "0"),
            count=None if count_text is None else int(count_text or "0"),
        )


@dataclass
class GetTuplesResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetTuplesResponse")

    dataset_format_uri: str = ""
    dataset: Optional[XmlElement] = None
    total_rows: int = 0

    def to_xml(self) -> XmlElement:
        root = E(
            self.TAG,
            E(QName(WSDAI_NS, "DatasetFormatURI"), self.dataset_format_uri),
            E(_q("TotalRows"), self.total_rows),
        )
        if self.dataset is not None:
            # Shared, not copied — see SQLExecuteResponse.to_xml.
            root.append(
                self.dataset if fastpath.enabled() else self.dataset.copy()
            )
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        skip = {QName(WSDAI_NS, "DatasetFormatURI"), _q("TotalRows")}
        children = [c for c in element.element_children() if c.tag not in skip]
        return cls(
            dataset_format_uri=element.findtext(
                QName(WSDAI_NS, "DatasetFormatURI"), ""
            )
            or "",
            dataset=(children[0] if fastpath.enabled() else children[0].copy())
            if children
            else None,
            total_rows=int(element.findtext(_q("TotalRows"), "0") or "0"),
        )
