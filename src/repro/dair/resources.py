"""WS-DAIR data resources.

* :class:`SQLDataResource` — an externally managed relational database
  (the left-hand resource of Figure 5);
* :class:`SQLResponseResource` — the service managed outcome of an
  ``SQLExecuteFactory`` call: rowset + SQL communication area + update
  count.  Supports the ``Sensitivity`` property: an *insensitive*
  response snapshots its data at creation; a *sensitive* one re-runs the
  stored query against its parent on every access;
* :class:`SQLRowsetResource` — a service managed, pageable rowset in a
  negotiated dataset format (the Figure 5 web-rowset resource).
"""

from __future__ import annotations

from typing import Optional

from repro.core.faults import (
    DataResourceUnavailableFault,
    InvalidExpressionFault,
    NotAuthorizedFault,
)
from repro.core.names import AbstractName
from repro.core.namespaces import SQL_LANGUAGE_URI
from repro.core.properties import (
    ConfigurableProperties,
    CorePropertyDocument,
    DataResourceManagement,
    DatasetMapEntry,
    Sensitivity,
)
from repro.core.resource import DataResource
from repro.cim import describe_catalog, render_cim_xml
from repro.dair.datasets import ALL_FORMATS, Rowset, render_rowset
from repro.dair.namespaces import (
    SQLROWSET_FORMAT_URI,
    WSDAIR_NS,
)
from repro.relational import Database, SqlCommunicationArea, SqlError
from repro.relational.engine import ResultSet
from repro.relational.transactions import IsolationLevel
from repro.xmlutil import E, QName, XmlElement


def _q(local: str) -> QName:
    return QName(WSDAIR_NS, local)


class SQLPropertyDocument(CorePropertyDocument):
    """Core document + the WS-DAIR extensions (Figure 4, SQL grouping)."""

    ROOT_LOCAL = "SQLPropertyDocument"
    ROOT_NS = WSDAIR_NS

    def __init__(self, *args, cim_description: XmlElement | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cim_description = cim_description

    def extend_xml(self, root: XmlElement) -> None:
        if self.cim_description is not None:
            wrapper = E(_q("CIMDescription"))
            wrapper.append(self.cim_description.copy())
            root.append(wrapper)


class SQLDataResource(DataResource):
    """An externally managed relational database behind a data service."""

    def __init__(
        self,
        abstract_name: AbstractName,
        database: Database,
        statement_rewriter=None,
    ) -> None:
        super().__init__(
            abstract_name, DataResourceManagement.EXTERNALLY_MANAGED
        )
        self.database = database
        self._available = True
        #: Paper §2.1: a DAIS service may be a *thin* wrapper (pass query
        #: text straight through — the default) or a *thick* wrapper that
        #: intercepts/translates/redirects statements.  A thick wrapper
        #: supplies a ``str -> str`` rewriter here.
        self.statement_rewriter = statement_rewriter
        #: Open consumer-controlled transaction contexts (id → session).
        self._contexts: dict[str, "object"] = {}

    # -- availability (failure injection for tests/benches) ---------------

    def set_available(self, available: bool) -> None:
        self._available = available

    def _require_available(self) -> None:
        if not self._available:
            raise DataResourceUnavailableFault(
                f"database {self.database.name!r} is unavailable"
            )

    # -- SQL execution ----------------------------------------------------

    def sql_execute(
        self,
        expression: str,
        parameters: list[str] | None = None,
        configurable: ConfigurableProperties | None = None,
        stream: bool = False,
    ) -> ResultSet:
        """Run one SQL statement, honouring Readable/Writeable and the
        transaction properties of the binding.

        With ``stream=True`` a streamable SELECT returns a lazy result
        (see :meth:`repro.relational.engine.Session.execute`); its
        statement transaction completes when the row iterator does.
        Plan and permission errors still surface here, eagerly.
        """
        self._require_available()
        if self.statement_rewriter is not None:
            expression = self.statement_rewriter(expression)
        session = self.database.create_session()
        configurable = configurable or ConfigurableProperties()
        session.default_isolation = _isolation_for(configurable)
        try:
            result = session.execute(
                expression, tuple(parameters or ()), stream=stream
            )
        except SqlError as exc:
            raise InvalidExpressionFault(
                f"{type(exc).__name__} [{exc.sqlstate}]: {exc}"
            ) from exc
        finally:
            session.close()
        self._enforce_permissions(result, configurable)
        return result

    @staticmethod
    def _enforce_permissions(
        result: ResultSet, configurable: ConfigurableProperties
    ) -> None:
        if result.is_query and not configurable.readable:
            raise NotAuthorizedFault("resource is not readable")
        if not result.is_query and not configurable.writeable:
            raise NotAuthorizedFault("resource is not writeable")

    # -- consumer-controlled transactions (TransactionInitiation=Consumer) --

    def begin_transaction(self, isolation: str | None = None) -> str:
        """Open a transaction context; returns its id.

        The context holds a live engine session; subsequent
        ``sql_execute_in_context`` calls run inside it until commit or
        rollback.
        """
        import uuid

        self._require_available()
        session = self.database.create_session()
        begin = "BEGIN"
        if isolation:
            begin = f"BEGIN ISOLATION LEVEL {isolation}"
        try:
            session.execute(begin)
        except SqlError as exc:
            raise InvalidExpressionFault(str(exc)) from exc
        context_id = f"urn:dais:txctx:{uuid.uuid4()}"
        self._contexts[context_id] = session
        return context_id

    def _context_session(self, context_id: str):
        session = self._contexts.get(context_id)
        if session is None:
            raise InvalidExpressionFault(
                f"unknown transaction context {context_id!r}"
            )
        return session

    def sql_execute_in_context(
        self, context_id: str, expression: str, parameters: list[str]
    ) -> ResultSet:
        self._require_available()
        if self.statement_rewriter is not None:
            expression = self.statement_rewriter(expression)
        session = self._context_session(context_id)
        try:
            return session.execute(expression, tuple(parameters or ()))
        except SqlError as exc:
            raise InvalidExpressionFault(
                f"{type(exc).__name__} [{exc.sqlstate}]: {exc}"
            ) from exc

    def commit_transaction(self, context_id: str) -> None:
        session = self._contexts.pop(context_id, None)
        if session is None:
            raise InvalidExpressionFault(
                f"unknown transaction context {context_id!r}"
            )
        try:
            session.execute("COMMIT")
        except SqlError as exc:
            raise InvalidExpressionFault(str(exc)) from exc

    def rollback_transaction(self, context_id: str) -> None:
        session = self._contexts.pop(context_id, None)
        if session is None:
            raise InvalidExpressionFault(
                f"unknown transaction context {context_id!r}"
            )
        session.close()  # close rolls back

    def open_context_count(self) -> int:
        return len(self._contexts)

    def on_destroy(self) -> None:
        super().on_destroy()
        # Abandon any open consumer transactions (rollback + release locks).
        for session in self._contexts.values():
            session.close()
        self._contexts.clear()

    # -- generic query (core spec) --------------------------------------------

    def generic_query_languages(self) -> list[str]:
        return [SQL_LANGUAGE_URI]

    def generic_query(
        self, language_uri: str, expression: str, parameters: list[str]
    ) -> list[XmlElement]:
        result = self.sql_execute(expression, parameters)
        rowset = Rowset.from_result(result)
        return [render_rowset(SQLROWSET_FORMAT_URI, rowset)]

    # -- property document ----------------------------------------------------

    def property_version(self) -> int | None:
        # The document embeds the CIM schema description, which is valid
        # exactly as long as the catalog version stamp is (every DDL
        # path bumps it, including failed-DDL undo arms).
        return self.database.catalog.version

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> SQLPropertyDocument:
        cim = render_cim_xml(describe_catalog(self.database.catalog))
        return SQLPropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            concurrent_access=True,
            dataset_maps=[
                DatasetMapEntry(_q("SQLExecuteRequest"), uri)
                for uri in ALL_FORMATS
            ],
            languages=[SQL_LANGUAGE_URI],
            configurable=configurable,
            cim_description=cim,
        )


def _isolation_for(configurable: ConfigurableProperties) -> IsolationLevel:
    from repro.core.properties import TransactionIsolation as TI

    mapping = {
        TI.READ_UNCOMMITTED: IsolationLevel.READ_UNCOMMITTED,
        TI.READ_COMMITTED: IsolationLevel.READ_COMMITTED,
        TI.REPEATABLE_READ: IsolationLevel.REPEATABLE_READ,
        TI.SERIALIZABLE: IsolationLevel.SERIALIZABLE,
    }
    return mapping.get(
        configurable.transaction_isolation, IsolationLevel.READ_COMMITTED
    )


class SQLResponseResource(DataResource):
    """The derived resource created by ``SQLExecuteFactory``.

    Holds everything the WS-DAIR SQL response exposes: the rowset(s),
    the update count, the communication area, a return value and output
    parameters (both empty for plain statements — populated by stored
    procedures, which this engine does not implement).
    """

    def __init__(
        self,
        abstract_name: AbstractName,
        parent: SQLDataResource,
        expression: str,
        parameters: list[str],
        sensitivity: Sensitivity,
        configurable: ConfigurableProperties,
    ) -> None:
        super().__init__(
            abstract_name,
            DataResourceManagement.SERVICE_MANAGED,
            parent=parent.abstract_name,
        )
        self._parent_resource = parent
        self._expression = expression
        self._parameters = list(parameters)
        self._sensitivity = sensitivity
        self._creation_config = configurable
        self._snapshot: tuple | None = None
        if sensitivity is Sensitivity.INSENSITIVE:
            self._snapshot = self._evaluate()
        self._destroyed = False
        #: Invoked exactly once when the resource is torn down — the
        #: shared-result cache hooks this to forget its entry, so a
        #: destroyed resource's name can never be handed out again.
        self._destroy_listener = None

    def _evaluate(self) -> tuple:
        result = self._parent_resource.sql_execute(
            self._expression, self._parameters, self._creation_config
        )
        return (
            Rowset.from_result(result),
            result.communication,
            result.update_count,
            result.return_value,
            dict(result.output_parameters),
        )

    def _current(self) -> tuple:
        if self._destroyed:
            raise DataResourceUnavailableFault(
                f"response {self.abstract_name} has been destroyed"
            )
        if self._snapshot is not None:
            return self._snapshot
        # Sensitive responses re-evaluate against the parent on access.
        return self._evaluate()

    # -- ResponseAccess data ---------------------------------------------------

    def rowset(self) -> Rowset:
        return self._current()[0]

    def communication_area(self) -> SqlCommunicationArea:
        return self._current()[1]

    def update_count(self) -> int:
        return self._current()[2]

    def return_value(self) -> Optional[str]:
        """Stored-procedure return value (None for plain statements)."""
        return self._current()[3]

    def output_parameters(self) -> dict[str, str]:
        """Stored-procedure output parameters (empty for plain statements)."""
        return self._current()[4]

    @property
    def expression(self) -> str:
        return self._expression

    @property
    def sensitivity(self) -> Sensitivity:
        return self._sensitivity

    def set_destroy_listener(self, callback) -> None:
        self._destroy_listener = callback

    def on_destroy(self) -> None:
        super().on_destroy()
        # Service managed: data goes away with the relationship (§4.3).
        # Flag first: a concurrent reader must see "destroyed" (a typed
        # fault), never a half-disposed snapshot.
        self._destroyed = True
        self._snapshot = None
        listener, self._destroy_listener = self._destroy_listener, None
        if listener is not None:
            listener(self)

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        document = CorePropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            dataset_maps=[
                DatasetMapEntry(_q("GetSQLRowsetRequest"), uri)
                for uri in ALL_FORMATS
            ],
            configurable=configurable,
        )
        document.ROOT_LOCAL = "SQLResponsePropertyDocument"
        document.ROOT_NS = WSDAIR_NS
        return document


class SQLRowsetResource(DataResource):
    """A materialized, pageable rowset in a fixed dataset format."""

    def __init__(
        self,
        abstract_name: AbstractName,
        parent: SQLResponseResource,
        data_format_uri: str,
        rowset: Rowset,
    ) -> None:
        super().__init__(
            abstract_name,
            DataResourceManagement.SERVICE_MANAGED,
            parent=parent.abstract_name,
        )
        self.data_format_uri = data_format_uri
        self._rowset = rowset
        self._destroyed = False

    def rowset(self) -> Rowset:
        if self._destroyed:
            raise DataResourceUnavailableFault(
                f"rowset {self.abstract_name} has been destroyed"
            )
        return self._rowset

    def get_tuples(self, start: int, count: int | None = None) -> Rowset:
        """The GetTuples window; *start* is zero-based.

        ``count=None`` (Count omitted on the wire) returns the rest of
        the rowset; an explicit 0 is an empty window.
        """
        if start < 0 or (count is not None and count < 0):
            raise InvalidExpressionFault(
                "GetTuples start/count must be non-negative"
            )
        return self.rowset().slice(start, count)

    @property
    def row_count(self) -> int:
        return self.rowset().row_count

    def on_destroy(self) -> None:
        super().on_destroy()
        # Flag first: with the flag set after the data was blanked, a
        # GetTuples racing destroy could observe the placeholder rowset
        # and answer with an empty window and total_rows=0 instead of
        # the typed DataResourceUnavailableFault.
        self._destroyed = True
        self._rowset = Rowset([], [], [])

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        document = CorePropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            dataset_maps=[
                DatasetMapEntry(_q("GetTuplesRequest"), self.data_format_uri)
            ],
            configurable=configurable,
        )
        document.ROOT_LOCAL = "SQLRowsetPropertyDocument"
        document.ROOT_NS = WSDAIR_NS
        return document
