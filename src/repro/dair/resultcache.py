"""Shared derived-result cache for ``SQLExecuteFactory``.

The fig-7 indirect-access workload repeats the same factory request —
identical SQL text, identical parameters, same parent resource — and
until this tier every repeat re-executed the query and materialized a
brand-new ``SQLResponseResource``.  This cache maps such a request onto
the *existing* derived resource instead: the factory answers with the
same EPR, the binding gains one refcount claim (see
:meth:`repro.core.service.DataService.acquire_resource`), and each
consumer still issues its own ``DestroyDataResource`` — only the last
release actually destroys.

Correctness contract
--------------------

* Every entry is stamped with ``(catalog.version, data_version)`` of the
  parent database at *request admission* (before the snapshot is
  evaluated).  Schema changes bump the first component, committed DML
  the second, so a lookup that finds a stale stamp drops the entry
  (invalidation + miss) and the factory re-executes — a reused result
  can never reflect pre-DDL schema or pre-commit data.  Stamping before
  evaluation is deliberately conservative: a write racing the snapshot
  at worst costs one extra miss, never a stale hit.
* Reuse is offered only for insensitive, synchronous,
  unconfigured requests (a configuration document or ``SENSITIVE``
  sensitivity makes the derived resource consumer-specific).
* A destroyed derived resource calls :meth:`forget` through its destroy
  listener, so the cache can never hand out the name of a resource
  whose teardown already ran; the acquire callback inside
  :meth:`lookup` closes the remaining race (entry present but binding
  concurrently gone → drop, count as miss).

Thread-safety: one lock guards the table; the acquire callback runs
under it, which is safe because binding-table locks are only ever taken
*after* this one (destroy listeners fire outside the binding lock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

__all__ = ["SharedResultCache"]

#: Default number of distinct factory requests retained (LRU beyond this).
DEFAULT_CAPACITY = 256


class SharedResultCache:
    """A bounded, thread-safe LRU mapping factory requests to the
    abstract name of the shared derived resource."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple[Hashable, str]]" = (
            OrderedDict()
        )
        self._by_name: dict[str, Hashable] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._hits_counter = None
        self._misses_counter = None
        self._invalidations_counter = None

    def bind_counters(self, hits, misses, invalidations) -> None:
        """Mirror cache activity into ``cache.result.*`` counters
        (pre-bind activity is flushed in on the first bind)."""
        with self._lock:
            first_bind = self._hits_counter is None
            self._hits_counter = hits
            self._misses_counter = misses
            self._invalidations_counter = invalidations
            if first_bind:
                if self.hits:
                    hits.inc(self.hits)
                if self.misses:
                    misses.inc(self.misses)
                if self.invalidations:
                    invalidations.inc(self.invalidations)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self,
        key: Hashable,
        stamp: Hashable,
        acquire: Callable[[str], bool],
    ) -> Optional[str]:
        """Return the shared resource name for *key*, claiming it.

        *acquire* must atomically add one claim on the named binding and
        report whether it still exists; a hit is only counted when the
        claim lands.  A stale stamp, or an entry whose resource is
        already gone, is dropped (invalidation + miss).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                if self._misses_counter is not None:
                    self._misses_counter.inc()
                return None
            stored_stamp, name = entry
            if stored_stamp != stamp or not acquire(name):
                del self._entries[key]
                self._by_name.pop(name, None)
                self.invalidations += 1
                self.misses += 1
                if self._invalidations_counter is not None:
                    self._invalidations_counter.inc()
                if self._misses_counter is not None:
                    self._misses_counter.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if self._hits_counter is not None:
                self._hits_counter.inc()
            return name

    def store(self, key: Hashable, stamp: Hashable, name: str) -> None:
        """Record *name* as the shared resource for *key* at *stamp*."""
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._by_name.pop(old[1], None)
            self._entries[key] = (stamp, name)
            self._by_name[name] = key
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._by_name.pop(evicted, None)

    def forget(self, name: str) -> None:
        """Drop the entry for a destroyed resource (destroy listener)."""
        with self._lock:
            key = self._by_name.pop(name, None)
            if key is not None and key in self._entries:
                del self._entries[key]
                self.invalidations += 1
                if self._invalidations_counter is not None:
                    self._invalidations_counter.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_name.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot of the counters (plus current size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
            }
