"""The WS-DAIR data service.

One service class implements all five WS-DAIR port types; a deployment
enables the subset each service instance should expose (Figure 5 shows
three services with different port types).  Factories can target a
*different* service for the derived resource — exactly the Figure 5
topology — via ``response_target`` / ``rowset_target``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.faults import (
    DataResourceUnavailableFault,
    InvalidDatasetFormatFault,
    InvalidPortTypeQNameFault,
    InvalidResourceNameFault,
)
from repro.core.names import mint_abstract_name
from repro.core.properties import ConfigurationMapEntry, Sensitivity
from repro.core.service import DataService, ResourceBinding
from repro.dair import messages as msg
from repro.dair.datasets import (
    ALL_FORMATS,
    Rowset,
    StreamingRowset,
    render_rowset,
    stream_rowset,
)
from repro.dair.namespaces import (
    SQL_ACCESS_PT,
    SQL_FACTORY_PT,
    SQL_RESPONSE_ACCESS_PT,
    SQL_RESPONSE_FACTORY_PT,
    SQL_ROWSET_ACCESS_PT,
    SQLROWSET_FORMAT_URI,
    WSDAIR_NS,
)
from repro.dair.resources import (
    SQLDataResource,
    SQLResponseResource,
    SQLRowsetResource,
)
from repro.dair.resultcache import SharedResultCache
from repro.jobs.namespaces import MODE_ASYNCHRONOUS
from repro.relational import SqlCommunicationArea
from repro.soap.addressing import MessageHeaders
from repro.xmlutil import QName, XmlElement, parse, serialize

#: The five WS-DAIR port types, by short name.
PORT_TYPES = {
    "sql_access": SQL_ACCESS_PT,
    "sql_factory": SQL_FACTORY_PT,
    "response_access": SQL_RESPONSE_ACCESS_PT,
    "response_factory": SQL_RESPONSE_FACTORY_PT,
    "rowset_access": SQL_ROWSET_ACCESS_PT,
}


class SQLRealisationService(DataService):
    """A data service exposing a configurable set of WS-DAIR port types."""

    def __init__(
        self,
        name: str,
        address: str,
        port_types: Iterable[str] = tuple(PORT_TYPES),
        response_target: Optional["SQLRealisationService"] = None,
        rowset_target: Optional["SQLRealisationService"] = None,
        stream_datasets: bool = True,
        **kwargs,
    ) -> None:
        from repro.core.namespaces import WSDAI_NS

        kwargs.setdefault(
            "property_namespaces",
            {"wsdai": WSDAI_NS, "wsdair": WSDAIR_NS},
        )
        super().__init__(name, address, **kwargs)
        #: Stream SQLExecute datasets (lazy rows + incremental emitter)
        #: instead of materialising them; off reproduces the old
        #: O(result)-memory path, which the fig-5 benchmark compares.
        self.stream_datasets = stream_datasets
        self._rows_streamed = self.metrics.counter(
            "rowset.rows.streamed",
            "Rows emitted through streamed dataset responses",
        )
        # Plan-cache visibility: bound to each SQL resource's database
        # cache in add_resource, surfaced via /metrics and the
        # obs:ServiceMetrics property like every other counter here.
        self._plan_hits = self.metrics.counter(
            "cache.plan.hits",
            "Statements served from the plan cache without reparsing",
        )
        self._plan_misses = self.metrics.counter(
            "cache.plan.misses",
            "Statements compiled because no live plan was cached",
        )
        self._plan_invalidations = self.metrics.counter(
            "cache.plan.invalidations",
            "Cached plans dropped because the catalog version moved",
        )
        #: Shared derived results: a repeat SQLExecuteFactory request
        #: reuses the existing response resource (refcounted) instead of
        #: re-executing.  Set to ``None`` to disable.
        self.result_cache = SharedResultCache()
        self.result_cache.bind_counters(
            self.metrics.counter(
                "cache.result.hits",
                "Factory requests answered with a shared derived resource",
            ),
            self.metrics.counter(
                "cache.result.misses",
                "Factory requests that executed and materialized anew",
            ),
            self.metrics.counter(
                "cache.result.invalidations",
                "Shared-result entries dropped (version moved or destroyed)",
            ),
        )
        self.port_types = set(port_types)
        unknown = self.port_types - set(PORT_TYPES)
        if unknown:
            raise ValueError(f"unknown port types {sorted(unknown)}")
        #: Where SQLExecuteFactory registers derived responses (default: here).
        self.response_target = response_target or self
        #: Where SQLRowsetFactory registers derived rowsets (default: here).
        self.rowset_target = rowset_target or self

        if "sql_access" in self.port_types:
            self.register_operation(
                msg.SQLExecuteRequest.action(), self._handle_sql_execute
            )
            self.register_operation(
                msg.GetSQLPropertyDocumentRequest.action(),
                self._handle_get_sql_property_document,
            )
            self.register_operation(
                msg.BeginTransactionRequest.action(),
                self._handle_begin_transaction,
            )
            self.register_operation(
                msg.CommitTransactionRequest.action(),
                self._handle_commit_transaction,
            )
            self.register_operation(
                msg.RollbackTransactionRequest.action(),
                self._handle_rollback_transaction,
            )
        if "sql_factory" in self.port_types:
            self.register_operation(
                msg.SQLExecuteFactoryRequest.action(),
                self._handle_sql_execute_factory,
            )
        if "response_access" in self.port_types:
            self._install_response_access()
        if "response_factory" in self.port_types:
            self.register_operation(
                msg.SQLRowsetFactoryRequest.action(),
                self._handle_sql_rowset_factory,
            )
        if "rowset_access" in self.port_types:
            self.register_operation(
                msg.GetTuplesRequest.action(), self._handle_get_tuples
            )
            self.register_operation(
                msg.GetRowsetPropertyDocumentRequest.action(),
                self._handle_get_rowset_property_document,
            )

    def add_resource(self, resource, configurable=None, lifetime_seconds=None):
        binding = super().add_resource(resource, configurable, lifetime_seconds)
        if isinstance(resource, SQLDataResource):
            resource.database.plan_cache.bind_counters(
                self._plan_hits, self._plan_misses, self._plan_invalidations
            )
        return binding

    # -- typed binding lookups -----------------------------------------------

    def _sql_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, SQLDataResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not a SQL data resource"
            )
        return binding

    def _response_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, SQLResponseResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not a SQL response resource"
            )
        return binding

    def _rowset_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, SQLRowsetResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not a SQL rowset resource"
            )
        return binding

    # -- SQLAccess --------------------------------------------------------

    def _handle_sql_execute(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.SQLExecuteResponse:
        request = msg.SQLExecuteRequest.from_xml(payload)
        binding = self._sql_binding(request.abstract_name)
        resource: SQLDataResource = binding.resource

        # Check the DatasetMap directly: rendering the whole property
        # document (with its CIM schema snapshot) per execute is pure
        # overhead when only the format list is needed.
        format_uri = request.dataset_format_uri or SQLROWSET_FORMAT_URI
        if format_uri not in ALL_FORMATS:
            raise InvalidDatasetFormatFault(
                f"format {format_uri!r} not in DatasetMap"
            )

        if request.transaction_context:
            self._require_consumer_transactions(binding)
            result = resource.sql_execute_in_context(
                request.transaction_context,
                request.expression,
                request.parameters,
            )
        else:
            result = resource.sql_execute(
                request.expression,
                request.parameters,
                binding.configurable,
                stream=self.stream_datasets,
            )
        dataset = None
        communication_factory = None
        if result.is_query:
            if result.is_streaming:
                # Rows flow straight from the engine through the
                # incremental emitter into the transport; the lazy
                # communication area (serialized after the dataset)
                # reports the count that actually went out.
                rowset = StreamingRowset.from_result(result)
                dataset = stream_rowset(format_uri, rowset)

                def communication_factory(
                    rowset: StreamingRowset = rowset,
                ) -> SqlCommunicationArea:
                    count = rowset.rows_streamed
                    self._rows_streamed.inc(count)
                    return SqlCommunicationArea.success(
                        count, f"{count} row(s)"
                    )

            else:
                dataset = render_rowset(format_uri, Rowset.from_result(result))
        return msg.SQLExecuteResponse(
            dataset_format_uri=format_uri,
            dataset=dataset,
            update_count=result.update_count,
            communication=result.communication,
            communication_factory=communication_factory,
        )

    def _handle_get_sql_property_document(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLPropertyDocumentResponse:
        request = msg.GetSQLPropertyDocumentRequest.from_xml(payload)
        binding = self._sql_binding(request.abstract_name)
        return msg.GetSQLPropertyDocumentResponse(
            document=binding.property_document()
        )

    # -- consumer-controlled transactions ------------------------------------

    @staticmethod
    def _require_consumer_transactions(binding: ResourceBinding) -> None:
        from repro.core.faults import NotAuthorizedFault
        from repro.core.properties import TransactionInitiation

        if (
            binding.configurable.transaction_initiation
            is not TransactionInitiation.CONSUMER
        ):
            raise NotAuthorizedFault(
                "TransactionInitiation is "
                f"{binding.configurable.transaction_initiation.value}; "
                "consumer transaction contexts are not enabled for this "
                "resource"
            )

    def _handle_begin_transaction(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.BeginTransactionResponse:
        request = msg.BeginTransactionRequest.from_xml(payload)
        binding = self._sql_binding(request.abstract_name)
        self._require_consumer_transactions(binding)
        binding.require_writeable()
        context_id = binding.resource.begin_transaction(request.isolation)
        return msg.BeginTransactionResponse(transaction_context=context_id)

    def _handle_commit_transaction(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.TransactionOutcomeResponse:
        request = msg.CommitTransactionRequest.from_xml(payload)
        binding = self._sql_binding(request.abstract_name)
        self._require_consumer_transactions(binding)
        binding.resource.commit_transaction(request.transaction_context)
        return msg.TransactionOutcomeResponse(
            transaction_context=request.transaction_context,
            outcome="Committed",
        )

    def _handle_rollback_transaction(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.TransactionOutcomeResponse:
        request = msg.RollbackTransactionRequest.from_xml(payload)
        binding = self._sql_binding(request.abstract_name)
        self._require_consumer_transactions(binding)
        binding.resource.rollback_transaction(request.transaction_context)
        return msg.TransactionOutcomeResponse(
            transaction_context=request.transaction_context,
            outcome="RolledBack",
        )

    # -- SQLFactory --------------------------------------------------------

    def _validate_sql_factory(self, request: msg.SQLExecuteFactoryRequest):
        """Shared factory admission: binding, target and configuration.

        Runs for both execution modes, so an asynchronous submission
        faults *synchronously* on a bad port type or configuration
        document — only the execution itself is deferred.
        """
        binding = self._sql_binding(request.abstract_name)
        requested_pt = request.port_type_qname or SQL_RESPONSE_ACCESS_PT
        if requested_pt != SQL_RESPONSE_ACCESS_PT:
            raise InvalidPortTypeQNameFault(
                f"SQLExecuteFactory can wire up {SQL_RESPONSE_ACCESS_PT.clark()}"
                f", not {requested_pt.clark()}"
            )
        target = self.response_target
        if "response_access" not in target.port_types:
            raise InvalidPortTypeQNameFault(
                f"target service {target.name!r} lacks ResponseAccess"
            )
        configurable = binding.configurable.copy()
        if request.configuration_document is not None:
            configurable = configurable.apply_configuration_document(
                request.configuration_document
            )
        return binding, target, configurable

    def _handle_sql_execute_factory(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.SQLExecuteFactoryResponse:
        request = msg.SQLExecuteFactoryRequest.from_xml(payload)
        binding, target, configurable = self._validate_sql_factory(request)

        if request.execution_mode == MODE_ASYNCHRONOUS:
            if self.jobs is None:
                raise DataResourceUnavailableFault(
                    f"service {self.name!r} does not accept asynchronous "
                    "factory requests (no job queue attached)"
                )
            job = self.jobs.submit(
                self._sql_factory_kind(),
                {
                    "resource": str(request.abstract_name),
                    "expression": request.expression,
                    "parameters": list(request.parameters),
                    "configuration": serialize(request.configuration_document)
                    if request.configuration_document is not None
                    else "",
                },
            )
            return msg.SQLExecuteFactoryResponse(job_id=job.job_id)

        # Shared-result reuse: an identical insensitive, unconfigured
        # request against the same parent at the same catalog + data
        # version answers with the existing derived resource, adding one
        # refcount claim.  The stamp is taken *before* evaluation, so a
        # write racing the snapshot costs a miss, never a stale hit.
        cache = self.result_cache
        reusable = (
            cache is not None
            and request.configuration_document is None
            and configurable.sensitivity is Sensitivity.INSENSITIVE
            and isinstance(binding.resource, SQLDataResource)
        )
        if reusable:
            database = binding.resource.database
            stamp = (
                database.catalog.version,
                database.transactions.data_version,
            )
            key = (
                str(request.abstract_name),
                request.expression,
                tuple(request.parameters),
            )
            shared = cache.lookup(key, stamp, target.acquire_resource)
            if shared is not None:
                return msg.SQLExecuteFactoryResponse(
                    address=target.epr_for(shared),
                    abstract_name=shared,
                )

        derived = SQLResponseResource(
            abstract_name=mint_abstract_name("sqlresponse"),
            parent=binding.resource,
            expression=request.expression,
            parameters=request.parameters,
            sensitivity=configurable.sensitivity,
            # Evaluation runs under the PARENT binding's permissions;
            # the configuration document governs the derived resource.
            configurable=binding.configurable,
        )
        target.add_resource(derived, configurable)
        try:
            if reusable:
                derived.set_destroy_listener(
                    lambda resource: cache.forget(resource.abstract_name)
                )
                cache.store(key, stamp, derived.abstract_name)
            return msg.SQLExecuteFactoryResponse(
                address=target.epr_for(derived.abstract_name),
                abstract_name=derived.abstract_name,
            )
        except BaseException:
            # A failure after the name was reserved must not leave the
            # registry entry dangling.
            target.destroy_resource(derived.abstract_name)
            raise

    # -- asynchronous factory execution ------------------------------------

    def _sql_factory_kind(self) -> str:
        """Executor-registry key; service-scoped so deployments sharing
        one JobManager across services route each job back to the
        service that accepted it."""
        return f"{self.name}:sql-execute-factory"

    def enable_jobs(self, jobs, terminal_ttl: float | None = None) -> None:
        super().enable_jobs(jobs, terminal_ttl)
        if "sql_factory" in self.port_types:
            jobs.register_executor(
                self._sql_factory_kind(),
                self._execute_sql_factory_job,
                rollback=self._rollback_sql_factory_job,
            )

    def _execute_sql_factory_job(self, job) -> dict:
        """Run one deferred SQLExecuteFactory: materialize the derived
        response resource and return its coordinates.

        Ordering mirrors the reservation-leak contract: the derived name
        is reserved (``add_resource``), then the expression is forced —
        a fault after the reservation destroys the entry before it
        propagates, so an ERROR job never strands a registry entry.
        """
        payload = job.payload
        binding = self._sql_binding(payload["resource"])
        configurable = binding.configurable.copy()
        if payload.get("configuration"):
            configurable = configurable.apply_configuration_document(
                parse(payload["configuration"])
            )
        sensitivity = configurable.sensitivity
        derived = SQLResponseResource(
            abstract_name=mint_abstract_name("sqlresponse"),
            parent=binding.resource,
            expression=payload["expression"],
            parameters=list(payload.get("parameters") or ()),
            sensitivity=sensitivity,
            configurable=binding.configurable,
        )
        target = self.response_target
        target.add_resource(derived, configurable)
        try:
            if sensitivity is Sensitivity.SENSITIVE:
                # Asynchronous means the work happens *now*, not at first
                # access: force one evaluation so a faulting expression
                # surfaces as the job outcome instead of at fetch time.
                derived.communication_area()
        except BaseException:
            target.destroy_resource(derived.abstract_name)
            raise
        return {
            "abstract_name": str(derived.abstract_name),
            "address": target.address,
        }

    def _rollback_sql_factory_job(self, job, result: dict) -> None:
        """Undo a materialization whose completion lost the terminal
        race (duplicate run, expired lease, cancel-vs-complete)."""
        name = result.get("abstract_name")
        if name and self.response_target.has_resource(name):
            self.response_target.destroy_resource(name)

    # -- ResponseAccess ----------------------------------------------------

    def _install_response_access(self) -> None:
        self.register_operation(
            msg.GetSQLResponsePropertyDocumentRequest.action(),
            self._handle_get_response_property_document,
        )
        self.register_operation(
            msg.GetSQLRowsetRequest.action(), self._handle_get_sql_rowset
        )
        self.register_operation(
            msg.GetSQLUpdateCountRequest.action(), self._handle_get_update_count
        )
        self.register_operation(
            msg.GetSQLCommunicationAreaRequest.action(),
            self._handle_get_communication_area,
        )
        self.register_operation(
            msg.GetSQLReturnValueRequest.action(), self._handle_get_return_value
        )
        self.register_operation(
            msg.GetSQLOutputParameterRequest.action(),
            self._handle_get_output_parameter,
        )
        self.register_operation(
            msg.GetSQLResponseItemRequest.action(),
            self._handle_get_response_item,
        )

    def _handle_get_response_property_document(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLResponsePropertyDocumentResponse:
        request = msg.GetSQLResponsePropertyDocumentRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        return msg.GetSQLResponsePropertyDocumentResponse(
            document=binding.property_document()
        )

    def _handle_get_sql_rowset(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLRowsetResponse:
        request = msg.GetSQLRowsetRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        binding.require_readable()
        resource: SQLResponseResource = binding.resource
        format_uri = request.dataset_format_uri or SQLROWSET_FORMAT_URI
        rowset = resource.rowset()
        if self.stream_datasets:
            # The response rowset is already materialized, but emitting
            # it incrementally lets the transport chunk the reply
            # instead of buffering one giant serialized string.
            dataset = stream_rowset(format_uri, rowset)
            self._rows_streamed.inc(rowset.row_count)
        else:
            dataset = render_rowset(format_uri, rowset)
        return msg.GetSQLRowsetResponse(
            dataset_format_uri=format_uri,
            dataset=dataset,
        )

    def _handle_get_update_count(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLUpdateCountResponse:
        request = msg.GetSQLUpdateCountRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        return msg.GetSQLUpdateCountResponse(
            update_count=binding.resource.update_count()
        )

    def _handle_get_communication_area(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLCommunicationAreaResponse:
        request = msg.GetSQLCommunicationAreaRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        return msg.GetSQLCommunicationAreaResponse(
            communication=binding.resource.communication_area()
        )

    def _handle_get_return_value(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLReturnValueResponse:
        request = msg.GetSQLReturnValueRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        return msg.GetSQLReturnValueResponse(value=binding.resource.return_value())

    def _handle_get_output_parameter(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLOutputParameterResponse:
        request = msg.GetSQLOutputParameterRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        value = binding.resource.output_parameters().get(request.parameter_name)
        return msg.GetSQLOutputParameterResponse(value=value)

    def _handle_get_response_item(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetSQLResponseItemResponse:
        request = msg.GetSQLResponseItemRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        resource: SQLResponseResource = binding.resource
        items = ["SQLCommunicationArea", "SQLUpdateCount"]
        if resource.rowset().columns:
            items.insert(0, "SQLRowset")
        if resource.return_value() is not None:
            items.append("SQLReturnValue")
        items.extend(sorted(resource.output_parameters()))
        return msg.GetSQLResponseItemResponse(items=items)

    # -- ResponseFactory -------------------------------------------------------

    def _handle_sql_rowset_factory(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.SQLRowsetFactoryResponse:
        request = msg.SQLRowsetFactoryRequest.from_xml(payload)
        binding = self._response_binding(request.abstract_name)
        resource: SQLResponseResource = binding.resource

        requested_pt = request.port_type_qname or SQL_ROWSET_ACCESS_PT
        if requested_pt != SQL_ROWSET_ACCESS_PT:
            raise InvalidPortTypeQNameFault(
                f"SQLRowsetFactory can wire up {SQL_ROWSET_ACCESS_PT.clark()}"
                f", not {requested_pt.clark()}"
            )
        target = self.rowset_target
        if "rowset_access" not in target.port_types:
            raise InvalidPortTypeQNameFault(
                f"target service {target.name!r} lacks RowsetAccess"
            )

        format_uri = request.dataset_format_uri or SQLROWSET_FORMAT_URI
        if format_uri not in ALL_FORMATS:
            raise InvalidDatasetFormatFault(
                f"format {format_uri!r} not supported for rowset resources"
            )

        configurable = binding.configurable.copy()
        if request.configuration_document is not None:
            configurable = configurable.apply_configuration_document(
                request.configuration_document
            )

        derived = SQLRowsetResource(
            abstract_name=mint_abstract_name("sqlrowset"),
            parent=resource,
            data_format_uri=format_uri,
            rowset=resource.rowset(),
        )
        target.add_resource(derived, configurable)
        try:
            return msg.SQLRowsetFactoryResponse(
                address=target.epr_for(derived.abstract_name),
                abstract_name=derived.abstract_name,
            )
        except BaseException:
            target.destroy_resource(derived.abstract_name)
            raise

    # -- RowsetAccess ----------------------------------------------------------

    def _handle_get_tuples(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetTuplesResponse:
        request = msg.GetTuplesRequest.from_xml(payload)
        binding = self._rowset_binding(request.abstract_name)
        binding.require_readable()
        resource: SQLRowsetResource = binding.resource
        window = resource.get_tuples(request.start_position, request.count)
        return msg.GetTuplesResponse(
            dataset_format_uri=resource.data_format_uri,
            dataset=render_rowset(resource.data_format_uri, window),
            total_rows=resource.row_count,
        )

    def _handle_get_rowset_property_document(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetRowsetPropertyDocumentResponse:
        request = msg.GetRowsetPropertyDocumentRequest.from_xml(payload)
        binding = self._rowset_binding(request.abstract_name)
        return msg.GetRowsetPropertyDocumentResponse(
            document=binding.property_document()
        )

    # -- property document wiring (ConfigurationMap) ----------------------------

    def configuration_map(self) -> list[ConfigurationMapEntry]:
        entries = []
        if "sql_factory" in self.port_types:
            entries.append(
                ConfigurationMapEntry(
                    msg.SQLExecuteFactoryRequest.TAG, SQL_RESPONSE_ACCESS_PT
                )
            )
        if "response_factory" in self.port_types:
            entries.append(
                ConfigurationMapEntry(
                    msg.SQLRowsetFactoryRequest.TAG, SQL_ROWSET_ACCESS_PT
                )
            )
        return entries
