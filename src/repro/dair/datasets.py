"""Rowset dataset formats.

A :class:`Rowset` is the neutral in-memory form (column names, SQL type
names, row tuples).  Three wire renderings are supported, negotiated via
``DatasetMap`` (paper §4.1: "the DataFormatURI specifies the format in
which the data should be returned ... valid return formats are specified
in one or more DatasetMap properties"):

* **SQLRowset XML** — the WS-DAIR native rendering;
* **WebRowSet** — the Sun JDBC WebRowSet dialect Figure 5 calls out;
* **CSV** — a compact textual rendering inside a wrapper element.

All three parse back to an equal :class:`Rowset` (values come back as
their lexical strings; NULL is preserved exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.faults import InvalidDatasetFormatFault
from repro.dair.namespaces import (
    CSV_FORMAT_URI,
    SQLROWSET_FORMAT_URI,
    WEBROWSET_FORMAT_URI,
    WSDAIR_NS,
)
from repro.relational.engine import ResultSet
from repro.relational.types import NULL
from repro.xmlutil import E, QName, XmlElement

_WEBROWSET_NS = "http://java.sun.com/xml/ns/jdbc"


@dataclass
class Rowset:
    """Format-neutral rowset: names, type names, lexical row values."""

    columns: list[str]
    types: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: ResultSet) -> "Rowset":
        """Capture a relational result set (values become lexical text)."""
        rows = [
            tuple(NULL if v is NULL else _lexical(v) for v in row)
            for row in result.rows
        ]
        return cls(
            columns=list(result.columns),
            types=["" for _ in result.columns],
            rows=rows,
        )

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def slice(self, start: int, count: int) -> "Rowset":
        """Rows [start, start+count) — the GetTuples paging window."""
        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        return Rowset(
            columns=list(self.columns),
            types=list(self.types),
            rows=self.rows[start : start + count],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rowset):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows


def _lexical(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


#: Format URIs every SQL resource advertises, in preference order.
ALL_FORMATS = [SQLROWSET_FORMAT_URI, WEBROWSET_FORMAT_URI, CSV_FORMAT_URI]


def render_rowset(data_format_uri: str, rowset: Rowset) -> XmlElement:
    """Render *rowset* in the requested format; faults on unknown URIs."""
    renderer = _RENDERERS.get(data_format_uri)
    if renderer is None:
        raise InvalidDatasetFormatFault(
            f"unsupported dataset format {data_format_uri!r}"
        )
    return renderer(rowset)


def parse_rowset(data_format_uri: str, element: XmlElement) -> Rowset:
    """Parse a rendering back to a :class:`Rowset`."""
    parser = _PARSERS.get(data_format_uri)
    if parser is None:
        raise InvalidDatasetFormatFault(
            f"unsupported dataset format {data_format_uri!r}"
        )
    return parser(element)


# ---------------------------------------------------------------------------
# SQLRowset XML (WS-DAIR native)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _q(local: str) -> QName:
    return QName(WSDAIR_NS, local)


def _render_sqlrowset(rowset: Rowset) -> XmlElement:
    root = E(_q("SQLRowset"))
    metadata = E(_q("ColumnMetadata"))
    for index, name in enumerate(rowset.columns):
        column = E(_q("Column"))
        column.set("name", name)
        if index < len(rowset.types) and rowset.types[index]:
            column.set("type", rowset.types[index])
        metadata.append(column)
    root.append(metadata)
    for row in rowset.rows:
        row_el = E(_q("Row"))
        for value in row:
            if value is NULL:
                row_el.append(E(_q("Null")))
            else:
                row_el.append(E(_q("Value"), value))
        root.append(row_el)
    return root


def _parse_sqlrowset(element: XmlElement) -> Rowset:
    metadata = element.find(_q("ColumnMetadata"))
    columns: list[str] = []
    types: list[str] = []
    if metadata is not None:
        for column in metadata.findall(_q("Column")):
            columns.append(column.get("name", "") or "")
            types.append(column.get("type", "") or "")
    rows = []
    for row_el in element.findall(_q("Row")):
        values = []
        for child in row_el.element_children():
            if child.tag == _q("Null"):
                values.append(NULL)
            else:
                values.append(child.text)
        rows.append(tuple(values))
    return Rowset(columns, types, rows)


# ---------------------------------------------------------------------------
# WebRowSet (Sun JDBC dialect)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _w(local: str) -> QName:
    return QName(_WEBROWSET_NS, local)


def _render_webrowset(rowset: Rowset) -> XmlElement:
    metadata = E(_w("metadata"), E(_w("column-count"), len(rowset.columns)))
    for index, name in enumerate(rowset.columns):
        definition = E(
            _w("column-definition"),
            E(_w("column-index"), index + 1),
            E(_w("column-name"), name),
        )
        if index < len(rowset.types) and rowset.types[index]:
            definition.append(E(_w("column-type-name"), rowset.types[index]))
        metadata.append(definition)
    data = E(_w("data"))
    for row in rowset.rows:
        current = E(_w("currentRow"))
        for value in row:
            if value is NULL:
                column_value = E(_w("columnValue"))
                column_value.set("null", "true")
                current.append(column_value)
            else:
                current.append(E(_w("columnValue"), value))
        data.append(current)
    return E(_w("webRowSet"), metadata, data)


def _parse_webrowset(element: XmlElement) -> Rowset:
    metadata = element.find(_w("metadata"))
    columns: list[str] = []
    types: list[str] = []
    if metadata is not None:
        for definition in metadata.findall(_w("column-definition")):
            columns.append(definition.findtext(_w("column-name"), "") or "")
            types.append(definition.findtext(_w("column-type-name"), "") or "")
    rows = []
    data = element.find(_w("data"))
    if data is not None:
        for current in data.findall(_w("currentRow")):
            values = []
            for column_value in current.findall(_w("columnValue")):
                if column_value.get("null") == "true":
                    values.append(NULL)
                else:
                    values.append(column_value.text)
            rows.append(tuple(values))
    return Rowset(columns, types, rows)


# ---------------------------------------------------------------------------
# CSV-in-XML
# ---------------------------------------------------------------------------

_NULL_TOKEN = "\\N"


def _csv_escape(value: str) -> str:
    if value == _NULL_TOKEN or any(c in value for c in ',"\n\r'):
        return '"' + value.replace('"', '""') + '"'
    return value


def _csv_split(line: str) -> list[str]:
    fields: list[str] = []
    buffer: list[str] = []
    index = 0
    in_quotes = False
    while index < len(line):
        ch = line[index]
        if in_quotes:
            if ch == '"':
                if index + 1 < len(line) and line[index + 1] == '"':
                    buffer.append('"')
                    index += 1
                else:
                    in_quotes = False
            else:
                buffer.append(ch)
        elif ch == '"':
            in_quotes = True
        elif ch == ",":
            fields.append("".join(buffer))
            buffer.clear()
        else:
            buffer.append(ch)
        index += 1
    fields.append("".join(buffer))
    return fields


def _render_csv(rowset: Rowset) -> XmlElement:
    lines = [",".join(_csv_escape(name) for name in rowset.columns)]
    for row in rowset.rows:
        lines.append(
            ",".join(
                _NULL_TOKEN if value is NULL else _csv_escape(value)
                for value in row
            )
        )
    root = E(_q("CsvRowset"), "\n".join(lines))
    root.set("columns", len(rowset.columns))
    return root


def _split_records(text: str) -> list[str]:
    """Split CSV text into records, honouring quoted newlines."""
    records: list[str] = []
    buffer: list[str] = []
    in_quotes = False
    for ch in text:
        if ch == '"':
            in_quotes = not in_quotes
            buffer.append(ch)
        elif ch == "\n" and not in_quotes:
            records.append("".join(buffer))
            buffer.clear()
        else:
            buffer.append(ch)
    records.append("".join(buffer))
    return records


def _parse_csv(element: XmlElement) -> Rowset:
    text = element.text
    if not text:
        return Rowset([], [], [])
    lines = _split_records(text)
    columns = _csv_split(lines[0]) if lines else []
    rows = []
    for line in lines[1:]:
        fields = _csv_split(line)
        rows.append(
            tuple(NULL if field == _NULL_TOKEN else field for field in fields)
        )
    return Rowset(columns, ["" for _ in columns], rows)


_RENDERERS = {
    SQLROWSET_FORMAT_URI: _render_sqlrowset,
    WEBROWSET_FORMAT_URI: _render_webrowset,
    CSV_FORMAT_URI: _render_csv,
}

_PARSERS = {
    SQLROWSET_FORMAT_URI: _parse_sqlrowset,
    WEBROWSET_FORMAT_URI: _parse_webrowset,
    CSV_FORMAT_URI: _parse_csv,
}
