"""Rowset dataset formats.

A :class:`Rowset` is the neutral in-memory form (column names, SQL type
names, row tuples).  Three wire renderings are supported, negotiated via
``DatasetMap`` (paper §4.1: "the DataFormatURI specifies the format in
which the data should be returned ... valid return formats are specified
in one or more DatasetMap properties"):

* **SQLRowset XML** — the WS-DAIR native rendering;
* **WebRowSet** — the Sun JDBC WebRowSet dialect Figure 5 calls out;
* **CSV** — a compact textual rendering inside a wrapper element.

All three parse back to an equal :class:`Rowset` (values come back as
their lexical strings; NULL is preserved exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Iterator

from repro.core.faults import InvalidDatasetFormatFault
from repro.dair.namespaces import (
    CSV_FORMAT_URI,
    SQLROWSET_FORMAT_URI,
    WEBROWSET_FORMAT_URI,
    WEBROWSET_NS,
    WSDAIR_NS,
)
from repro import fastpath
from repro.relational.engine import ResultSet
from repro.relational.types import NULL
from repro.xmlutil import (
    E,
    QName,
    StreamedElement,
    Text,
    XmlElement,
    escape_attribute,
    escape_text,
    interned_qname,
)

_WEBROWSET_NS = WEBROWSET_NS


def _result_types(result: ResultSet) -> list[str]:
    """Column type names for a result, aligned to its columns."""
    if len(result.column_types) == len(result.columns):
        return list(result.column_types)
    return ["" for _ in result.columns]


@dataclass
class Rowset:
    """Format-neutral rowset: names, type names, lexical row values."""

    columns: list[str]
    types: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: ResultSet) -> "Rowset":
        """Capture a relational result set (values become lexical text).

        A streaming result is drained here; use :class:`StreamingRowset`
        to keep it lazy.
        """
        rows = [
            tuple(
                [
                    str(v)
                    if type(v) is int
                    else v
                    if type(v) is str
                    else NULL if v is NULL else _lexical(v)
                    for v in row
                ]
            )
            for row in result.iter_rows()
        ]
        return cls(
            columns=list(result.columns),
            types=_result_types(result),
            rows=rows,
        )

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def slice(self, start: int, count: int | None = None) -> "Rowset":
        """Rows [start, start+count) — the GetTuples paging window.

        ``count=None`` means the rest of the rowset (a GetTuples request
        that omits Count); an explicit 0 is an empty window.
        """
        if start < 0 or (count is not None and count < 0):
            raise ValueError("start and count must be non-negative")
        stop = None if count is None else start + count
        return Rowset(
            columns=list(self.columns),
            types=list(self.types),
            rows=self.rows[start:stop],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rowset):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows


class StreamingRowset:
    """A rowset whose rows come lazily from a one-shot iterator.

    Columns and type names are known up front (they come from catalog
    metadata, not the data); rows are lexicalized as they are pulled, so
    peak memory is one row regardless of result size.  ``rows_streamed``
    counts rows already yielded — after exhaustion it is the total, which
    is how a communication area serialized *after* a streamed dataset
    reports the true row count.
    """

    def __init__(
        self,
        columns: Iterable[str],
        types: Iterable[str],
        source: Iterable[tuple],
    ) -> None:
        self.columns = list(columns)
        self.types = list(types)
        self._source = iter(source)
        self.rows_streamed = 0

    @classmethod
    def from_result(cls, result: ResultSet) -> "StreamingRowset":
        """Wrap a result set without draining it."""
        source = (
            tuple(
                [
                    str(v)
                    if type(v) is int
                    else v
                    if type(v) is str
                    else NULL if v is NULL else _lexical(v)
                    for v in row
                ]
            )
            for row in result.iter_rows()
        )
        return cls(list(result.columns), _result_types(result), source)

    def __iter__(self) -> Iterator[tuple]:
        for row in self._source:
            self.rows_streamed += 1
            yield row

    def window(self, start: int, count: int | None = None) -> Iterator[tuple]:
        """Spill-free forward window: skip to *start*, yield up to
        *count* rows (``None`` = the rest).  Skipped rows are discarded
        as they are pulled; the stream cannot rewind."""
        if start < 0 or (count is not None and count < 0):
            raise ValueError("start and count must be non-negative")
        if count == 0:
            return
        remaining = count
        skipped = 0
        for row in self:
            if skipped < start:
                skipped += 1
                continue
            yield row
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    return

    def materialize(self) -> Rowset:
        """Drain the stream into an ordinary :class:`Rowset`."""
        return Rowset(list(self.columns), list(self.types), list(self))


def _lexical(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


#: Format URIs every SQL resource advertises, in preference order.
ALL_FORMATS = [SQLROWSET_FORMAT_URI, WEBROWSET_FORMAT_URI, CSV_FORMAT_URI]


def render_rowset(data_format_uri: str, rowset: Rowset) -> XmlElement:
    """Render *rowset* in the requested format; faults on unknown URIs."""
    renderer = _RENDERERS.get(data_format_uri)
    if renderer is None:
        raise InvalidDatasetFormatFault(
            f"unsupported dataset format {data_format_uri!r}"
        )
    return renderer(rowset)


def parse_rowset(data_format_uri: str, element: XmlElement) -> Rowset:
    """Parse a rendering back to a :class:`Rowset`."""
    parser = _PARSERS.get(data_format_uri)
    if parser is None:
        raise InvalidDatasetFormatFault(
            f"unsupported dataset format {data_format_uri!r}"
        )
    return parser(element)


# ---------------------------------------------------------------------------
# SQLRowset XML (WS-DAIR native)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _q(local: str) -> QName:
    return QName(WSDAIR_NS, local)


def _render_sqlrowset(rowset: Rowset) -> XmlElement:
    root = E(_q("SQLRowset"))
    metadata = E(_q("ColumnMetadata"))
    for index, name in enumerate(rowset.columns):
        column = E(_q("Column"))
        column.set("name", name)
        if index < len(rowset.types) and rowset.types[index]:
            column.set("type", rowset.types[index])
        metadata.append(column)
    root.append(metadata)
    for row in rowset.rows:
        row_el = E(_q("Row"))
        for value in row:
            if value is NULL:
                row_el.append(E(_q("Null")))
            else:
                row_el.append(E(_q("Value"), value))
        root.append(row_el)
    return root


def _parse_sqlrowset(element: XmlElement) -> Rowset:
    metadata = element.find(_q("ColumnMetadata"))
    columns: list[str] = []
    types: list[str] = []
    if metadata is not None:
        for column in metadata.findall(_q("Column")):
            columns.append(column.get("name", "") or "")
            types.append(column.get("type", "") or "")
    rows = []
    if fastpath.enabled():
        # One pass over raw children with the tag QNames bound once.
        # Freshly parsed trees carry the interned instances, so tags
        # compare by identity; equality is the fallback for hand-built
        # trees.  A Value's single merged Text child is read directly
        # instead of through the joining ``text`` property.
        row_qi = interned_qname(WSDAIR_NS, "Row")
        value_qi = interned_qname(WSDAIR_NS, "Value")
        null_qi = interned_qname(WSDAIR_NS, "Null")
        for row_el in element.children:
            if type(row_el) is not XmlElement or (
                row_el.tag is not row_qi and row_el.tag != row_qi
            ):
                continue
            values = []
            append = values.append
            for child in row_el.children:
                if type(child) is not XmlElement:
                    continue
                tag = child.tag
                if tag is value_qi:
                    inner = child.children
                    if len(inner) == 1 and type(inner[0]) is Text:
                        append(inner[0].value)
                    else:
                        append(child.text)
                elif tag is null_qi or tag == null_qi:
                    append(NULL)
                else:
                    append(child.text)
            rows.append(tuple(values))
        return Rowset(columns, types, rows)
    for row_el in element.findall(_q("Row")):
        values = []
        for child in row_el.element_children():
            if child.tag == _q("Null"):
                values.append(NULL)
            else:
                values.append(child.text)
        rows.append(tuple(values))
    return Rowset(columns, types, rows)


# ---------------------------------------------------------------------------
# WebRowSet (Sun JDBC dialect)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _w(local: str) -> QName:
    return QName(_WEBROWSET_NS, local)


def _render_webrowset(rowset: Rowset) -> XmlElement:
    metadata = E(_w("metadata"), E(_w("column-count"), len(rowset.columns)))
    for index, name in enumerate(rowset.columns):
        definition = E(
            _w("column-definition"),
            E(_w("column-index"), index + 1),
            E(_w("column-name"), name),
        )
        if index < len(rowset.types) and rowset.types[index]:
            definition.append(E(_w("column-type-name"), rowset.types[index]))
        metadata.append(definition)
    data = E(_w("data"))
    for row in rowset.rows:
        current = E(_w("currentRow"))
        for value in row:
            if value is NULL:
                column_value = E(_w("columnValue"))
                column_value.set("null", "true")
                current.append(column_value)
            else:
                current.append(E(_w("columnValue"), value))
        data.append(current)
    return E(_w("webRowSet"), metadata, data)


def _parse_webrowset(element: XmlElement) -> Rowset:
    metadata = element.find(_w("metadata"))
    columns: list[str] = []
    types: list[str] = []
    if metadata is not None:
        for definition in metadata.findall(_w("column-definition")):
            columns.append(definition.findtext(_w("column-name"), "") or "")
            types.append(definition.findtext(_w("column-type-name"), "") or "")
    rows = []
    data = element.find(_w("data"))
    if data is not None:
        for current in data.findall(_w("currentRow")):
            values = []
            for column_value in current.findall(_w("columnValue")):
                if column_value.get("null") == "true":
                    values.append(NULL)
                else:
                    values.append(column_value.text)
            rows.append(tuple(values))
    return Rowset(columns, types, rows)


# ---------------------------------------------------------------------------
# CSV-in-XML
# ---------------------------------------------------------------------------

_NULL_TOKEN = "\\N"


def _csv_escape(value: str) -> str:
    if value == _NULL_TOKEN or any(c in value for c in ',"\n\r'):
        return '"' + value.replace('"', '""') + '"'
    return value


def _csv_split_fields(line: str) -> list[tuple[str, bool]]:
    """Split one record into (text, was_quoted) fields.

    The quoted flag distinguishes the NULL token ``\\N`` (bare) from a
    literal value ``"\\N"`` (quoted) — dropping it during unquoting is
    exactly how a quoted literal would collapse into NULL on parse.
    """
    fields: list[tuple[str, bool]] = []
    buffer: list[str] = []
    index = 0
    in_quotes = False
    quoted = False
    while index < len(line):
        ch = line[index]
        if in_quotes:
            if ch == '"':
                if index + 1 < len(line) and line[index + 1] == '"':
                    buffer.append('"')
                    index += 1
                else:
                    in_quotes = False
            else:
                buffer.append(ch)
        elif ch == '"':
            in_quotes = True
            quoted = True
        elif ch == ",":
            fields.append(("".join(buffer), quoted))
            buffer.clear()
            quoted = False
        else:
            buffer.append(ch)
        index += 1
    fields.append(("".join(buffer), quoted))
    return fields


def _csv_split(line: str) -> list[str]:
    return [text for text, _ in _csv_split_fields(line)]


def _render_csv(rowset: Rowset) -> XmlElement:
    lines = [",".join(_csv_escape(name) for name in rowset.columns)]
    for row in rowset.rows:
        lines.append(
            ",".join(
                _NULL_TOKEN if value is NULL else _csv_escape(value)
                for value in row
            )
        )
    root = E(_q("CsvRowset"), "\n".join(lines))
    root.set("columns", len(rowset.columns))
    _set_csv_types(root, rowset)
    return root


def _set_csv_types(element: XmlElement, rowset) -> None:
    """CSV bodies cannot carry type names, so they ride the container
    element as a CSV-escaped attribute (escaped because type names like
    ``DECIMAL(10,2)`` contain the separator).  Omitted when no column
    has a type, keeping untyped wire bytes unchanged."""
    if any(rowset.types):
        element.set(
            "types", ",".join(_csv_escape(t) for t in rowset.types)
        )


def _split_records(text: str) -> list[str]:
    """Split CSV text into records, honouring quoted newlines."""
    records: list[str] = []
    buffer: list[str] = []
    in_quotes = False
    for ch in text:
        if ch == '"':
            in_quotes = not in_quotes
            buffer.append(ch)
        elif ch == "\n" and not in_quotes:
            records.append("".join(buffer))
            buffer.clear()
        else:
            buffer.append(ch)
    records.append("".join(buffer))
    return records


def _parse_csv(element: XmlElement) -> Rowset:
    text = element.text
    if not text:
        return Rowset([], [], [])
    lines = _split_records(text)
    columns = _csv_split(lines[0]) if lines else []
    rows = []
    for line in lines[1:]:
        rows.append(
            tuple(
                NULL if field == _NULL_TOKEN and not quoted else field
                for field, quoted in _csv_split_fields(line)
            )
        )
    types_attr = element.get("types")
    types = _csv_split(types_attr) if types_attr else []
    if len(types) != len(columns):
        types = ["" for _ in columns]
    return Rowset(columns, types, rows)


_RENDERERS = {
    SQLROWSET_FORMAT_URI: _render_sqlrowset,
    WEBROWSET_FORMAT_URI: _render_webrowset,
    CSV_FORMAT_URI: _render_csv,
}

_PARSERS = {
    SQLROWSET_FORMAT_URI: _parse_sqlrowset,
    WEBROWSET_FORMAT_URI: _parse_webrowset,
    CSV_FORMAT_URI: _parse_csv,
}


# ---------------------------------------------------------------------------
# Incremental emitters
# ---------------------------------------------------------------------------
#
# Each emitter is the streaming twin of its renderer above: it wraps a
# rowset in a StreamedElement whose chunk source serializes column
# metadata as one chunk and then one chunk per row, so the serialized
# dataset is byte-for-byte what serialize() produces for the eager tree
# — but no tree and no full string ever exist.  The rowset may be a
# materialized Rowset or a StreamingRowset; rows are pulled only when
# the serializer (and so the transport) is ready to write them.


def stream_rowset(
    data_format_uri: str, rowset: Rowset | StreamingRowset
) -> StreamedElement:
    """Streaming counterpart of :func:`render_rowset`."""
    emitter = _EMITTERS.get(data_format_uri)
    if emitter is None:
        raise InvalidDatasetFormatFault(
            f"unsupported dataset format {data_format_uri!r}"
        )
    return emitter(rowset)


def _rows_of(rowset: Rowset | StreamingRowset) -> Iterator[tuple]:
    if isinstance(rowset, Rowset):
        return iter(rowset.rows)
    return iter(rowset)


def _type_of(rowset: Rowset | StreamingRowset, index: int) -> str:
    if index < len(rowset.types):
        return rowset.types[index]
    return ""


#: Rows accumulated per yielded chunk.  One-chunk-per-row makes the
#: serializer/transport handshake the per-row cost; batching amortizes it
#: while the HTTP layer's coalescing buffer (8 KiB) still bounds latency.
_ROW_BATCH = 64


def _stream_sqlrowset(rowset: Rowset | StreamingRowset) -> StreamedElement:
    def chunks(q) -> Iterator[str]:
        metadata_tag = q(_q("ColumnMetadata"))
        parts = [f"<{metadata_tag}"]
        if not rowset.columns:
            parts.append("/>")
        else:
            parts.append(">")
            column_tag = q(_q("Column"))
            for index, name in enumerate(rowset.columns):
                parts.append(f'<{column_tag} name="{escape_attribute(name)}"')
                type_name = _type_of(rowset, index)
                if type_name:
                    parts.append(f' type="{escape_attribute(type_name)}"')
                parts.append("/>")
            parts.append(f"</{metadata_tag}>")
        yield "".join(parts)
        row_tag = q(_q("Row"))
        value_tag = q(_q("Value"))
        null_tag = q(_q("Null"))
        # Static markup is rendered once; the row loop only escapes and
        # joins.  Rows with no NULL/empty values — the common shape by
        # far — become one join over the </Value><Value> seam.
        open_r, close_r, empty_r = f"<{row_tag}>", f"</{row_tag}>", f"<{row_tag}/>"
        open_v, close_v, empty_v = f"<{value_tag}>", f"</{value_tag}>", f"<{value_tag}/>"
        null_v = f"<{null_tag}/>"
        pre_rv = open_r + open_v
        post_vr = close_v + close_r
        join_vv = (close_v + open_v).join
        escape = escape_text
        fast = fastpath.enabled()
        limit = _ROW_BATCH if fast else 1
        batch: list[str] = []
        for row in _rows_of(rowset):
            if fast and row and NULL not in row and "" not in row:
                batch.append(
                    pre_rv
                    + join_vv(
                        [
                            v
                            if "&" not in v and "<" not in v and ">" not in v
                            else escape(v)
                            for v in row
                        ]
                    )
                    + post_vr
                )
            elif not row:
                batch.append(empty_r)
            else:
                parts = [open_r]
                for value in row:
                    if value is NULL:
                        parts.append(null_v)
                    elif value == "":
                        parts.append(empty_v)
                    else:
                        parts.append(open_v)
                        parts.append(escape(value))
                        parts.append(close_v)
                parts.append(close_r)
                batch.append("".join(parts))
            if len(batch) >= limit:
                yield "".join(batch)
                batch.clear()
        if batch:
            yield "".join(batch)

    return StreamedElement(_q("SQLRowset"), chunks)


def _stream_webrowset(rowset: Rowset | StreamingRowset) -> StreamedElement:
    def chunks(q) -> Iterator[str]:
        def simple(tag: str, text: str) -> str:
            if text:
                return f"<{tag}>{escape_text(text)}</{tag}>"
            return f"<{tag}/>"

        metadata_tag = q(_w("metadata"))
        definition_tag = q(_w("column-definition"))
        parts = [
            f"<{metadata_tag}>",
            simple(q(_w("column-count")), str(len(rowset.columns))),
        ]
        for index, name in enumerate(rowset.columns):
            parts.append(f"<{definition_tag}>")
            parts.append(simple(q(_w("column-index")), str(index + 1)))
            parts.append(simple(q(_w("column-name")), name))
            type_name = _type_of(rowset, index)
            if type_name:
                parts.append(simple(q(_w("column-type-name")), type_name))
            parts.append(f"</{definition_tag}>")
        parts.append(f"</{metadata_tag}>")
        yield "".join(parts)

        data_tag = q(_w("data"))
        row_tag = q(_w("currentRow"))
        value_tag = q(_w("columnValue"))
        open_r, close_r, empty_r = f"<{row_tag}>", f"</{row_tag}>", f"<{row_tag}/>"
        open_v, close_v, empty_v = f"<{value_tag}>", f"</{value_tag}>", f"<{value_tag}/>"
        null_v = f'<{value_tag} null="true"/>'
        pre_rv = open_r + open_v
        post_vr = close_v + close_r
        join_vv = (close_v + open_v).join
        escape = escape_text
        fast = fastpath.enabled()
        limit = _ROW_BATCH if fast else 1
        opened = False
        batch: list[str] = []
        for row in _rows_of(rowset):
            if not opened:
                batch.append(f"<{data_tag}>")
                opened = True
            if fast and row and NULL not in row and "" not in row:
                batch.append(
                    pre_rv
                    + join_vv(
                        [
                            v
                            if "&" not in v and "<" not in v and ">" not in v
                            else escape(v)
                            for v in row
                        ]
                    )
                    + post_vr
                )
            elif not row:
                batch.append(empty_r)
            else:
                parts = [open_r]
                for value in row:
                    if value is NULL:
                        parts.append(null_v)
                    elif value == "":
                        parts.append(empty_v)
                    else:
                        parts.append(open_v)
                        parts.append(escape(value))
                        parts.append(close_v)
                parts.append(close_r)
                batch.append("".join(parts))
            if len(batch) >= limit:
                yield "".join(batch)
                batch.clear()
        batch.append(f"</{data_tag}>" if opened else f"<{data_tag}/>")
        yield "".join(batch)

    return StreamedElement(_w("webRowSet"), chunks)


def _stream_csv(rowset: Rowset | StreamingRowset) -> StreamedElement:
    def chunks(q) -> Iterator[str]:
        header = ",".join(_csv_escape(name) for name in rowset.columns)
        if header:
            yield escape_text(header)
        limit = _ROW_BATCH if fastpath.enabled() else 1
        batch: list[str] = []
        for row in _rows_of(rowset):
            line = ",".join(
                _NULL_TOKEN if value is NULL else _csv_escape(value)
                for value in row
            )
            batch.append(escape_text("\n" + line))
            if len(batch) >= limit:
                yield "".join(batch)
                batch.clear()
        if batch:
            yield "".join(batch)

    element = StreamedElement(_q("CsvRowset"), chunks)
    element.set("columns", len(rowset.columns))
    _set_csv_types(element, rowset)
    return element


_EMITTERS = {
    SQLROWSET_FORMAT_URI: _stream_sqlrowset,
    WEBROWSET_FORMAT_URI: _stream_webrowset,
    CSV_FORMAT_URI: _stream_csv,
}
