"""WS-DAIR wire namespace, port type QNames and dataset format URIs."""

from repro.xmlutil import QName
from repro.xmlutil.names import DEFAULT_REGISTRY
from repro.xmlutil.parser import intern_vocabulary

#: The WS-DAIR 1.0 namespace (GGF DAIS-WG, 2005 drafts).
WSDAIR_NS = "http://www.ggf.org/namespaces/2005/05/WS-DAIR"

DEFAULT_REGISTRY.register("wsdair", WSDAIR_NS)

#: The Sun WebRowSet schema namespace (dataset format payloads).
WEBROWSET_NS = "http://java.sun.com/xml/ns/jdbc"

# Rowset vocabulary: thousands of these names appear in a single large
# response, so resolving them from the shared intern table (instead of
# per-document caches warming up from zero) matters on the parse path.
intern_vocabulary(
    WSDAIR_NS,
    (
        "SQLRowset",
        "ColumnMetadata",
        "Column",
        "Row",
        "Value",
        "Null",
        "CsvRowset",
        "SQLDataset",
        "SQLUpdateCount",
        "SQLCommunicationArea",
        "SQLExpression",
        "TotalRows",
    ),
)
intern_vocabulary(
    WEBROWSET_NS,
    (
        "webRowSet",
        "metadata",
        "column-count",
        "column-definition",
        "column-index",
        "column-name",
        "column-type-name",
        "data",
        "currentRow",
        "columnValue",
    ),
)

#: Dataset format URIs advertised in DatasetMap properties.
SQLROWSET_FORMAT_URI = f"{WSDAIR_NS}/SQLRowset"
WEBROWSET_FORMAT_URI = "http://java.sun.com/xml/ns/jdbc/webrowset"
CSV_FORMAT_URI = "urn:dais-py:format:csv"

#: Port type QNames used in ConfigurationMap / factory requests.
SQL_ACCESS_PT = QName(WSDAIR_NS, "SQLAccessPT")
SQL_FACTORY_PT = QName(WSDAIR_NS, "SQLFactoryPT")
SQL_RESPONSE_ACCESS_PT = QName(WSDAIR_NS, "SQLResponseAccessPT")
SQL_RESPONSE_FACTORY_PT = QName(WSDAIR_NS, "SQLResponseFactoryPT")
SQL_ROWSET_ACCESS_PT = QName(WSDAIR_NS, "SQLRowsetAccessPT")
