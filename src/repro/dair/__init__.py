"""WS-DAIR: the relational realisation (paper §4).

Extends the WS-DAI core with the port types of Figure 6:

* **SQLAccess** — ``SQLExecute`` (direct access) and
  ``GetSQLPropertyDocument``;
* **SQLFactory** — ``SQLExecuteFactory`` (indirect access: derive a
  *SQL response* resource);
* **ResponseAccess** — ``GetSQLRowset``, ``GetSQLUpdateCount``,
  ``GetSQLCommunicationArea``, ``GetSQLReturnValue``,
  ``GetSQLOutputParameter``, ``GetSQLResponseItem``,
  ``GetSQLResponsePropertyDocument``;
* **ResponseFactory** — ``SQLRowsetFactory`` (derive a rowset resource
  in a chosen dataset format, e.g. WebRowSet);
* **RowsetAccess** — ``GetTuples`` (paged retrieval) and
  ``GetRowsetPropertyDocument``.

Figure 5's three-service pipeline is assembled from these pieces; see
``examples/relational_pipeline.py``.
"""

from repro.dair.namespaces import (
    WSDAIR_NS,
    SQLROWSET_FORMAT_URI,
    WEBROWSET_FORMAT_URI,
    CSV_FORMAT_URI,
)
from repro.dair.datasets import Rowset, render_rowset, parse_rowset
from repro.dair.resources import (
    SQLDataResource,
    SQLResponseResource,
    SQLRowsetResource,
)
from repro.dair.service import SQLRealisationService, PORT_TYPES

__all__ = [
    "WSDAIR_NS",
    "SQLROWSET_FORMAT_URI",
    "WEBROWSET_FORMAT_URI",
    "CSV_FORMAT_URI",
    "Rowset",
    "render_rowset",
    "parse_rowset",
    "SQLDataResource",
    "SQLResponseResource",
    "SQLRowsetResource",
    "SQLRealisationService",
    "PORT_TYPES",
]
