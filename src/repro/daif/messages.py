"""WS-DAIF message payloads."""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro.core.messages import DaisMessage, DaisRequest, FactoryRequest, FactoryResponse
from repro.daif.namespaces import WSDAIF_NS
from repro.xmlutil import E, QName, XmlElement


def _q(local: str) -> QName:
    return QName(WSDAIF_NS, local)


@dataclass
class ListFilesRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("ListFilesRequest")

    path: str = ""

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("Path"), self.path))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            path=element.findtext(_q("Path"), "") or "",
        )


@dataclass
class ListFilesResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("ListFilesResponse")

    #: (name, size, modified) triples.
    files: list[tuple[str, int, float]] = field(default_factory=list)
    directories: list[str] = field(default_factory=list)

    def to_xml(self) -> XmlElement:
        root = E(self.TAG)
        for name, size, modified in self.files:
            entry = E(_q("File"))
            entry.set("name", name)
            entry.set("size", size)
            entry.set("modified", repr(modified))
            root.append(entry)
        for name in self.directories:
            entry = E(_q("Directory"))
            entry.set("name", name)
            root.append(entry)
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        files = [
            (
                entry.get("name", "") or "",
                int(entry.get("size", "0") or "0"),
                float(entry.get("modified", "0") or "0"),
            )
            for entry in element.findall(_q("File"))
        ]
        directories = [
            entry.get("name", "") or ""
            for entry in element.findall(_q("Directory"))
        ]
        return cls(files=files, directories=directories)


@dataclass
class GetFileRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetFileRequest")

    path: str = ""
    offset: int = 0
    length: Optional[int] = None

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("Path"), self.path))
        if self.offset:
            root.append(E(_q("Offset"), self.offset))
        if self.length is not None:
            root.append(E(_q("Length"), self.length))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        length_text = element.findtext(_q("Length"))
        return cls(
            abstract_name=cls._read_name(element),
            path=element.findtext(_q("Path"), "") or "",
            offset=int(element.findtext(_q("Offset"), "0") or "0"),
            length=int(length_text) if length_text else None,
        )


@dataclass
class GetFileResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetFileResponse")

    path: str = ""
    content: bytes = b""
    total_size: int = 0

    def to_xml(self) -> XmlElement:
        return E(
            self.TAG,
            E(_q("Path"), self.path),
            E(_q("TotalSize"), self.total_size),
            E(_q("Content"), base64.b64encode(self.content).decode("ascii")),
        )

    @classmethod
    def from_xml(cls, element: XmlElement):
        encoded = element.findtext(_q("Content"), "") or ""
        return cls(
            path=element.findtext(_q("Path"), "") or "",
            content=base64.b64decode(encoded),
            total_size=int(element.findtext(_q("TotalSize"), "0") or "0"),
        )


@dataclass
class PutFileRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("PutFileRequest")

    path: str = ""
    content: bytes = b""

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("Path"), self.path))
        root.append(
            E(_q("Content"), base64.b64encode(self.content).decode("ascii"))
        )
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        encoded = element.findtext(_q("Content"), "") or ""
        return cls(
            abstract_name=cls._read_name(element),
            path=element.findtext(_q("Path"), "") or "",
            content=base64.b64decode(encoded),
        )


@dataclass
class PutFileResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("PutFileResponse")

    path: str = ""
    size: int = 0

    def to_xml(self) -> XmlElement:
        return E(self.TAG, E(_q("Path"), self.path), E(_q("Size"), self.size))

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            path=element.findtext(_q("Path"), "") or "",
            size=int(element.findtext(_q("Size"), "0") or "0"),
        )


@dataclass
class DeleteFileRequest(GetFileRequest):
    TAG: ClassVar[QName] = _q("DeleteFileRequest")


@dataclass
class DeleteFileResponse(PutFileResponse):
    TAG: ClassVar[QName] = _q("DeleteFileResponse")


@dataclass
class FileSelectionFactoryRequest(FactoryRequest):
    """``expression`` carries the glob pattern."""

    TAG: ClassVar[QName] = _q("FileSelectionFactoryRequest")


@dataclass
class FileSelectionFactoryResponse(FactoryResponse):
    TAG: ClassVar[QName] = _q("FileSelectionFactoryResponse")


@dataclass
class GetFileSetMembersRequest(DaisRequest):
    TAG: ClassVar[QName] = _q("GetFileSetMembersRequest")

    start_position: int = 0
    count: int = 0

    def to_xml(self) -> XmlElement:
        root = self._root()
        root.append(E(_q("StartPosition"), self.start_position))
        root.append(E(_q("Count"), self.count))
        return root

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            abstract_name=cls._read_name(element),
            start_position=int(element.findtext(_q("StartPosition"), "0") or "0"),
            count=int(element.findtext(_q("Count"), "0") or "0"),
        )


@dataclass
class GetFileSetMembersResponse(DaisMessage):
    TAG: ClassVar[QName] = _q("GetFileSetMembersResponse")

    members: list[str] = field(default_factory=list)
    total_members: int = 0

    def to_xml(self) -> XmlElement:
        return E(
            self.TAG,
            E(_q("TotalMembers"), self.total_members),
            [E(_q("Member"), member) for member in self.members],
        )

    @classmethod
    def from_xml(cls, element: XmlElement):
        return cls(
            members=[c.text for c in element.findall(_q("Member"))],
            total_members=int(element.findtext(_q("TotalMembers"), "0") or "0"),
        )
