"""WS-DAIF data resources: file collections and derived file sets."""

from __future__ import annotations

from repro.core.faults import (
    DataResourceUnavailableFault,
    InvalidExpressionFault,
)
from repro.core.names import AbstractName
from repro.core.properties import (
    ConfigurableProperties,
    CorePropertyDocument,
    DataResourceManagement,
    DatasetMapEntry,
)
from repro.core.resource import DataResource
from repro.daif.namespaces import WSDAIF_NS
from repro.filestore import FileEntry, FileStore, FileStoreError
from repro.xmlutil import QName

#: Dataset format URI for base64-encoded file content.
FILE_CONTENT_FORMAT_URI = f"{WSDAIF_NS}/Base64Content"


def _q(local: str) -> QName:
    return QName(WSDAIF_NS, local)


class FileCollectionResource(DataResource):
    """An externally managed directory tree behind a data service."""

    def __init__(
        self,
        abstract_name: AbstractName,
        store: FileStore,
        base_path: str = "",
    ) -> None:
        super().__init__(
            abstract_name, DataResourceManagement.EXTERNALLY_MANAGED
        )
        self.store = store
        self.base_path = base_path.strip("/")

    def _resolve(self, path: str) -> str:
        path = path.strip("/")
        if ".." in path.split("/"):
            raise InvalidExpressionFault(f"path {path!r} escapes the collection")
        if not self.base_path:
            return path
        return f"{self.base_path}/{path}" if path else self.base_path

    # -- file operations -----------------------------------------------------

    def list_files(self, path: str = "") -> tuple[list[FileEntry], list[str]]:
        try:
            full = self._resolve(path)
            return self.store.list_files(full), self.store.list_directories(full)
        except FileStoreError as exc:
            raise InvalidExpressionFault(str(exc)) from exc

    def get_file(
        self, path: str, offset: int = 0, length: int | None = None
    ) -> tuple[FileEntry, bytes]:
        try:
            full = self._resolve(path)
            return self.store.stat(full), self.store.read(full, offset, length)
        except FileStoreError as exc:
            raise InvalidExpressionFault(str(exc)) from exc

    def put_file(self, path: str, content: bytes) -> FileEntry:
        try:
            full = self._resolve(path)
            directory = "/".join(full.split("/")[:-1])
            if directory:
                self.store.make_directory(directory)
            return self.store.write(full, content)
        except FileStoreError as exc:
            raise InvalidExpressionFault(str(exc)) from exc

    def delete_file(self, path: str) -> FileEntry:
        try:
            return self.store.delete(self._resolve(path))
        except FileStoreError as exc:
            raise InvalidExpressionFault(str(exc)) from exc

    def select(self, pattern: str) -> list[str]:
        """Relative paths matching a glob pattern (the factory input)."""
        try:
            return self.store.glob(self.base_path, pattern)
        except FileStoreError as exc:
            raise InvalidExpressionFault(str(exc)) from exc

    # -- property document ------------------------------------------------------

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        document = CorePropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            dataset_maps=[
                DatasetMapEntry(_q("GetFileRequest"), FILE_CONTENT_FORMAT_URI)
            ],
            configurable=configurable,
        )
        document.ROOT_LOCAL = "FileCollectionPropertyDocument"
        document.ROOT_NS = WSDAIF_NS
        return document


class FileSetResource(DataResource):
    """A derived, immutable selection of files (service managed)."""

    def __init__(
        self,
        abstract_name: AbstractName,
        parent: FileCollectionResource,
        members: list[str],
    ) -> None:
        super().__init__(
            abstract_name,
            DataResourceManagement.SERVICE_MANAGED,
            parent=parent.abstract_name,
        )
        self._members = list(members)
        self._destroyed = False

    def members(self) -> list[str]:
        if self._destroyed:
            raise DataResourceUnavailableFault(
                f"file set {self.abstract_name} has been destroyed"
            )
        return self._members

    def page(self, start: int, count: int) -> list[str]:
        if start < 0 or count < 0:
            raise InvalidExpressionFault("start/count must be non-negative")
        return self.members()[start : start + count]

    @property
    def member_count(self) -> int:
        return len(self.members())

    def on_destroy(self) -> None:
        super().on_destroy()
        self._members = []
        self._destroyed = True

    def property_document(
        self, configurable: ConfigurableProperties
    ) -> CorePropertyDocument:
        document = CorePropertyDocument(
            abstract_name=self.abstract_name,
            management=self.management,
            parent=self.parent,
            configurable=configurable,
        )
        document.ROOT_LOCAL = "FileSetPropertyDocument"
        document.ROOT_NS = WSDAIF_NS
        return document
