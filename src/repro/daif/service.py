"""The WS-DAIF data service."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.faults import (
    DataResourceUnavailableFault,
    InvalidPortTypeQNameFault,
    InvalidResourceNameFault,
)
from repro.core.names import mint_abstract_name
from repro.core.service import DataService, ResourceBinding
from repro.daif import messages as msg
from repro.daif.namespaces import FILE_SET_ACCESS_PT, WSDAIF_NS
from repro.daif.resources import FileCollectionResource, FileSetResource
from repro.jobs.namespaces import MODE_ASYNCHRONOUS
from repro.soap.addressing import MessageHeaders
from repro.xmlutil import XmlElement, parse, serialize

PORT_TYPES = {"collection_access", "selection_factory", "fileset_access"}


class FileRealisationService(DataService):
    """A data service exposing the files realisation port types."""

    def __init__(
        self,
        name: str,
        address: str,
        port_types: Iterable[str] = tuple(sorted(PORT_TYPES)),
        fileset_target: Optional["FileRealisationService"] = None,
        **kwargs,
    ) -> None:
        from repro.core.namespaces import WSDAI_NS

        kwargs.setdefault(
            "property_namespaces", {"wsdai": WSDAI_NS, "wsdaif": WSDAIF_NS}
        )
        super().__init__(name, address, **kwargs)
        self.port_types = set(port_types)
        unknown = self.port_types - PORT_TYPES
        if unknown:
            raise ValueError(f"unknown port types {sorted(unknown)}")
        self.fileset_target = fileset_target or self

        if "collection_access" in self.port_types:
            self.register_operation(
                msg.ListFilesRequest.action(), self._handle_list_files
            )
            self.register_operation(
                msg.GetFileRequest.action(), self._handle_get_file
            )
            self.register_operation(
                msg.PutFileRequest.action(), self._handle_put_file
            )
            self.register_operation(
                msg.DeleteFileRequest.action(), self._handle_delete_file
            )
        if "selection_factory" in self.port_types:
            self.register_operation(
                msg.FileSelectionFactoryRequest.action(),
                self._handle_selection_factory,
            )
        if "fileset_access" in self.port_types:
            self.register_operation(
                msg.GetFileSetMembersRequest.action(),
                self._handle_get_members,
            )

    # -- typed lookups -------------------------------------------------------

    def _collection_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, FileCollectionResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not a file collection resource"
            )
        return binding

    def _fileset_binding(self, abstract_name: str) -> ResourceBinding:
        binding = self.binding(abstract_name)
        if not isinstance(binding.resource, FileSetResource):
            raise InvalidResourceNameFault(
                f"{abstract_name} is not a file set resource"
            )
        return binding

    # -- FileCollectionAccess --------------------------------------------------

    def _handle_list_files(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.ListFilesResponse:
        request = msg.ListFilesRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        files, directories = binding.resource.list_files(request.path)
        return msg.ListFilesResponse(
            files=[(f.name, f.size, f.modified) for f in files],
            directories=directories,
        )

    def _handle_get_file(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetFileResponse:
        request = msg.GetFileRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        entry, content = binding.resource.get_file(
            request.path, request.offset, request.length
        )
        return msg.GetFileResponse(
            path=request.path, content=content, total_size=entry.size
        )

    def _handle_put_file(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.PutFileResponse:
        request = msg.PutFileRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        entry = binding.resource.put_file(request.path, request.content)
        return msg.PutFileResponse(path=request.path, size=entry.size)

    def _handle_delete_file(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.DeleteFileResponse:
        request = msg.DeleteFileRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_writeable()
        entry = binding.resource.delete_file(request.path)
        return msg.DeleteFileResponse(path=request.path, size=entry.size)

    # -- FileSelectionFactory ----------------------------------------------------

    def _handle_selection_factory(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.FileSelectionFactoryResponse:
        request = msg.FileSelectionFactoryRequest.from_xml(payload)
        binding = self._collection_binding(request.abstract_name)
        binding.require_readable()
        resource: FileCollectionResource = binding.resource

        requested_pt = request.port_type_qname or FILE_SET_ACCESS_PT
        if requested_pt != FILE_SET_ACCESS_PT:
            raise InvalidPortTypeQNameFault(
                f"FileSelectionFactory wires up {FILE_SET_ACCESS_PT.clark()}"
            )
        target = self.fileset_target
        if "fileset_access" not in target.port_types:
            raise InvalidPortTypeQNameFault(
                f"target service {target.name!r} lacks FileSetAccess"
            )

        configurable = binding.configurable.copy()
        if request.configuration_document is not None:
            configurable = configurable.apply_configuration_document(
                request.configuration_document
            )

        if request.execution_mode == MODE_ASYNCHRONOUS:
            if self.jobs is None:
                raise DataResourceUnavailableFault(
                    f"service {self.name!r} does not accept asynchronous "
                    "factory requests (no job queue attached)"
                )
            job = self.jobs.submit(
                self._selection_factory_kind(),
                {
                    "resource": str(request.abstract_name),
                    "expression": request.expression,
                    "configuration": serialize(request.configuration_document)
                    if request.configuration_document is not None
                    else "",
                },
            )
            return msg.FileSelectionFactoryResponse(job_id=job.job_id)

        derived = FileSetResource(
            mint_abstract_name("fileset"),
            resource,
            resource.select(request.expression),
        )
        target.add_resource(derived, configurable)
        try:
            return msg.FileSelectionFactoryResponse(
                address=target.epr_for(derived.abstract_name),
                abstract_name=derived.abstract_name,
            )
        except BaseException:
            # A failure after the name was reserved must not leave the
            # registry entry dangling.
            target.destroy_resource(derived.abstract_name)
            raise

    # -- asynchronous factory execution ------------------------------------

    def _selection_factory_kind(self) -> str:
        return f"{self.name}:file-selection-factory"

    def enable_jobs(self, jobs, terminal_ttl: float | None = None) -> None:
        super().enable_jobs(jobs, terminal_ttl)
        if "selection_factory" in self.port_types:
            jobs.register_executor(
                self._selection_factory_kind(),
                self._execute_selection_factory_job,
                rollback=self._rollback_selection_factory_job,
            )

    def _execute_selection_factory_job(self, job) -> dict:
        """Run one deferred FileSelectionFactory request."""
        binding = self._collection_binding(job.payload["resource"])
        binding.require_readable()
        resource: FileCollectionResource = binding.resource
        configurable = binding.configurable.copy()
        if job.payload.get("configuration"):
            configurable = configurable.apply_configuration_document(
                parse(job.payload["configuration"])
            )
        derived = FileSetResource(
            mint_abstract_name("fileset"),
            resource,
            resource.select(job.payload["expression"]),
        )
        target = self.fileset_target
        target.add_resource(derived, configurable)
        return {
            "abstract_name": str(derived.abstract_name),
            "address": target.address,
        }

    def _rollback_selection_factory_job(self, job, result: dict) -> None:
        name = result.get("abstract_name")
        if name and self.fileset_target.has_resource(name):
            self.fileset_target.destroy_resource(name)

    # -- FileSetAccess -----------------------------------------------------------

    def _handle_get_members(
        self, payload: XmlElement, headers: MessageHeaders
    ) -> msg.GetFileSetMembersResponse:
        request = msg.GetFileSetMembersRequest.from_xml(payload)
        binding = self._fileset_binding(request.abstract_name)
        binding.require_readable()
        resource: FileSetResource = binding.resource
        return msg.GetFileSetMembersResponse(
            members=resource.page(request.start_position, request.count),
            total_members=resource.member_count,
        )
