"""WS-DAIF wire namespace and port type QNames."""

from repro.xmlutil import QName
from repro.xmlutil.names import DEFAULT_REGISTRY

#: Namespace for the files realisation (post-paper DAIS-WG direction).
WSDAIF_NS = "http://www.ggf.org/namespaces/2005/05/WS-DAIF"

DEFAULT_REGISTRY.register("wsdaif", WSDAIF_NS)

FILE_COLLECTION_ACCESS_PT = QName(WSDAIF_NS, "FileCollectionAccessPT")
FILE_SET_ACCESS_PT = QName(WSDAIF_NS, "FileSetAccessPT")
