"""WS-DAIF: a files realisation of the WS-DAI core.

The paper's conclusion flags files as a realisation under exploration
("different groups are exploring the development of additional
realisations for object databases, ontologies and files"); the DAIS-WG
later published WS-DAI-Files drafts along exactly these lines.  This
package applies the established WS-DAI construction to a file store:

* **FileCollectionAccess** (direct) — ``ListFiles``, ``GetFile`` (with
  byte ranges), ``PutFile``, ``DeleteFile``;
* **FileSelectionFactory** (indirect) — a glob pattern derives a
  service managed *file set* resource;
* **FileSetAccess** — ``GetFileSetMembers`` paging over the selection.

File content travels base64-encoded in the message body.
"""

from repro.daif.namespaces import WSDAIF_NS
from repro.daif.resources import FileCollectionResource, FileSetResource
from repro.daif.service import FileRealisationService

__all__ = [
    "WSDAIF_NS",
    "FileCollectionResource",
    "FileSetResource",
    "FileRealisationService",
]
